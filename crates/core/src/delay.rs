//! End-to-end delay model for embedded chains.
//!
//! The motivation for hybrid SFCs (paper §1, Fig. 1, via NFP [17]) is
//! that parallel VNFs cut traffic delay: within a layer, the slowest
//! branch — not the sum of all branches — determines the layer's
//! latency. This module quantifies that on a concrete [`Embedding`]:
//!
//! ```text
//! delay = Σ_layers [ max_slot( inter_path + proc(slot) + inner_path )
//!                    + merge (parallel layers only) ]
//!         + final_path
//! ```
//!
//! Path latency is the sum of real per-link propagation delays (when
//! the model carries the substrate's link-delay table) plus hop count ×
//! a per-hop forwarding overhead. Models without a table fall back to
//! pure hop counting — the legacy behavior, still used by catalogs that
//! predate per-link delays. Processing delays per VNF kind come from
//! the caller (e.g. the `dagsfc-nfp` catalog).
//!
//! This module is the **only** place allowed to turn hop counts into
//! delays (enforced by a `dagsfc-lint` rule): every other crate must go
//! through [`DelayModel::path_us`] or [`Path::delay_us`] so the
//! hop-vs-link-delay distinction cannot silently diverge.

use crate::chain::DagSfc;
use crate::embedding::Embedding;
use crate::flow::Flow;
use crate::metapath::meta_paths;
use dagsfc_net::{LinkId, Network, Path};
use serde::{Deserialize, Serialize};

/// Parameters of the delay model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayModel {
    /// Per-hop link traversal (forwarding) delay in microseconds.
    pub per_hop_us: f64,
    /// Fixed merger processing delay in microseconds.
    pub merge_us: f64,
    /// Per-VNF-kind processing delay in microseconds, indexed by
    /// [`dagsfc_net::VnfTypeId`]. Kinds beyond the vector default to 0.
    pub proc_us: Vec<f64>,
    /// Per-link propagation delay table in microseconds, indexed by
    /// [`LinkId`] (see [`Network::link_delays_us`]). `None` falls back
    /// to pure hop counting — the legacy model. Links beyond the table
    /// contribute 0.
    pub link_delay_us: Option<Vec<f64>>,
}

impl DelayModel {
    /// A model with uniform processing delay for every kind
    /// (hop-count path latency, no link-delay table).
    pub fn uniform(kinds: usize, proc_us: f64, per_hop_us: f64, merge_us: f64) -> Self {
        DelayModel {
            per_hop_us,
            merge_us,
            proc_us: vec![proc_us; kinds],
            link_delay_us: None,
        }
    }

    /// The canonical substrate model for `net`: path latency is exactly
    /// the summed link propagation delays, with zero forwarding,
    /// processing, and merge overheads. This is the model the solver
    /// delay gate, the auditor, and the serve layer share, so one
    /// definition of "end-to-end delay" backs enforcement, audit, and
    /// reporting.
    pub fn for_network(net: &Network) -> Self {
        DelayModel {
            per_hop_us: 0.0,
            merge_us: 0.0,
            proc_us: Vec::new(),
            link_delay_us: Some(net.link_delays_us()),
        }
    }

    /// Attaches a per-link propagation delay table (builder style).
    pub fn with_link_delays(mut self, delays: Vec<f64>) -> Self {
        self.link_delay_us = Some(delays);
        self
    }

    /// Processing delay of a VNF kind (0 for kinds beyond the table).
    pub fn proc(&self, kind: dagsfc_net::VnfTypeId) -> f64 {
        self.proc_us.get(kind.index()).copied().unwrap_or(0.0)
    }

    /// Latency of a real-path: summed link propagation delays (when the
    /// model has a table) plus the per-hop forwarding overhead. Trivial
    /// paths are free in both terms.
    pub fn path_us(&self, p: &Path) -> f64 {
        let forwarding = p.len() as f64 * self.per_hop_us;
        match &self.link_delay_us {
            Some(table) => {
                let propagation: f64 = p
                    .links()
                    .iter()
                    .map(|l: &LinkId| table.get(l.index()).copied().unwrap_or(0.0))
                    .sum();
                forwarding + propagation
            }
            None => forwarding,
        }
    }

    /// End-to-end delay of `emb` in microseconds.
    pub fn embedding_delay(&self, sfc: &DagSfc, emb: &Embedding, _flow: &Flow) -> f64 {
        let catalog = sfc.catalog();
        let mps = meta_paths(sfc);
        let paths = emb.paths();

        let mut total = 0.0;
        let mut idx = 0usize;
        for (l, layer) in sfc.layers().iter().enumerate() {
            let width = layer.width();
            // Inter-layer paths of this layer come first in canonical
            // order, then (for parallel layers) the inner paths.
            let inter = &paths[idx..idx + width];
            idx += width;
            let inner: &[Path] = if layer.needs_merger() {
                let s = &paths[idx..idx + width];
                idx += width;
                s
            } else {
                &[]
            };
            debug_assert!(mps[idx - 1].group == l || width > 0);
            let mut slowest: f64 = 0.0;
            for slot in 0..width {
                let kind = layer.slot_kind(slot, catalog);
                let mut branch = self.path_us(&inter[slot]) + self.proc(kind);
                if layer.needs_merger() {
                    branch += self.path_us(&inner[slot]);
                }
                slowest = slowest.max(branch);
            }
            total += slowest;
            if layer.needs_merger() {
                total += self.merge_us;
            }
        }
        // Final hop to the destination.
        // lint:allow(expect) — invariant: final path exists
        total += self.path_us(paths.last().expect("final path exists"));
        total
    }

    /// Per-layer delay decomposition of [`Self::embedding_delay`]:
    /// `(layer index, slowest-branch delay incl. merge)` plus the final
    /// hop as the last entry with layer index `usize::MAX`. The entries
    /// sum to the total end-to-end delay.
    pub fn delay_breakdown(
        &self,
        sfc: &DagSfc,
        emb: &Embedding,
        _flow: &Flow,
    ) -> Vec<(usize, f64)> {
        let catalog = sfc.catalog();
        let paths = emb.paths();
        let mut out = Vec::with_capacity(sfc.depth() + 1);
        let mut idx = 0usize;
        for (l, layer) in sfc.layers().iter().enumerate() {
            let width = layer.width();
            let inter = &paths[idx..idx + width];
            idx += width;
            let inner: &[Path] = if layer.needs_merger() {
                let s = &paths[idx..idx + width];
                idx += width;
                s
            } else {
                &[]
            };
            let mut slowest: f64 = 0.0;
            for slot in 0..width {
                let kind = layer.slot_kind(slot, catalog);
                let mut branch = self.path_us(&inter[slot]) + self.proc(kind);
                if layer.needs_merger() {
                    branch += self.path_us(&inner[slot]);
                }
                slowest = slowest.max(branch);
            }
            if layer.needs_merger() {
                slowest += self.merge_us;
            }
            out.push((l, slowest));
        }
        // lint:allow(expect) — invariant: final path
        out.push((usize::MAX, self.path_us(paths.last().expect("final path"))));
        out
    }

    /// Sum-of-branches delay of the same embedding — what a fully
    /// sequential execution of the layer members would cost. The gap to
    /// [`Self::embedding_delay`] is the parallelism gain.
    pub fn sequentialized_delay(&self, sfc: &DagSfc, emb: &Embedding, _flow: &Flow) -> f64 {
        let catalog = sfc.catalog();
        let paths = emb.paths();
        let mut total = 0.0;
        let mut idx = 0usize;
        for layer in sfc.layers() {
            let width = layer.width();
            let inter = &paths[idx..idx + width];
            idx += width;
            let inner: &[Path] = if layer.needs_merger() {
                let s = &paths[idx..idx + width];
                idx += width;
                s
            } else {
                &[]
            };
            for slot in 0..width {
                let kind = layer.slot_kind(slot, catalog);
                total += self.path_us(&inter[slot]) + self.proc(kind);
                if layer.needs_merger() {
                    total += self.path_us(&inner[slot]);
                }
            }
            if layer.needs_merger() {
                total += self.merge_us;
            }
        }
        // lint:allow(expect) — invariant: final path exists
        total += self.path_us(paths.last().expect("final path exists"));
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Layer;
    use crate::vnf::VnfCatalog;
    use dagsfc_net::{Network, NodeId, VnfTypeId};

    fn net() -> Network {
        let mut g = Network::new();
        g.add_nodes(4);
        for i in 0..3u32 {
            g.add_link(NodeId(i), NodeId(i + 1), 1.0, 10.0).unwrap();
        }
        g.deploy_vnf(NodeId(1), VnfTypeId(0), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(1), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(2), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(4), 1.0, 10.0).unwrap();
        g
    }

    fn path(net: &Network, nodes: &[u32]) -> Path {
        Path::from_nodes(net, nodes.iter().map(|&n| NodeId(n)).collect()).unwrap()
    }

    fn parallel_embedding(g: &Network) -> (DagSfc, Embedding) {
        let sfc = DagSfc::new(
            vec![
                Layer::new(vec![VnfTypeId(0)]),
                Layer::new(vec![VnfTypeId(1), VnfTypeId(2)]),
            ],
            VnfCatalog::new(4),
        )
        .unwrap();
        let emb = Embedding::new(
            &sfc,
            vec![vec![NodeId(1)], vec![NodeId(2), NodeId(2), NodeId(2)]],
            vec![
                path(g, &[0, 1]),
                path(g, &[1, 2]),
                path(g, &[1, 2]),
                Path::trivial(NodeId(2)),
                Path::trivial(NodeId(2)),
                path(g, &[2, 3]),
            ],
        )
        .unwrap();
        (sfc, emb)
    }

    #[test]
    fn parallel_layer_takes_max_branch() {
        let g = net();
        let (sfc, emb) = parallel_embedding(&g);
        // proc: f0=10, f1=20, f2=30; hop=5; merge=2.
        let model = DelayModel {
            per_hop_us: 5.0,
            merge_us: 2.0,
            proc_us: vec![10.0, 20.0, 30.0, 0.0, 0.0],
            link_delay_us: None,
        };
        let flow = Flow::unit(NodeId(0), NodeId(3));
        let d = model.embedding_delay(&sfc, &emb, &flow);
        // L0: hop(5) + f0(10) = 15. L1: max(hop5+20, hop5+30) + merge 2
        // = 37. final hop 5. total 57.
        assert!((d - 57.0).abs() < 1e-9, "{d}");
    }

    #[test]
    fn sequentialized_delay_sums_branches() {
        let g = net();
        let (sfc, emb) = parallel_embedding(&g);
        let model = DelayModel {
            per_hop_us: 5.0,
            merge_us: 2.0,
            proc_us: vec![10.0, 20.0, 30.0, 0.0, 0.0],
            link_delay_us: None,
        };
        let flow = Flow::unit(NodeId(0), NodeId(3));
        let seq = model.sequentialized_delay(&sfc, &emb, &flow);
        // L0: 15. L1: (5+20) + (5+30) + 2 = 62. final 5. total 82.
        assert!((seq - 82.0).abs() < 1e-9, "{seq}");
        let par = model.embedding_delay(&sfc, &emb, &flow);
        assert!(par < seq, "parallelism must cut delay");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let g = net();
        let (sfc, emb) = parallel_embedding(&g);
        let model = DelayModel {
            per_hop_us: 5.0,
            merge_us: 2.0,
            proc_us: vec![10.0, 20.0, 30.0, 0.0, 0.0],
            link_delay_us: None,
        };
        let flow = Flow::unit(NodeId(0), NodeId(3));
        let parts = model.delay_breakdown(&sfc, &emb, &flow);
        assert_eq!(parts.len(), sfc.depth() + 1);
        let total: f64 = parts.iter().map(|(_, d)| d).sum();
        let direct = model.embedding_delay(&sfc, &emb, &flow);
        assert!((total - direct).abs() < 1e-9);
        // Final hop entry is tagged with usize::MAX.
        assert_eq!(parts.last().unwrap().0, usize::MAX);
        // Layer 1 (parallel) entry: max(5+20, 5+30) + 2 = 37.
        assert!((parts[1].1 - 37.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_model_and_unknown_kinds() {
        let m = DelayModel::uniform(2, 7.0, 1.0, 0.5);
        assert_eq!(m.proc(VnfTypeId(0)), 7.0);
        assert_eq!(m.proc(VnfTypeId(9)), 0.0); // out of table → 0
    }

    /// Pins the hop-count semantics: a β-link path is charged exactly β
    /// per-hop delays — trivial (colocated) paths are charged zero, not
    /// one, and there is no node-count off-by-one.
    #[test]
    fn path_us_counts_edges_not_nodes() {
        let g = net();
        let m = DelayModel::uniform(2, 0.0, 5.0, 0.0);
        assert_eq!(m.path_us(&Path::trivial(NodeId(1))), 0.0);
        assert_eq!(m.path_us(&path(&g, &[0, 1])), 5.0);
        assert_eq!(m.path_us(&path(&g, &[0, 1, 2])), 10.0);
    }

    #[test]
    fn link_delay_table_adds_real_propagation() {
        let mut g = net();
        g.set_link_delay(dagsfc_net::LinkId(0), 7.0).unwrap();
        g.set_link_delay(dagsfc_net::LinkId(1), 11.0).unwrap();
        // Canonical model: pure propagation, no per-hop overhead.
        let m = DelayModel::for_network(&g);
        assert_eq!(m.path_us(&path(&g, &[0, 1, 2])), 18.0);
        assert_eq!(m.path_us(&Path::trivial(NodeId(0))), 0.0);
        // Forwarding overhead stacks on top of propagation.
        let m2 = DelayModel::uniform(2, 0.0, 5.0, 0.0).with_link_delays(g.link_delays_us());
        assert_eq!(m2.path_us(&path(&g, &[0, 1, 2])), 28.0);
        // Links beyond a short table contribute zero propagation.
        let m3 = DelayModel::uniform(2, 0.0, 0.0, 0.0).with_link_delays(vec![7.0]);
        assert_eq!(m3.path_us(&path(&g, &[0, 1, 2])), 7.0);
    }

    /// The canonical model and [`Path::delay_us`] must agree — one
    /// definition of propagation delay across all crates.
    #[test]
    fn canonical_model_matches_path_delay() {
        let mut g = net();
        g.set_link_delay(dagsfc_net::LinkId(2), 3.5).unwrap();
        let m = DelayModel::for_network(&g);
        let p = path(&g, &[1, 2, 3]);
        assert!((m.path_us(&p) - p.delay_us(&g)).abs() < 1e-12);
    }

    #[test]
    fn sequential_chain_delays_coincide() {
        // With one VNF per layer, max == sum per layer.
        let g = net();
        let sfc = DagSfc::sequential(&[VnfTypeId(0), VnfTypeId(1)], VnfCatalog::new(4)).unwrap();
        let emb = Embedding::new(
            &sfc,
            vec![vec![NodeId(1)], vec![NodeId(2)]],
            vec![path(&g, &[0, 1]), path(&g, &[1, 2]), path(&g, &[2, 3])],
        )
        .unwrap();
        let model = DelayModel::uniform(4, 10.0, 5.0, 2.0);
        let flow = Flow::unit(NodeId(0), NodeId(3));
        let a = model.embedding_delay(&sfc, &emb, &flow);
        let b = model.sequentialized_delay(&sfc, &emb, &flow);
        assert!((a - b).abs() < 1e-12);
        assert!((a - (5.0 + 10.0 + 5.0 + 10.0 + 5.0)).abs() < 1e-9);
    }
}
