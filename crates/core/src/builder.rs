//! Fluent construction of DAG-SFCs.
//!
//! ```
//! use dagsfc_core::{builder::ChainBuilder, VnfCatalog};
//! use dagsfc_net::VnfTypeId;
//!
//! let catalog = VnfCatalog::new(8);
//! let sfc = ChainBuilder::new(catalog)
//!     .then(VnfTypeId(0))
//!     .parallel([VnfTypeId(1), VnfTypeId(2), VnfTypeId(3)])
//!     .then(VnfTypeId(4))
//!     .build()
//!     .unwrap();
//! assert_eq!(sfc.depth(), 3);
//! assert_eq!(sfc.merger_count(), 1);
//! ```

use crate::chain::{DagSfc, Layer};
use crate::error::ModelError;
use crate::vnf::VnfCatalog;
use dagsfc_net::VnfTypeId;

/// Builder for [`DagSfc`] chains.
#[derive(Debug, Clone)]
pub struct ChainBuilder {
    catalog: VnfCatalog,
    layers: Vec<Layer>,
}

impl ChainBuilder {
    /// Starts an empty chain over `catalog`.
    pub fn new(catalog: VnfCatalog) -> Self {
        ChainBuilder {
            catalog,
            layers: Vec::new(),
        }
    }

    /// Appends a sequential (singleton) layer.
    #[must_use]
    pub fn then(mut self, vnf: VnfTypeId) -> Self {
        self.layers.push(Layer::new(vec![vnf]));
        self
    }

    /// Appends a parallel layer (implicitly followed by a merger when it
    /// holds more than one VNF).
    #[must_use]
    pub fn parallel(mut self, vnfs: impl IntoIterator<Item = VnfTypeId>) -> Self {
        self.layers.push(Layer::new(vnfs.into_iter().collect()));
        self
    }

    /// Number of layers staged so far.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Finalizes and validates the chain.
    pub fn build(self) -> Result<DagSfc, ModelError> {
        DagSfc::new(self.layers, self.catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_mixed_chain() {
        let sfc = ChainBuilder::new(VnfCatalog::new(6))
            .then(VnfTypeId(0))
            .parallel([VnfTypeId(1), VnfTypeId(2)])
            .then(VnfTypeId(3))
            .build()
            .unwrap();
        assert_eq!(sfc.depth(), 3);
        assert_eq!(sfc.size(), 4);
        assert_eq!(sfc.merger_count(), 1);
        assert_eq!(sfc.layer(1).width(), 2);
    }

    #[test]
    fn parallel_of_one_is_singleton() {
        let sfc = ChainBuilder::new(VnfCatalog::new(2))
            .parallel([VnfTypeId(0)])
            .build()
            .unwrap();
        assert!(!sfc.layer(0).needs_merger());
    }

    #[test]
    fn empty_builder_fails_validation() {
        assert!(matches!(
            ChainBuilder::new(VnfCatalog::new(2)).build(),
            Err(ModelError::EmptyChain)
        ));
    }

    #[test]
    fn invalid_kind_propagates() {
        // Kind 5 is the merger of a 5-kind catalog: not a regular VNF.
        assert!(matches!(
            ChainBuilder::new(VnfCatalog::new(5))
                .then(VnfTypeId(5))
                .build(),
            Err(ModelError::NotARegularVnf(_))
        ));
    }

    #[test]
    fn depth_tracks_staged_layers() {
        let b = ChainBuilder::new(VnfCatalog::new(3))
            .then(VnfTypeId(0))
            .parallel([VnfTypeId(1), VnfTypeId(2)]);
        assert_eq!(b.depth(), 2);
    }
}
