//! # dagsfc-core — the DAG-SFC abstraction and embedding solvers
//!
//! Reproduction of *DAG-SFC: Minimize the Embedding Cost of SFC with
//! Parallel VNFs* (ICPP 2018): the layered DAG abstraction of hybrid
//! service chains, the cost model with multicast-aware link reuse, an
//! independent constraint validator, and the paper's solvers — **BBE**,
//! **MBBE**, and the **RANV**/**MINV** baselines — plus an exact
//! branch-and-bound reference for small instances.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bounds;
pub mod builder;
pub mod chain;
pub mod cost;
pub mod delay;
pub mod embedding;
pub mod error;
pub mod flow;
pub mod ilp;
pub mod metapath;
pub mod protect;
pub mod solvers;
pub mod validate;
pub mod vnf;

pub use bounds::cost_lower_bound;
pub use builder::ChainBuilder;
pub use chain::{DagSfc, Layer};
pub use cost::CostBreakdown;
pub use delay::DelayModel;
pub use embedding::{Accounting, Embedding, EmbeddingStats};
pub use error::{
    rule_infeasible_reason, ModelError, SolveError, DEADLINE_INFEASIBLE_PREFIX,
    RULE_INFEASIBLE_PREFIX,
};
pub use flow::{EmbeddingRequest, Flow, PlacementRules, PrecedenceOrder};
pub use ilp::{IlpModel, IlpStats};
pub use metapath::{meta_path_count, meta_paths, Endpoint, MetaPath, MetaPathKind};
pub use protect::{protect, ProtectError, ProtectedEmbedding};
pub use solvers::{
    audit_outcome, first_rule_violation, verify_admissible, BbeConfig, BbeSolver, ExactSolver,
    MbbeSolver, MbbeStSolver, MinvSolver, RanvSolver, SolveCtx, SolveOutcome, Solver, SolverStats,
    AUDIT_COST_TOLERANCE,
};
pub use validate::{validate, Violation};
pub use vnf::VnfCatalog;
