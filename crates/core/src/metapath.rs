//! Meta-path enumeration (paper §3.3).
//!
//! The logical connections of a DAG-SFC fall into two groups:
//!
//! * **inter-layer** meta-paths `P_1` — from the previous layer's end
//!   point (its merger, its single VNF, or the flow source) to each
//!   parallel VNF of the current layer, plus the final hop from the last
//!   layer's end point to the destination. Inter-layer meta-paths of the
//!   same layer are delivered as a **multicast**: a physical link they
//!   share is charged (and loaded) only once;
//! * **inner-layer** meta-paths `P_2` — from each parallel VNF to its
//!   layer's merger. These carry *different processed versions* of the
//!   traffic and can never share charges.
//!
//! [`meta_paths`] produces the canonical, deterministic ordering that
//! [`crate::embedding::Embedding`] indexes its real-paths by.

use crate::chain::DagSfc;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A logical endpoint of a meta-path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// The flow source (stretched layer `L_0` hosting the dummy VNF).
    Source,
    /// The flow destination (stretched layer `L_{ω+1}`).
    Destination,
    /// Embedding slot `slot` of layer `layer` (merger slot included).
    Slot {
        /// Layer index (0-based).
        layer: usize,
        /// Slot index within the layer; `width` denotes the merger slot.
        slot: usize,
    },
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Source => write!(f, "src"),
            Endpoint::Destination => write!(f, "dst"),
            Endpoint::Slot { layer, slot } => write!(f, "L{layer}[{slot}]"),
        }
    }
}

/// Which group a meta-path belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetaPathKind {
    /// `P_1`: connects adjacent layers; multicast within a group.
    InterLayer,
    /// `P_2`: parallel VNF → merger; always unicast.
    InnerLayer,
}

/// A logical link of the DAG-SFC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MetaPath {
    /// Group kind.
    pub kind: MetaPathKind,
    /// Multicast group id. Inter-layer meta-paths entering layer `l` share
    /// group `l`; the final hop to the destination has group `ω`.
    /// Inner-layer meta-paths carry their own layer index but never share
    /// link charges.
    pub group: usize,
    /// Logical start.
    pub from: Endpoint,
    /// Logical end.
    pub to: Endpoint,
}

/// The end point of layer `l` as an [`Endpoint`].
pub fn layer_endpoint(sfc: &DagSfc, layer: usize) -> Endpoint {
    Endpoint::Slot {
        layer,
        slot: sfc.layer(layer).end_slot(),
    }
}

/// Enumerates all meta-paths of `sfc` in canonical order:
/// for each layer `l` — first its inter-layer paths (one per parallel
/// slot, in slot order), then its inner-layer paths (one per parallel
/// slot, in slot order, parallel layers only) — and finally the
/// inter-layer hop from the last layer's end point to the destination.
pub fn meta_paths(sfc: &DagSfc) -> Vec<MetaPath> {
    let mut out = Vec::new();
    for l in 0..sfc.depth() {
        let from = if l == 0 {
            Endpoint::Source
        } else {
            layer_endpoint(sfc, l - 1)
        };
        let layer = sfc.layer(l);
        for slot in 0..layer.width() {
            out.push(MetaPath {
                kind: MetaPathKind::InterLayer,
                group: l,
                from,
                to: Endpoint::Slot { layer: l, slot },
            });
        }
        if layer.needs_merger() {
            let merger = Endpoint::Slot {
                layer: l,
                slot: layer.end_slot(),
            };
            for slot in 0..layer.width() {
                out.push(MetaPath {
                    kind: MetaPathKind::InnerLayer,
                    group: l,
                    from: Endpoint::Slot { layer: l, slot },
                    to: merger,
                });
            }
        }
    }
    out.push(MetaPath {
        kind: MetaPathKind::InterLayer,
        group: sfc.depth(),
        from: layer_endpoint(sfc, sfc.depth() - 1),
        to: Endpoint::Destination,
    });
    out
}

/// Total number of meta-paths of `sfc` (without enumerating them).
pub fn meta_path_count(sfc: &DagSfc) -> usize {
    let mut count = 1; // final hop to destination
    for layer in sfc.layers() {
        count += layer.width();
        if layer.needs_merger() {
            count += layer.width();
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Layer;
    use crate::vnf::VnfCatalog;
    use dagsfc_net::VnfTypeId;

    fn fig2_sfc() -> DagSfc {
        DagSfc::new(
            vec![
                Layer::new(vec![VnfTypeId(0)]),
                Layer::new(vec![VnfTypeId(1), VnfTypeId(2), VnfTypeId(3), VnfTypeId(4)]),
                Layer::new(vec![VnfTypeId(5), VnfTypeId(6)]),
            ],
            VnfCatalog::new(8),
        )
        .unwrap()
    }

    #[test]
    fn fig2_enumeration() {
        let sfc = fig2_sfc();
        let mps = meta_paths(&sfc);
        // layer0: 1 inter; layer1: 4 inter + 4 inner; layer2: 2 inter +
        // 2 inner; final hop: 1  → 14 total.
        assert_eq!(mps.len(), 14);
        assert_eq!(mps.len(), meta_path_count(&sfc));

        // First meta-path: source → L0[0].
        assert_eq!(mps[0].from, Endpoint::Source);
        assert_eq!(mps[0].to, Endpoint::Slot { layer: 0, slot: 0 });
        assert_eq!(mps[0].kind, MetaPathKind::InterLayer);

        // Layer 1 inter paths start from L0's single slot.
        for slot in 0..4 {
            let mp = mps[1 + slot];
            assert_eq!(mp.kind, MetaPathKind::InterLayer);
            assert_eq!(mp.group, 1);
            assert_eq!(mp.from, Endpoint::Slot { layer: 0, slot: 0 });
            assert_eq!(mp.to, Endpoint::Slot { layer: 1, slot });
        }
        // Layer 1 inner paths end at the merger slot (index 4).
        for slot in 0..4 {
            let mp = mps[5 + slot];
            assert_eq!(mp.kind, MetaPathKind::InnerLayer);
            assert_eq!(mp.from, Endpoint::Slot { layer: 1, slot });
            assert_eq!(mp.to, Endpoint::Slot { layer: 1, slot: 4 });
        }
        // Layer 2 inter paths start from layer 1's merger.
        for slot in 0..2 {
            let mp = mps[9 + slot];
            assert_eq!(mp.from, Endpoint::Slot { layer: 1, slot: 4 });
            assert_eq!(mp.to, Endpoint::Slot { layer: 2, slot });
            assert_eq!(mp.group, 2);
        }
        // Final hop from layer 2's merger to the destination.
        let last = *mps.last().unwrap();
        assert_eq!(last.from, Endpoint::Slot { layer: 2, slot: 2 });
        assert_eq!(last.to, Endpoint::Destination);
        assert_eq!(last.group, 3);
        assert_eq!(last.kind, MetaPathKind::InterLayer);
    }

    #[test]
    fn sequential_chain_has_no_inner_paths() {
        let sfc = DagSfc::sequential(
            &[VnfTypeId(0), VnfTypeId(1), VnfTypeId(2)],
            VnfCatalog::new(4),
        )
        .unwrap();
        let mps = meta_paths(&sfc);
        assert_eq!(mps.len(), 4); // src→0, 0→1, 1→2, 2→dst
        assert!(mps.iter().all(|m| m.kind == MetaPathKind::InterLayer));
        // groups are strictly increasing: 0,1,2,3 — no multicast sharing
        let groups: Vec<_> = mps.iter().map(|m| m.group).collect();
        assert_eq!(groups, vec![0, 1, 2, 3]);
    }

    #[test]
    fn layer_endpoint_picks_merger() {
        let sfc = fig2_sfc();
        assert_eq!(
            layer_endpoint(&sfc, 0),
            Endpoint::Slot { layer: 0, slot: 0 }
        );
        assert_eq!(
            layer_endpoint(&sfc, 1),
            Endpoint::Slot { layer: 1, slot: 4 }
        );
    }

    #[test]
    fn endpoint_display() {
        assert_eq!(Endpoint::Source.to_string(), "src");
        assert_eq!(Endpoint::Destination.to_string(), "dst");
        assert_eq!(Endpoint::Slot { layer: 2, slot: 1 }.to_string(), "L2[1]");
    }

    #[test]
    fn count_matches_enumeration_on_varied_shapes() {
        let c = VnfCatalog::new(6);
        for layers in [
            vec![Layer::new(vec![VnfTypeId(0)])],
            vec![
                Layer::new(vec![VnfTypeId(0), VnfTypeId(1)]),
                Layer::new(vec![VnfTypeId(2)]),
                Layer::new(vec![VnfTypeId(3), VnfTypeId(4), VnfTypeId(5)]),
            ],
        ] {
            let sfc = DagSfc::new(layers, c).unwrap();
            assert_eq!(meta_paths(&sfc).len(), meta_path_count(&sfc));
        }
    }
}
