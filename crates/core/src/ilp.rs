//! Materialization of the integer optimization model (paper §3.3).
//!
//! No adequately-maintained pure-Rust ILP solver exists offline, and the
//! paper itself never solves the IP at scale (it proves NP-hardness and
//! goes greedy). This module nevertheless *builds* the model — the
//! decision variables, the objective of eq. (1), and constraint families
//! (2)–(6) — in an LP-like text format, for three purposes: documenting
//! the formulation executably, sizing the model (variable/constraint
//! counts drive the complexity discussion), and letting users export the
//! instance to an external solver.
//!
//! Real-path variables are grounded over the `k` cheapest loopless paths
//! per meta-path, mirroring the path universe of
//! [`crate::solvers::ExactSolver`].

use crate::chain::DagSfc;
use crate::flow::Flow;
use crate::metapath::{meta_paths, Endpoint, MetaPathKind};
use dagsfc_net::routing::k_shortest_paths;
use dagsfc_net::{LinkId, Network, NodeId, CAP_EPS};
use std::fmt::Write as _;

/// A materialized integer model.
#[derive(Debug, Clone)]
pub struct IlpModel {
    /// Objective row, `min ...`.
    pub objective: String,
    /// Constraint rows in LP syntax.
    pub constraints: Vec<String>,
    /// Binary variable names.
    pub binaries: Vec<String>,
    /// Statistics for the complexity discussion.
    pub stats: IlpStats,
}

/// Model size statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IlpStats {
    /// Assignment variables `x_{v,l,γ}`.
    pub assignment_vars: usize,
    /// Path-selection variables (`x^a_{b,ρ,l,ε}` / `y^{a,l,γ}_{b,ρ}`).
    pub path_vars: usize,
    /// Total constraints.
    pub constraints: usize,
}

impl IlpModel {
    /// Builds the model for one embedding instance, grounding path
    /// variables over the `k_paths` cheapest paths per meta-path.
    pub fn build(net: &Network, sfc: &DagSfc, flow: &Flow, k_paths: usize) -> IlpModel {
        let catalog = sfc.catalog();
        let mut binaries = Vec::new();
        let mut constraints = Vec::new();
        let mut objective_terms: Vec<String> = Vec::new();

        // --- Assignment variables and constraint (4).
        let mut assignment_vars = 0usize;
        for (l, layer) in sfc.layers().iter().enumerate() {
            for slot in 0..layer.slot_count() {
                let kind = layer.slot_kind(slot, catalog);
                let hosts = net.hosts_of(kind);
                let mut row: Vec<String> = Vec::new();
                for &v in hosts {
                    let name = format!("x_v{}_l{}_g{}", v.0, l, slot);
                    // lint:allow(expect) — invariant: host has instance
                    let price = net.vnf_price(v, kind).expect("host has instance");
                    objective_terms.push(format!("{:.6} {name}", price * flow.size));
                    row.push(name.clone());
                    binaries.push(name);
                    assignment_vars += 1;
                }
                // Σ_v x_{v,l,γ} = 1  (eq. 4)
                constraints.push(format!("assign_l{l}_g{slot}: {} = 1", row.join(" + ")));
            }
        }

        // --- Path variables, constraints (5)/(6) in grounded form, and
        //     the link-capacity constraint (3) over path-link incidence.
        // Endpoint candidates are restricted to assigned hosts; to keep
        // the grounded model linear we enumerate (host_a, host_b) pairs.
        let mut path_vars = 0usize;
        let mut link_terms: Vec<Vec<(f64, String)>> = vec![Vec::new(); net.link_count()];
        for (mp_idx, mp) in meta_paths(sfc).iter().enumerate() {
            let froms = endpoint_candidates(net, sfc, flow, mp.from);
            let tos = endpoint_candidates(net, sfc, flow, mp.to);
            let mut row: Vec<String> = Vec::new();
            for &a in &froms {
                for &b in &tos {
                    let rate = flow.rate;
                    let paths = k_shortest_paths(net, a, b, k_paths, &|l: LinkId| {
                        net.link(l).capacity + CAP_EPS >= rate
                    });
                    for (rho, p) in paths.iter().enumerate() {
                        let kind_tag = match mp.kind {
                            MetaPathKind::InterLayer => "x",
                            MetaPathKind::InnerLayer => "y",
                        };
                        let name = format!("{kind_tag}p_m{mp_idx}_a{}_b{}_r{rho}", a.0, b.0);
                        for &l in p.links() {
                            link_terms[l.index()].push((flow.rate, name.clone()));
                        }
                        row.push(name.clone());
                        binaries.push(name);
                        path_vars += 1;
                    }
                }
            }
            if !row.is_empty() {
                // Σ selections ≥ 1 per meta-path (eqs. 5/6 grounded).
                constraints.push(format!("metapath_{mp_idx}: {} >= 1", row.join(" + ")));
            }
        }
        // Link capacity (3) — conservative (no multicast dedup in the
        // grounded linear form; the paper's min{·,1} needs auxiliary
        // variables, noted in the header comment).
        for (i, terms) in link_terms.iter().enumerate() {
            if terms.is_empty() {
                continue;
            }
            let lhs = terms
                .iter()
                .map(|(c, n)| format!("{c:.6} {n}"))
                .collect::<Vec<_>>()
                .join(" + ");
            constraints.push(format!(
                "cap_e{i}: {lhs} <= {:.6}",
                net.link(LinkId(i as u32)).capacity
            ));
        }

        // VNF capacity (2): Σ_slots rate·x_{v,l,γ} ≤ r_{v,f(i)}.
        for v in net.node_ids() {
            for inst in net.node(v).instances() {
                let mut terms: Vec<String> = Vec::new();
                for (l, layer) in sfc.layers().iter().enumerate() {
                    for slot in 0..layer.slot_count() {
                        if layer.slot_kind(slot, catalog) == inst.vnf {
                            terms.push(format!("{:.6} x_v{}_l{l}_g{slot}", flow.rate, v.0));
                        }
                    }
                }
                if !terms.is_empty() {
                    constraints.push(format!(
                        "vnfcap_v{}_f{}: {} <= {:.6}",
                        v.0,
                        inst.vnf.0,
                        terms.join(" + "),
                        inst.capacity
                    ));
                }
            }
        }

        let stats = IlpStats {
            assignment_vars,
            path_vars,
            constraints: constraints.len(),
        };
        IlpModel {
            objective: format!("min: {}", objective_terms.join(" + ")),
            constraints,
            binaries,
            stats,
        }
    }

    /// Serializes the model in an LP-like text format.
    pub fn to_lp_string(&self) -> String {
        let mut out = String::new();
        writeln!(out, "{}", self.objective).ok();
        writeln!(out, "subject to:").ok();
        for c in &self.constraints {
            writeln!(out, "  {c}").ok();
        }
        writeln!(out, "binary:").ok();
        for b in &self.binaries {
            writeln!(out, "  {b}").ok();
        }
        out
    }
}

fn endpoint_candidates(net: &Network, sfc: &DagSfc, flow: &Flow, ep: Endpoint) -> Vec<NodeId> {
    match ep {
        Endpoint::Source => vec![flow.src],
        Endpoint::Destination => vec![flow.dst],
        Endpoint::Slot { layer, slot } => {
            let kind = sfc.layer(layer).slot_kind(slot, sfc.catalog());
            net.hosts_of(kind).to_vec()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vnf::VnfCatalog;
    use dagsfc_net::VnfTypeId;

    fn net() -> Network {
        let mut g = Network::new();
        g.add_nodes(3);
        g.add_link(NodeId(0), NodeId(1), 1.0, 5.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 1.0, 5.0).unwrap();
        g.deploy_vnf(NodeId(1), VnfTypeId(0), 2.0, 5.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(0), 3.0, 5.0).unwrap();
        g
    }

    #[test]
    fn builds_assignment_rows() {
        let g = net();
        let sfc = DagSfc::sequential(&[VnfTypeId(0)], VnfCatalog::new(1)).unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(2));
        let m = IlpModel::build(&g, &sfc, &flow, 3);
        assert_eq!(m.stats.assignment_vars, 2); // two hosts of f0
        assert!(m.objective.starts_with("min:"));
        assert!(m.objective.contains("2.000000 x_v1_l0_g0"));
        assert!(m
            .constraints
            .iter()
            .any(|c| c.starts_with("assign_l0_g0:") && c.ends_with("= 1")));
    }

    #[test]
    fn grounds_metapath_and_capacity_rows() {
        let g = net();
        let sfc = DagSfc::sequential(&[VnfTypeId(0)], VnfCatalog::new(1)).unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(2));
        let m = IlpModel::build(&g, &sfc, &flow, 3);
        // 2 meta-paths (src→f0, f0→dst), each grounded.
        assert_eq!(
            m.constraints
                .iter()
                .filter(|c| c.starts_with("metapath_"))
                .count(),
            2
        );
        assert!(m.constraints.iter().any(|c| c.starts_with("cap_e0:")));
        assert!(m.constraints.iter().any(|c| c.starts_with("vnfcap_v1_f0:")));
        assert!(m.stats.path_vars > 0);
        assert_eq!(m.stats.constraints, m.constraints.len());
    }

    #[test]
    fn lp_serialization_well_formed() {
        let g = net();
        let sfc = DagSfc::sequential(&[VnfTypeId(0)], VnfCatalog::new(1)).unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(2));
        let m = IlpModel::build(&g, &sfc, &flow, 2);
        let lp = m.to_lp_string();
        assert!(lp.contains("subject to:"));
        assert!(lp.contains("binary:"));
        assert_eq!(
            lp.lines().filter(|l| l.starts_with("  ")).count(),
            m.constraints.len() + m.binaries.len()
        );
    }
}
