//! The VNF universe: regular kinds, the merger, and the dummy.
//!
//! The paper's VNF set is `F = {f(1), …, f(n)}` plus two special kinds:
//! the dummy `f(0)` assigned to the stretched source/destination layers,
//! and the merger `f(n+1)` that integrates the outputs of a parallel VNF
//! set. In this implementation regular kinds occupy type ids `0..n` and
//! the merger is type id `n`; the dummy is purely virtual (it costs
//! nothing and is hosted nowhere), so it never gets a deployable id.

use dagsfc_net::VnfTypeId;
use serde::{Deserialize, Serialize};

/// The catalog of VNF kinds available from the providers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VnfCatalog {
    regular: u16,
}

impl VnfCatalog {
    /// A catalog with `regular` regular VNF kinds (ids `0..regular`) plus
    /// the merger kind (id `regular`).
    ///
    /// # Panics
    /// Panics if `regular` is zero.
    pub fn new(regular: u16) -> Self {
        assert!(regular > 0, "catalog needs at least one regular VNF kind");
        VnfCatalog { regular }
    }

    /// Number of regular VNF kinds (the paper's `n`).
    #[inline]
    pub fn regular_count(&self) -> usize {
        self.regular as usize
    }

    /// Number of *deployable* kinds: regular kinds plus the merger.
    #[inline]
    pub fn deployable_count(&self) -> usize {
        self.regular as usize + 1
    }

    /// The merger kind `f(n+1)`.
    #[inline]
    pub fn merger(&self) -> VnfTypeId {
        VnfTypeId(self.regular)
    }

    /// Whether `v` is a regular kind.
    #[inline]
    pub fn is_regular(&self, v: VnfTypeId) -> bool {
        v.0 < self.regular
    }

    /// Whether `v` is the merger kind.
    #[inline]
    pub fn is_merger(&self, v: VnfTypeId) -> bool {
        v.0 == self.regular
    }

    /// Iterator over the regular kinds.
    pub fn regular_kinds(&self) -> impl Iterator<Item = VnfTypeId> {
        (0..self.regular).map(VnfTypeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout() {
        let c = VnfCatalog::new(12);
        assert_eq!(c.regular_count(), 12);
        assert_eq!(c.deployable_count(), 13);
        assert_eq!(c.merger(), VnfTypeId(12));
        assert!(c.is_regular(VnfTypeId(0)));
        assert!(c.is_regular(VnfTypeId(11)));
        assert!(!c.is_regular(VnfTypeId(12)));
        assert!(c.is_merger(VnfTypeId(12)));
        assert!(!c.is_merger(VnfTypeId(3)));
    }

    #[test]
    fn regular_kind_iteration() {
        let c = VnfCatalog::new(3);
        let kinds: Vec<_> = c.regular_kinds().collect();
        assert_eq!(kinds, vec![VnfTypeId(0), VnfTypeId(1), VnfTypeId(2)]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_regular_panics() {
        VnfCatalog::new(0);
    }
}
