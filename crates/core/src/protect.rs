//! 1+1 protection of embeddings — a survivability extension.
//!
//! The paper's related work motivates availability-aware chain mapping
//! (its ref. [3]); this module adds the standard mechanism on top of any
//! solver's embedding: every non-trivial real-path gets a **link-
//! disjoint backup**, so no single link failure can sever a meta-path.
//! Backups come from Bhandari pairs
//! ([`dagsfc_net::routing::disjoint_path_pair`]), which also survive
//! *trap topologies* where "shortest path, then shortest path avoiding
//! it" finds nothing. When the pair's cheaper member differs from the
//! solver's primary, the primary is re-routed to it (documented —
//! protection may change the working path, exactly like 1+1 in optical
//! networks).

use crate::chain::DagSfc;
use crate::cost::CostBreakdown;
use crate::embedding::Embedding;
use crate::error::ModelError;
use crate::flow::Flow;
use dagsfc_net::routing::disjoint_path_pair;
use dagsfc_net::{LinkId, Network, Path, CAP_EPS};

/// A protected embedding: working paths plus per-meta-path backups.
#[derive(Debug, Clone)]
pub struct ProtectedEmbedding {
    /// The (possibly re-routed) working embedding.
    pub embedding: Embedding,
    /// Backup real-path per meta-path, in canonical meta-path order.
    /// `None` for trivial (colocated) meta-paths, which cannot fail.
    pub backups: Vec<Option<Path>>,
    /// Extra link cost of the backups (simple per-path accounting — the
    /// backup of a multicast branch carries its own traffic copy on
    /// failover, so no multicast discount applies).
    pub backup_cost: CostBreakdown,
}

impl ProtectedEmbedding {
    /// Number of meta-paths that carry a backup.
    pub fn protected_count(&self) -> usize {
        self.backups.iter().filter(|b| b.is_some()).count()
    }

    /// Whether the chain survives the failure of `link`: every meta-path
    /// using it must have a backup that avoids it.
    pub fn survives_link_failure(&self, link: LinkId) -> bool {
        for (path, backup) in self.embedding.paths().iter().zip(&self.backups) {
            if path.links().contains(&link) {
                match backup {
                    Some(b) if !b.links().contains(&link) => {}
                    _ => return false,
                }
            }
        }
        true
    }
}

/// Failure modes of protection.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtectError {
    /// A meta-path's endpoints are separated by a bridge: no disjoint
    /// pair exists.
    Unprotectable {
        /// Canonical meta-path index.
        meta_path: usize,
    },
    /// Model-level failure while rebuilding the embedding.
    Model(ModelError),
}

impl std::fmt::Display for ProtectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtectError::Unprotectable { meta_path } => {
                write!(
                    f,
                    "meta-path #{meta_path} crosses a bridge; no disjoint backup"
                )
            }
            ProtectError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for ProtectError {}

impl From<ModelError> for ProtectError {
    fn from(e: ModelError) -> Self {
        ProtectError::Model(e)
    }
}

/// Protects every non-trivial real-path of `emb` with a link-disjoint
/// backup. Paths may be re-routed onto the Bhandari pair's cheaper
/// member; trivial (same-node) meta-paths need no protection.
pub fn protect(
    net: &Network,
    sfc: &DagSfc,
    flow: &Flow,
    emb: &Embedding,
) -> Result<ProtectedEmbedding, ProtectError> {
    let rate = flow.rate;
    let filter = |l: LinkId| net.link(l).capacity + CAP_EPS >= rate;
    let mut new_paths: Vec<Path> = Vec::with_capacity(emb.paths().len());
    let mut backups: Vec<Option<Path>> = Vec::with_capacity(emb.paths().len());
    let mut backup_link_price = 0.0;

    for (idx, path) in emb.paths().iter().enumerate() {
        if path.is_empty() {
            new_paths.push(path.clone());
            backups.push(None);
            continue;
        }
        let pair = disjoint_path_pair(net, path.source(), path.target(), &filter)
            .ok_or(ProtectError::Unprotectable { meta_path: idx })?;
        backup_link_price += pair.backup.price(net);
        new_paths.push(pair.primary);
        backups.push(Some(pair.backup));
    }

    let embedding = Embedding::new(sfc, emb.assignments().to_vec(), new_paths)?;
    Ok(ProtectedEmbedding {
        embedding,
        backups,
        backup_cost: CostBreakdown {
            vnf: 0.0,
            link: backup_link_price * flow.size,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::{MbbeSolver, Solver};
    use crate::validate::validate;
    use crate::vnf::VnfCatalog;
    use dagsfc_net::{generator, NetGenConfig, NodeId, VnfTypeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rich_net() -> Network {
        // Degree-5 random net: plenty of disjoint pairs.
        let cfg = NetGenConfig {
            nodes: 40,
            avg_degree: 5.0,
            vnf_kinds: 5,
            deploy_ratio: 0.5,
            ..NetGenConfig::default()
        };
        generator::generate(&cfg, &mut StdRng::seed_from_u64(21)).unwrap()
    }

    #[test]
    fn protects_a_solver_embedding() {
        let net = rich_net();
        let sfc = DagSfc::new(
            vec![
                crate::chain::Layer::new(vec![VnfTypeId(0)]),
                crate::chain::Layer::new(vec![VnfTypeId(1), VnfTypeId(2)]),
            ],
            VnfCatalog::new(4),
        )
        .unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(39));
        let out = MbbeSolver::new().solve(&net, &sfc, &flow).unwrap();
        let protected = protect(&net, &sfc, &flow, &out.embedding).unwrap();
        // The re-routed working embedding still satisfies every
        // constraint.
        validate(&net, &sfc, &flow, &protected.embedding).unwrap();
        // Every non-trivial path carries a disjoint backup.
        for (p, b) in protected.embedding.paths().iter().zip(&protected.backups) {
            match b {
                Some(backup) => {
                    assert_eq!(backup.source(), p.source());
                    assert_eq!(backup.target(), p.target());
                    for l in p.links() {
                        assert!(!backup.links().contains(l), "backup shares a link");
                    }
                }
                None => assert!(p.is_empty()),
            }
        }
        assert!(protected.backup_cost.link > 0.0);
        assert_eq!(protected.backup_cost.vnf, 0.0);
    }

    #[test]
    fn survives_any_single_link_failure() {
        let net = rich_net();
        let sfc = DagSfc::sequential(&[VnfTypeId(0), VnfTypeId(1)], VnfCatalog::new(4)).unwrap();
        let flow = Flow::unit(NodeId(1), NodeId(38));
        let out = MbbeSolver::new().solve(&net, &sfc, &flow).unwrap();
        let protected = protect(&net, &sfc, &flow, &out.embedding).unwrap();
        for l in net.link_ids() {
            assert!(
                protected.survives_link_failure(l),
                "single failure of {l} severs the chain"
            );
        }
        assert!(protected.protected_count() >= 1);
    }

    #[test]
    fn bridge_is_unprotectable() {
        // A path graph: every link is a bridge.
        let mut g = Network::new();
        g.add_nodes(3);
        g.add_link(NodeId(0), NodeId(1), 1.0, 10.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(1), VnfTypeId(0), 1.0, 10.0).unwrap();
        let sfc = DagSfc::sequential(&[VnfTypeId(0)], VnfCatalog::new(1)).unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(2));
        let out = MbbeSolver::new().solve(&g, &sfc, &flow).unwrap();
        assert!(matches!(
            protect(&g, &sfc, &flow, &out.embedding),
            Err(ProtectError::Unprotectable { .. })
        ));
    }

    #[test]
    fn colocated_chain_needs_no_backups() {
        let mut g = Network::new();
        g.add_nodes(2);
        g.add_link(NodeId(0), NodeId(1), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(0), VnfTypeId(0), 1.0, 10.0).unwrap();
        let sfc = DagSfc::sequential(&[VnfTypeId(0)], VnfCatalog::new(1)).unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(0));
        let out = MbbeSolver::new().solve(&g, &sfc, &flow).unwrap();
        let protected = protect(&g, &sfc, &flow, &out.embedding).unwrap();
        assert_eq!(protected.protected_count(), 0);
        assert_eq!(protected.backup_cost.link, 0.0);
        for l in g.link_ids() {
            assert!(protected.survives_link_failure(l));
        }
    }

    #[test]
    fn error_display() {
        let e = ProtectError::Unprotectable { meta_path: 3 };
        assert!(e.to_string().contains("#3"));
    }
}
