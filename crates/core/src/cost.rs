//! Cost bookkeeping for the objective of eq. (1):
//! `min Σ α_{v,i}·c_{v,f(i)}·z + Σ α_{g,h}·c_{e}·z`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Add;

/// Total embedding cost split into its two objective terms.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Total VNF rental cost `Σ α_{v,i}·c_{v,f(i)}·z`.
    pub vnf: f64,
    /// Total link cost `Σ α_{g,h}·c_e·z`.
    pub link: f64,
}

impl CostBreakdown {
    /// Zero cost.
    pub const ZERO: CostBreakdown = CostBreakdown {
        vnf: 0.0,
        link: 0.0,
    };

    /// The objective value.
    #[inline]
    pub fn total(&self) -> f64 {
        self.vnf + self.link
    }
}

impl Add for CostBreakdown {
    type Output = CostBreakdown;
    fn add(self, rhs: CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            vnf: self.vnf + rhs.vnf,
            link: self.link + rhs.link,
        }
    }
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:.4} (vnf {:.4} + link {:.4})",
            self.total(),
            self.vnf,
            self.link
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_addition() {
        let a = CostBreakdown {
            vnf: 2.0,
            link: 0.5,
        };
        let b = CostBreakdown {
            vnf: 1.0,
            link: 1.5,
        };
        assert_eq!(a.total(), 2.5);
        let c = a + b;
        assert_eq!(c.vnf, 3.0);
        assert_eq!(c.link, 2.0);
        assert_eq!(c.total(), 5.0);
        assert_eq!(CostBreakdown::ZERO.total(), 0.0);
    }

    #[test]
    fn display_shows_split() {
        let c = CostBreakdown {
            vnf: 1.0,
            link: 0.25,
        };
        let s = c.to_string();
        assert!(s.contains("1.25") && s.contains("0.25"));
    }
}
