//! The DAG-SFC abstraction (paper §3.1): a hybrid SFC standardized into
//! sequential layers, each a single VNF or a parallel VNF set followed by
//! a merger.

use crate::error::ModelError;
use crate::flow::{PlacementRules, PrecedenceOrder};
use crate::vnf::VnfCatalog;
use dagsfc_net::VnfTypeId;
use dagsfc_nfp::{HybridChain, PartialOrderChain, TransformOptions};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One layer `L_l` of a DAG-SFC: a parallel VNF set.
///
/// A layer of width > 1 is implicitly followed by a merger `f(n+1)`
/// (paper convention `f_l^{φ_l+1}`); a singleton layer has none.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layer {
    vnfs: Vec<VnfTypeId>,
}

impl Layer {
    /// Builds a layer from its parallel VNF set.
    pub fn new(vnfs: Vec<VnfTypeId>) -> Self {
        Layer { vnfs }
    }

    /// The parallel VNFs of this layer (the paper's `f_l^1..f_l^{φ_l}`),
    /// merger excluded.
    #[inline]
    pub fn vnfs(&self) -> &[VnfTypeId] {
        &self.vnfs
    }

    /// Number of parallel VNFs `φ_l`.
    #[inline]
    pub fn width(&self) -> usize {
        self.vnfs.len()
    }

    /// Whether the layer needs a merger (width > 1).
    #[inline]
    pub fn needs_merger(&self) -> bool {
        self.vnfs.len() > 1
    }

    /// Number of embedding slots: parallel VNFs plus the merger slot if
    /// one is needed.
    #[inline]
    pub fn slot_count(&self) -> usize {
        if self.needs_merger() {
            self.vnfs.len() + 1
        } else {
            1
        }
    }

    /// The slot index acting as this layer's *end node* in the embedding:
    /// the merger slot for parallel layers, slot 0 for singletons.
    #[inline]
    pub fn end_slot(&self) -> usize {
        if self.needs_merger() {
            self.vnfs.len()
        } else {
            0
        }
    }

    /// The VNF kind a slot must be mapped onto (merger slot included).
    ///
    /// # Panics
    /// Panics if `slot >= slot_count()`.
    pub fn slot_kind(&self, slot: usize, catalog: &VnfCatalog) -> VnfTypeId {
        if slot < self.vnfs.len() {
            self.vnfs[slot]
        } else if self.needs_merger() && slot == self.vnfs.len() {
            catalog.merger()
        } else {
            panic!(
                "slot {slot} out of range for layer of width {}",
                self.width()
            );
        }
    }

    /// The distinct VNF kinds a search must cover to embed this layer
    /// (merger included for parallel layers), sorted ascending.
    pub fn required_kinds(&self, catalog: &VnfCatalog) -> Vec<VnfTypeId> {
        let mut kinds = self.vnfs.clone();
        if self.needs_merger() {
            kinds.push(catalog.merger());
        }
        kinds.sort_unstable();
        kinds.dedup();
        kinds
    }
}

/// A standardized DAG service function chain `S = {L_1, …, L_ω}`.
///
/// Beyond the layered structure, a chain may carry the generalized
/// request vocabulary: optional [`PlacementRules`] (affinity /
/// anti-affinity kind pairs) and an optional [`PrecedenceOrder`] (the
/// partial-order edges the layering was derived from). Both are
/// `Option` so every pre-rule serialized chain — committed traces, wire
/// clients, saved instances — keeps deserializing unchanged, decoding
/// missing keys to `None`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DagSfc {
    layers: Vec<Layer>,
    catalog: VnfCatalog,
    rules: Option<PlacementRules>,
    order: Option<PrecedenceOrder>,
}

impl DagSfc {
    /// Builds a DAG-SFC, validating that every layer is non-empty and
    /// uses only regular VNF kinds from `catalog`.
    pub fn new(layers: Vec<Layer>, catalog: VnfCatalog) -> Result<Self, ModelError> {
        if layers.is_empty() {
            return Err(ModelError::EmptyChain);
        }
        for (l, layer) in layers.iter().enumerate() {
            if layer.vnfs.is_empty() {
                return Err(ModelError::EmptyLayer(l));
            }
            for &v in &layer.vnfs {
                if !catalog.is_regular(v) {
                    return Err(ModelError::NotARegularVnf(v));
                }
            }
        }
        Ok(DagSfc {
            layers,
            catalog,
            rules: None,
            order: None,
        })
    }

    /// A fully sequential chain: one VNF per layer (the traditional SFC
    /// of the paper's Fig. 1(a)).
    pub fn sequential(vnfs: &[VnfTypeId], catalog: VnfCatalog) -> Result<Self, ModelError> {
        DagSfc::new(vnfs.iter().map(|&v| Layer::new(vec![v])).collect(), catalog)
    }

    /// Builds a DAG-SFC from an NFP [`HybridChain`] whose NF ids are used
    /// directly as VNF type ids.
    pub fn from_hybrid(hybrid: &HybridChain, catalog: VnfCatalog) -> Result<Self, ModelError> {
        DagSfc::new(
            hybrid
                .layers()
                .iter()
                .map(|layer| Layer::new(layer.iter().map(|&nf| VnfTypeId(nf as u16)).collect()))
                .collect(),
            catalog,
        )
    }

    /// Builds a DAG-SFC straight from a derived [`PartialOrderChain`]:
    /// the layers are its greedy linear-extension layering (so every
    /// layered-expressible request remains a special case), and the
    /// precedence edges ride along as a [`PrecedenceOrder`] over
    /// flattened regular-slot positions so downstream admission and the
    /// auditor can re-check the DAG independently.
    pub fn from_partial_order(
        po: &PartialOrderChain,
        opts: TransformOptions,
        catalog: VnfCatalog,
    ) -> Result<Self, ModelError> {
        let sfc = DagSfc::from_hybrid(&po.to_hybrid_chain(opts), catalog)?;
        Ok(sfc.with_order(PrecedenceOrder {
            edges: po
                .edges()
                .iter()
                .map(|&(i, j)| (i as u32, j as u32))
                .collect(),
        }))
    }

    /// The same chain with placement rules attached (`None` clears).
    pub fn with_rules(mut self, rules: PlacementRules) -> Self {
        self.rules = if rules.is_empty() { None } else { Some(rules) };
        self
    }

    /// The same chain with a precedence order attached (`None` clears).
    pub fn with_order(mut self, order: PrecedenceOrder) -> Self {
        self.order = if order.is_empty() { None } else { Some(order) };
        self
    }

    /// The placement rules this chain carries, if any.
    #[inline]
    pub fn rules(&self) -> Option<&PlacementRules> {
        self.rules.as_ref()
    }

    /// The precedence order this chain carries, if any.
    #[inline]
    pub fn order(&self) -> Option<&PrecedenceOrder> {
        self.order.as_ref()
    }

    /// The layers `L_1..L_ω`.
    #[inline]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// A specific layer.
    #[inline]
    pub fn layer(&self, l: usize) -> &Layer {
        &self.layers[l]
    }

    /// Number of layers `ω`.
    #[inline]
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// SFC size: the number of (regular) VNFs, mergers excluded — the
    /// quantity the paper sweeps in Fig. 6(a).
    pub fn size(&self) -> usize {
        self.layers.iter().map(|l| l.width()).sum()
    }

    /// Number of merger instances required.
    pub fn merger_count(&self) -> usize {
        self.layers.iter().filter(|l| l.needs_merger()).count()
    }

    /// Widest layer `φ = max φ_l`.
    pub fn max_width(&self) -> usize {
        self.layers.iter().map(|l| l.width()).max().unwrap_or(0)
    }

    /// The catalog this chain draws from.
    #[inline]
    pub fn catalog(&self) -> &VnfCatalog {
        &self.catalog
    }

    /// Total number of embedding slots (VNFs + mergers).
    pub fn slot_total(&self) -> usize {
        self.layers.iter().map(|l| l.slot_count()).sum()
    }
}

impl fmt::Display for DagSfc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[src]")?;
        for layer in &self.layers {
            write!(f, " -> ")?;
            if layer.needs_merger() {
                write!(f, "(")?;
                for (i, v) in layer.vnfs().iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")+merge")?;
            } else {
                write!(f, "{}", layer.vnfs()[0])?;
            }
        }
        write!(f, " -> [dst]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> VnfCatalog {
        VnfCatalog::new(8)
    }

    #[test]
    fn layer_geometry() {
        let c = catalog();
        let single = Layer::new(vec![VnfTypeId(3)]);
        assert_eq!(single.width(), 1);
        assert!(!single.needs_merger());
        assert_eq!(single.slot_count(), 1);
        assert_eq!(single.end_slot(), 0);
        assert_eq!(single.slot_kind(0, &c), VnfTypeId(3));
        assert_eq!(single.required_kinds(&c), vec![VnfTypeId(3)]);

        let par = Layer::new(vec![VnfTypeId(1), VnfTypeId(4), VnfTypeId(2)]);
        assert_eq!(par.width(), 3);
        assert!(par.needs_merger());
        assert_eq!(par.slot_count(), 4);
        assert_eq!(par.end_slot(), 3);
        assert_eq!(par.slot_kind(3, &c), c.merger());
        assert_eq!(
            par.required_kinds(&c),
            vec![VnfTypeId(1), VnfTypeId(2), VnfTypeId(4), c.merger()]
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_slot_panics() {
        Layer::new(vec![VnfTypeId(0)]).slot_kind(1, &catalog());
    }

    #[test]
    fn paper_fig2_chain() {
        // Fig. 2 bottom: layer1 = {f1}, layer2 = {f2,f3,f4,f5}+merger,
        // layer3 = {f6,f7}+merger.
        let c = catalog();
        let sfc = DagSfc::new(
            vec![
                Layer::new(vec![VnfTypeId(0)]),
                Layer::new(vec![VnfTypeId(1), VnfTypeId(2), VnfTypeId(3), VnfTypeId(4)]),
                Layer::new(vec![VnfTypeId(5), VnfTypeId(6)]),
            ],
            c,
        )
        .unwrap();
        assert_eq!(sfc.depth(), 3);
        assert_eq!(sfc.size(), 7);
        assert_eq!(sfc.merger_count(), 2);
        assert_eq!(sfc.max_width(), 4);
        assert_eq!(sfc.slot_total(), 1 + 5 + 3);
        let shown = sfc.to_string();
        assert!(shown.contains("(f(1)|f(2)|f(3)|f(4))+merge"));
        assert!(shown.starts_with("[src]"));
        assert!(shown.ends_with("[dst]"));
    }

    #[test]
    fn validation_errors() {
        let c = catalog();
        assert_eq!(DagSfc::new(vec![], c), Err(ModelError::EmptyChain));
        assert_eq!(
            DagSfc::new(vec![Layer::new(vec![])], c),
            Err(ModelError::EmptyLayer(0))
        );
        // merger kind (id 8) is not a regular chain member
        assert_eq!(
            DagSfc::new(vec![Layer::new(vec![VnfTypeId(8)])], c),
            Err(ModelError::NotARegularVnf(VnfTypeId(8)))
        );
    }

    #[test]
    fn sequential_constructor() {
        let sfc =
            DagSfc::sequential(&[VnfTypeId(0), VnfTypeId(1), VnfTypeId(2)], catalog()).unwrap();
        assert_eq!(sfc.depth(), 3);
        assert_eq!(sfc.size(), 3);
        assert_eq!(sfc.merger_count(), 0);
        assert_eq!(sfc.max_width(), 1);
    }

    #[test]
    fn from_partial_order_matches_from_hybrid_and_carries_edges() {
        use dagsfc_nfp::{
            catalog::{enterprise_catalog, find},
            DependencyMatrix,
        };
        let cat = enterprise_catalog();
        let deps = DependencyMatrix::analyze(&cat);
        // nat → firewall is order-dependent; firewall ∥ ids.
        let chain: Vec<usize> = ["nat", "firewall", "ids"]
            .iter()
            .map(|n| find(&cat, n).unwrap().0)
            .collect();
        let po = PartialOrderChain::derive(&chain, &deps);
        let vnf_catalog = VnfCatalog::new(cat.len() as u16);
        let opts = TransformOptions::default();
        let sfc = DagSfc::from_partial_order(&po, opts, vnf_catalog).unwrap();
        // Layer structure identical to the legacy hybrid path.
        let legacy =
            DagSfc::from_hybrid(&dagsfc_nfp::to_hybrid(&chain, &deps, opts), vnf_catalog).unwrap();
        assert_eq!(sfc.layers(), legacy.layers());
        // The precedence edges ride along, in position space.
        let order = sfc.order().expect("order attached");
        assert_eq!(
            order.edges,
            po.edges()
                .iter()
                .map(|&(i, j)| (i as u32, j as u32))
                .collect::<Vec<_>>()
        );
        assert!(sfc.rules().is_none());
    }

    #[test]
    fn rules_attach_and_empty_rules_clear() {
        use crate::flow::PlacementRules;
        let sfc = DagSfc::sequential(&[VnfTypeId(0), VnfTypeId(1)], catalog()).unwrap();
        assert!(sfc.rules().is_none());
        let ruled = sfc.clone().with_rules(PlacementRules {
            affinity: vec![(VnfTypeId(0), VnfTypeId(1))],
            anti_affinity: vec![],
        });
        assert_eq!(ruled.rules().unwrap().affinity.len(), 1);
        // Attaching an empty rule set normalizes back to None, so ruled
        // and unruled chains with no effective constraints compare equal.
        let cleared = ruled.with_rules(PlacementRules::default());
        assert_eq!(cleared, sfc);
    }

    /// Pre-rule payloads (no `rules`/`order` keys) must keep
    /// deserializing: both fields decode missing keys to `None`, so
    /// every committed trace and legacy wire client stays loadable.
    #[test]
    fn chain_payload_without_rule_keys_still_loads() {
        let legacy = DagSfc::sequential(&[VnfTypeId(0), VnfTypeId(1)], catalog()).unwrap();
        let mut v = legacy.to_value();
        if let serde::value::Value::Object(entries) = &mut v {
            entries.retain(|(k, _)| k.as_str() != "rules" && k.as_str() != "order");
        } else {
            panic!("chain must serialize as an object");
        }
        let back = DagSfc::from_value(&v).unwrap();
        assert_eq!(back, legacy);
        // And rules/order round-trip when present.
        let ruled = legacy
            .clone()
            .with_rules(crate::flow::PlacementRules {
                affinity: vec![(VnfTypeId(0), VnfTypeId(1))],
                anti_affinity: vec![(VnfTypeId(1), VnfTypeId(2))],
            })
            .with_order(crate::flow::PrecedenceOrder {
                edges: vec![(0, 1)],
            });
        let back = DagSfc::from_value(&ruled.to_value()).unwrap();
        assert_eq!(back, ruled);
    }

    #[test]
    fn from_hybrid_roundtrip() {
        use dagsfc_nfp::{
            catalog::enterprise_catalog, to_hybrid, DependencyMatrix, TransformOptions,
        };
        let cat = enterprise_catalog();
        let deps = DependencyMatrix::analyze(&cat);
        let chain = [0usize, 1, 9]; // firewall, ids, dpi — all parallel
        let hybrid = to_hybrid(&chain, &deps, TransformOptions::default());
        let vnf_catalog = VnfCatalog::new(cat.len() as u16);
        let sfc = DagSfc::from_hybrid(&hybrid, vnf_catalog).unwrap();
        assert_eq!(sfc.depth(), 1);
        assert_eq!(sfc.size(), 3);
        assert_eq!(sfc.merger_count(), 1);
    }
}
