//! The embedding of a DAG-SFC into the target network, and the reuse
//! accounting of eqs. (7)–(10).
//!
//! An [`Embedding`] maps every embedding slot (parallel VNFs and mergers)
//! to a network node, and every meta-path (in the canonical order of
//! [`crate::metapath::meta_paths`]) to a real-path. Cost and load follow
//! the paper's reuse semantics:
//!
//! * a VNF instance reused by `k` slots is rented `k` times
//!   (`α_{v,i} = k`, eq. (7));
//! * inter-layer meta-paths of one layer form a multicast: a link shared
//!   by several of them is charged once per layer (the `min{·,1}` of
//!   eq. (9));
//! * inner-layer meta-paths carry distinct traffic versions: every link
//!   occurrence is charged (eq. (10)).

use crate::chain::DagSfc;
use crate::cost::CostBreakdown;
use crate::error::ModelError;
use crate::flow::Flow;
use crate::metapath::{meta_paths, Endpoint, MetaPath, MetaPathKind};
use dagsfc_net::{LinkId, Network, NodeId, Path, VnfTypeId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// A complete embedding: slot → node assignments plus one real-path per
/// meta-path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Embedding {
    /// `assignments[layer][slot]` — merger slot included for parallel
    /// layers.
    assignments: Vec<Vec<NodeId>>,
    /// Real-paths in the canonical meta-path order.
    paths: Vec<Path>,
}

impl Embedding {
    /// Builds an embedding, validating its shape against `sfc`:
    /// layer/slot counts must match and the number of paths must equal
    /// the meta-path count.
    pub fn new(
        sfc: &DagSfc,
        assignments: Vec<Vec<NodeId>>,
        paths: Vec<Path>,
    ) -> Result<Self, ModelError> {
        if assignments.len() != sfc.depth() {
            return Err(ModelError::ShapeMismatch(format!(
                "expected {} layers of assignments, got {}",
                sfc.depth(),
                assignments.len()
            )));
        }
        for (l, slots) in assignments.iter().enumerate() {
            let want = sfc.layer(l).slot_count();
            if slots.len() != want {
                return Err(ModelError::ShapeMismatch(format!(
                    "layer {l}: expected {want} slots, got {}",
                    slots.len()
                )));
            }
        }
        let want_paths = crate::metapath::meta_path_count(sfc);
        if paths.len() != want_paths {
            return Err(ModelError::ShapeMismatch(format!(
                "expected {want_paths} real-paths, got {}",
                paths.len()
            )));
        }
        Ok(Embedding { assignments, paths })
    }

    /// The slot → node assignments.
    #[inline]
    pub fn assignments(&self) -> &[Vec<NodeId>] {
        &self.assignments
    }

    /// The real-paths in canonical meta-path order.
    #[inline]
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// The node a logical endpoint is mapped to.
    pub fn endpoint_node(&self, flow: &Flow, ep: Endpoint) -> NodeId {
        match ep {
            Endpoint::Source => flow.src,
            Endpoint::Destination => flow.dst,
            Endpoint::Slot { layer, slot } => self.assignments[layer][slot],
        }
    }

    /// The node assigned to `(layer, slot)`.
    #[inline]
    pub fn node_of(&self, layer: usize, slot: usize) -> NodeId {
        self.assignments[layer][slot]
    }

    /// Full reuse accounting: objective cost plus per-resource loads.
    ///
    /// Fails with [`ModelError::MissingVnfInstance`] when the embedding
    /// references a VNF instance the network does not deploy, instead of
    /// silently pricing it as `f64::INFINITY` — so a malformed embedding
    /// is an ordinary error, never an abort. (The panicking `account`
    /// shortcut this replaced is gone: long-lived services must not die
    /// on one bad request.)
    pub fn try_account(
        &self,
        net: &Network,
        sfc: &DagSfc,
        flow: &Flow,
    ) -> Result<Accounting, ModelError> {
        let mut missing = None;
        let acct = self.account_lenient(net, sfc, flow, &mut missing);
        match missing {
            None => Ok(acct),
            Some((node, kind)) => Err(ModelError::MissingVnfInstance { node, kind }),
        }
    }

    /// The accounting body. A missing VNF instance is priced
    /// `f64::INFINITY` and reported through `missing` (first miss wins);
    /// the validator uses this path directly because it reports missing
    /// instances itself with per-slot detail.
    pub(crate) fn account_lenient(
        &self,
        net: &Network,
        sfc: &DagSfc,
        flow: &Flow,
        missing: &mut Option<(NodeId, VnfTypeId)>,
    ) -> Accounting {
        let catalog = sfc.catalog();
        // --- VNF term: α_{v,i} counts slot assignments per instance.
        // BTreeMaps keep summation order deterministic, so identical
        // embeddings produce bit-identical costs across processes.
        let mut vnf_uses: BTreeMap<(NodeId, VnfTypeId), u32> = BTreeMap::new();
        for (l, slots) in self.assignments.iter().enumerate() {
            let layer = sfc.layer(l);
            for (slot, &node) in slots.iter().enumerate() {
                let kind = layer.slot_kind(slot, catalog);
                *vnf_uses.entry((node, kind)).or_insert(0) += 1;
            }
        }
        let mut vnf_cost = 0.0;
        let mut vnf_load: BTreeMap<(NodeId, VnfTypeId), f64> = BTreeMap::new();
        for (&(node, kind), &uses) in &vnf_uses {
            let price = match net.instance(node, kind) {
                Some(i) => i.price,
                None => {
                    missing.get_or_insert((node, kind));
                    f64::INFINITY
                }
            };
            vnf_cost += uses as f64 * price * flow.size;
            vnf_load.insert((node, kind), uses as f64 * flow.rate);
        }

        // --- Link term: multicast dedup for inter-layer groups.
        let mut link_uses: BTreeMap<LinkId, u32> = BTreeMap::new();
        let mut group_links: BTreeMap<usize, HashSet<LinkId>> = BTreeMap::new();
        for (mp, path) in meta_paths(sfc).iter().zip(&self.paths) {
            match mp.kind {
                MetaPathKind::InterLayer => {
                    let seen = group_links.entry(mp.group).or_default();
                    for &l in path.links() {
                        if seen.insert(l) {
                            *link_uses.entry(l).or_insert(0) += 1;
                        }
                    }
                }
                MetaPathKind::InnerLayer => {
                    for &l in path.links() {
                        *link_uses.entry(l).or_insert(0) += 1;
                    }
                }
            }
        }
        let mut link_cost = 0.0;
        let mut link_load = vec![0.0; net.link_count()];
        for (&l, &uses) in &link_uses {
            link_cost += uses as f64 * net.link(l).price * flow.size;
            link_load[l.index()] = uses as f64 * flow.rate;
        }

        Accounting {
            cost: CostBreakdown {
                vnf: vnf_cost,
                link: link_cost,
            },
            vnf_load,
            link_load,
        }
    }

    /// Convenience: just the objective value.
    /// `Err(ModelError::MissingVnfInstance)` when the embedding
    /// references an undeployed instance.
    pub fn try_cost(
        &self,
        net: &Network,
        sfc: &DagSfc,
        flow: &Flow,
    ) -> Result<CostBreakdown, ModelError> {
        self.try_account(net, sfc, flow).map(|a| a.cost)
    }

    /// Pairs every meta-path with its real-path.
    pub fn meta_path_pairs<'s>(&'s self, sfc: &DagSfc) -> Vec<(MetaPath, &'s Path)> {
        meta_paths(sfc).into_iter().zip(self.paths.iter()).collect()
    }

    /// Structural statistics of the embedding — the quantities behind the
    /// paper's intuition ("select VNFs on adjacent nodes, so the link
    /// cost can be reduced"): how clustered the placement is and how
    /// short the real-paths came out.
    pub fn stats(&self, sfc: &DagSfc) -> EmbeddingStats {
        let mut distinct_nodes: Vec<NodeId> = self.assignments.iter().flatten().copied().collect();
        let slots = distinct_nodes.len();
        distinct_nodes.sort_unstable();
        distinct_nodes.dedup();

        let mut reused_instances = 0usize;
        let catalog = sfc.catalog();
        let mut uses: std::collections::BTreeMap<(NodeId, VnfTypeId), u32> =
            std::collections::BTreeMap::new();
        for (l, layer_slots) in self.assignments.iter().enumerate() {
            let layer = sfc.layer(l);
            for (slot, &node) in layer_slots.iter().enumerate() {
                *uses
                    .entry((node, layer.slot_kind(slot, catalog)))
                    .or_insert(0) += 1;
            }
        }
        for &count in uses.values() {
            if count > 1 {
                reused_instances += 1;
            }
        }

        let hops: Vec<usize> = self.paths.iter().map(Path::len).collect();
        let trivial_paths = hops.iter().filter(|&&h| h == 0).count();
        let total_hops: usize = hops.iter().sum();
        let max_hops = hops.iter().copied().max().unwrap_or(0);
        EmbeddingStats {
            slots,
            distinct_nodes: distinct_nodes.len(),
            reused_instances,
            trivial_paths,
            total_hops,
            max_hops,
            mean_hops: if hops.is_empty() {
                0.0
            } else {
                total_hops as f64 / hops.len() as f64
            },
        }
    }
}

/// Structural statistics of an embedding (see [`Embedding::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingStats {
    /// Total embedding slots (VNFs + mergers).
    pub slots: usize,
    /// Distinct network nodes used.
    pub distinct_nodes: usize,
    /// Instances serving more than one slot (the eq. (7) reuse case).
    pub reused_instances: usize,
    /// Real-paths of zero length (colocated endpoints).
    pub trivial_paths: usize,
    /// Total link hops across all real-paths.
    pub total_hops: usize,
    /// Longest real-path in hops.
    pub max_hops: usize,
    /// Mean real-path length in hops.
    pub mean_hops: f64,
}

/// Result of [`Embedding::try_account`]: objective cost plus the resource
/// loads needed for the capacity constraints (2) and (3).
#[derive(Debug, Clone, PartialEq)]
pub struct Accounting {
    /// Objective value, split into its two terms.
    pub cost: CostBreakdown,
    /// Traffic load per used VNF instance (`α_{v,i}·R`), in key order.
    pub vnf_load: BTreeMap<(NodeId, VnfTypeId), f64>,
    /// Traffic load per link, indexed by [`LinkId`] (`α_{g,h}·R`).
    pub link_load: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Layer;
    use crate::vnf::VnfCatalog;

    /// Line network 0-1-2-3 with all prices 1.0 on links; kinds deployed
    /// for a 2-parallel chain: f0 on v1; f1,f2 on v2; merger on v3? No —
    /// see individual tests.
    fn catalog() -> VnfCatalog {
        VnfCatalog::new(4)
    }

    /// Builds: nodes v0..v3 in a line (link prices 1,1,1), f(0) on v1,
    /// f(1) & f(2) on v2, merger (f4) on v2 and v3.
    fn net() -> Network {
        let mut g = Network::new();
        g.add_nodes(4);
        for i in 0..3u32 {
            g.add_link(NodeId(i), NodeId(i + 1), 1.0, 100.0).unwrap();
        }
        g.deploy_vnf(NodeId(1), VnfTypeId(0), 2.0, 100.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(1), 3.0, 100.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(2), 4.0, 100.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(4), 1.0, 100.0).unwrap(); // merger
        g.deploy_vnf(NodeId(3), VnfTypeId(4), 1.0, 100.0).unwrap(); // merger
        g
    }

    fn path(net: &Network, nodes: &[u32]) -> Path {
        Path::from_nodes(net, nodes.iter().map(|&n| NodeId(n)).collect()).unwrap()
    }

    /// Chain: L0 = {f0}, L1 = {f1, f2} + merger.
    fn sfc() -> DagSfc {
        DagSfc::new(
            vec![
                Layer::new(vec![VnfTypeId(0)]),
                Layer::new(vec![VnfTypeId(1), VnfTypeId(2)]),
            ],
            catalog(),
        )
        .unwrap()
    }

    /// Embedding used by several tests:
    /// src=v0, f0@v1, f1@v2, f2@v2, merger@v2, dst=v3.
    /// Meta-paths (canonical order): src→f0, f0→f1, f0→f2, f1→m, f2→m,
    /// m→dst.
    fn embedding(g: &Network) -> Embedding {
        Embedding::new(
            &sfc(),
            vec![vec![NodeId(1)], vec![NodeId(2), NodeId(2), NodeId(2)]],
            vec![
                path(g, &[0, 1]),         // src → f0
                path(g, &[1, 2]),         // f0 → f1 (inter, group 1)
                path(g, &[1, 2]),         // f0 → f2 (inter, group 1, same link!)
                Path::trivial(NodeId(2)), // f1 → merger (colocated)
                Path::trivial(NodeId(2)), // f2 → merger
                path(g, &[2, 3]),         // merger → dst
            ],
        )
        .unwrap()
    }

    #[test]
    fn multicast_dedup_charges_shared_link_once() {
        let g = net();
        let emb = embedding(&g);
        let flow = Flow::unit(NodeId(0), NodeId(3));
        let acct = emb.try_account(&g, &sfc(), &flow).unwrap();
        // VNF: f0@v1 (2.0) + f1@v2 (3.0) + f2@v2 (4.0) + merger@v2 (1.0) = 10.
        assert!((acct.cost.vnf - 10.0).abs() < 1e-12);
        // Links: e(0-1) once + e(1-2) ONCE (multicast dedup) + e(2-3) once = 3.
        assert!((acct.cost.link - 3.0).abs() < 1e-12);
        assert!((acct.cost.total() - 13.0).abs() < 1e-12);
        // Load on link 1-2 is a single rate unit thanks to multicast.
        let l12 = g.link_between(NodeId(1), NodeId(2)).unwrap();
        assert!((acct.link_load[l12.index()] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inner_layer_paths_charged_per_version() {
        // Variant: merger placed on v3, so both inner paths traverse
        // link 2-3 and must be charged twice.
        let g = net();
        let s = sfc();
        let emb = Embedding::new(
            &s,
            vec![vec![NodeId(1)], vec![NodeId(2), NodeId(2), NodeId(3)]],
            vec![
                path(&g, &[0, 1]),
                path(&g, &[1, 2]),
                path(&g, &[1, 2]),
                path(&g, &[2, 3]), // f1 → merger
                path(&g, &[2, 3]), // f2 → merger — same link, still charged
                Path::trivial(NodeId(3)),
            ],
        )
        .unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(3));
        let acct = emb.try_account(&g, &s, &flow).unwrap();
        // Links: e01 (1) + e12 (1, dedup) + e23 ×2 (inner) = 4.
        assert!((acct.cost.link - 4.0).abs() < 1e-12);
        let l23 = g.link_between(NodeId(2), NodeId(3)).unwrap();
        assert!((acct.link_load[l23.index()] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn vnf_reuse_multiplies_cost() {
        // Sequential chain f1 → f1: same instance rented twice.
        let g = net();
        let c = catalog();
        let s = DagSfc::sequential(&[VnfTypeId(1), VnfTypeId(1)], c).unwrap();
        let emb = Embedding::new(
            &s,
            vec![vec![NodeId(2)], vec![NodeId(2)]],
            vec![
                path(&g, &[0, 1, 2]),     // src → f1
                Path::trivial(NodeId(2)), // f1 → f1 colocated
                path(&g, &[2, 3]),        // f1 → dst
            ],
        )
        .unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(3));
        let acct = emb.try_account(&g, &s, &flow).unwrap();
        // α_{v2,f1} = 2 → vnf cost 2·3.0 = 6; load 2·rate.
        assert!((acct.cost.vnf - 6.0).abs() < 1e-12);
        assert!((acct.vnf_load[&(NodeId(2), VnfTypeId(1))] - 2.0).abs() < 1e-12);
        // links: e01+e12 (src→f1) + e23 = 3.
        assert!((acct.cost.link - 3.0).abs() < 1e-12);
    }

    #[test]
    fn flow_size_scales_cost_rate_scales_load() {
        let g = net();
        let emb = embedding(&g);
        let s = sfc();
        let base = emb
            .try_account(&g, &s, &Flow::unit(NodeId(0), NodeId(3)))
            .unwrap();
        let scaled = emb
            .try_account(
                &g,
                &s,
                &Flow {
                    src: NodeId(0),
                    dst: NodeId(3),
                    rate: 2.0,
                    size: 3.0,
                    delay_budget_us: None,
                },
            )
            .unwrap();
        assert!((scaled.cost.total() - 3.0 * base.cost.total()).abs() < 1e-9);
        let l01 = g.link_between(NodeId(0), NodeId(1)).unwrap();
        assert!((scaled.link_load[l01.index()] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shape_validation() {
        let g = net();
        let s = sfc();
        // Missing a layer.
        assert!(matches!(
            Embedding::new(&s, vec![vec![NodeId(1)]], vec![]),
            Err(ModelError::ShapeMismatch(_))
        ));
        // Wrong slot count (parallel layer needs 3 slots incl merger).
        assert!(matches!(
            Embedding::new(
                &s,
                vec![vec![NodeId(1)], vec![NodeId(2), NodeId(2)]],
                vec![]
            ),
            Err(ModelError::ShapeMismatch(_))
        ));
        // Wrong path count.
        assert!(matches!(
            Embedding::new(
                &s,
                vec![vec![NodeId(1)], vec![NodeId(2), NodeId(2), NodeId(2)]],
                vec![Path::trivial(NodeId(0))]
            ),
            Err(ModelError::ShapeMismatch(_))
        ));
        // Correct shape passes.
        assert!(embedding(&g).meta_path_pairs(&s).len() == 6);
    }

    #[test]
    fn stats_reflect_structure() {
        let g = net();
        let emb = embedding(&g);
        let s = emb.stats(&sfc());
        assert_eq!(s.slots, 4); // f0 + f1 + f2 + merger
        assert_eq!(s.distinct_nodes, 2); // v1 and v2
        assert_eq!(s.reused_instances, 0); // all kinds distinct
        assert_eq!(s.trivial_paths, 2); // the two inner paths
        assert_eq!(s.total_hops, 4); // 1+1+1+0+0+1
        assert_eq!(s.max_hops, 1);
        assert!((s.mean_hops - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn stats_count_reuse() {
        let g = net();
        let c = catalog();
        let s2 = DagSfc::sequential(&[VnfTypeId(1), VnfTypeId(1)], c).unwrap();
        let emb = Embedding::new(
            &s2,
            vec![vec![NodeId(2)], vec![NodeId(2)]],
            vec![
                path(&g, &[0, 1, 2]),
                Path::trivial(NodeId(2)),
                path(&g, &[2, 3]),
            ],
        )
        .unwrap();
        let st = emb.stats(&s2);
        assert_eq!(st.reused_instances, 1);
        assert_eq!(st.distinct_nodes, 1);
    }

    #[test]
    fn try_account_reports_missing_instance() {
        let g = net();
        let s = sfc();
        // f0 assigned to v0, which deploys nothing.
        let emb = Embedding::new(
            &s,
            vec![vec![NodeId(0)], vec![NodeId(2), NodeId(2), NodeId(2)]],
            vec![
                Path::trivial(NodeId(0)),
                path(&g, &[0, 1, 2]),
                path(&g, &[0, 1, 2]),
                Path::trivial(NodeId(2)),
                Path::trivial(NodeId(2)),
                path(&g, &[2, 3]),
            ],
        )
        .unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(3));
        assert_eq!(
            emb.try_account(&g, &s, &flow),
            Err(ModelError::MissingVnfInstance {
                node: NodeId(0),
                kind: VnfTypeId(0),
            })
        );
        assert!(emb.try_cost(&g, &s, &flow).is_err());
        // Valid embeddings round-trip through both entry points.
        let ok = embedding(&g);
        let acct = ok.try_account(&g, &s, &flow).unwrap();
        assert_eq!(acct.cost, ok.try_cost(&g, &s, &flow).unwrap());
    }

    #[test]
    fn endpoint_resolution() {
        let g = net();
        let emb = embedding(&g);
        let flow = Flow::unit(NodeId(0), NodeId(3));
        assert_eq!(emb.endpoint_node(&flow, Endpoint::Source), NodeId(0));
        assert_eq!(emb.endpoint_node(&flow, Endpoint::Destination), NodeId(3));
        assert_eq!(
            emb.endpoint_node(&flow, Endpoint::Slot { layer: 1, slot: 2 }),
            NodeId(2)
        );
        assert_eq!(emb.node_of(0, 0), NodeId(1));
    }
}
