//! Property tests for the partial-order derivation: the relation the
//! dependency analysis induces over chain positions is structurally a
//! strict partial order consistent with `dependency.rs`, and the greedy
//! layered form is always one of its admissible linear extensions —
//! bit-identical to the preserved legacy greedy.

use dagsfc_nfp::{
    enterprise_catalog, to_hybrid, to_hybrid_legacy, DependencyMatrix, PartialOrderChain,
    TransformOptions,
};
use proptest::prelude::*;

fn deps() -> DependencyMatrix {
    DependencyMatrix::analyze(&enterprise_catalog())
}

/// Arbitrary chains over the enterprise catalog, repeats allowed.
fn chain_strategy() -> impl Strategy<Value = Vec<usize>> {
    let n = enterprise_catalog().len();
    prop::collection::vec(0..n, 0..12)
}

fn cap_strategy() -> impl Strategy<Value = Option<usize>> {
    prop_oneof![Just(None), (1usize..5).prop_map(Some)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The derived relation is irreflexive, antisymmetric, and agrees
    /// pairwise with the dependency oracle: an edge (i, j) exists for
    /// i < j exactly when the two NFs are not mutually parallelizable.
    #[test]
    fn relation_is_a_strict_partial_order_consistent_with_the_oracle(
        chain in chain_strategy(),
    ) {
        let d = deps();
        let po = PartialOrderChain::derive(&chain, &d);
        for i in 0..chain.len() {
            prop_assert!(!po.precedes(i, i), "irreflexive at {i}");
            for j in (i + 1)..chain.len() {
                let mutual = d.parallelizable(chain[i], chain[j])
                    && d.parallelizable(chain[j], chain[i]);
                prop_assert_eq!(po.precedes(i, j), !mutual, "oracle mismatch at ({}, {})", i, j);
                prop_assert!(!po.precedes(j, i), "antisymmetry violated at ({}, {})", j, i);
            }
        }
        // Every edge points forward along the chain, so the relation is
        // a sub-relation of the (transitive) position order: acyclic,
        // and transitively consistent by embedding.
        for &(i, j) in po.edges() {
            prop_assert!(i < j, "edge ({}, {}) must point forward", i, j);
        }
        // The original chain order is therefore always an extension.
        let identity: Vec<usize> = (0..chain.len()).collect();
        prop_assert!(po.is_linear_extension(&identity));
    }

    /// Every greedy layering — at any width cap — is an admissible
    /// layering of the derived DAG, and its flattened order is a valid
    /// linear extension (in fact the identity extension: `flatten()`
    /// reproduces the input chain exactly).
    #[test]
    fn every_flatten_order_is_a_linear_extension(
        chain in chain_strategy(),
        cap in cap_strategy(),
    ) {
        let d = deps();
        let opts = TransformOptions { max_width: cap };
        let po = PartialOrderChain::derive(&chain, &d);
        let layering = po.greedy_layering(opts);
        prop_assert!(po.is_admissible_layering(&layering));
        let flat_positions: Vec<usize> = layering.iter().flatten().copied().collect();
        prop_assert!(po.is_linear_extension(&flat_positions));
        // The hybrid form's flatten reproduces the chain: the layered
        // form is a grouping of the original order, never a reordering.
        let hybrid = po.to_hybrid_chain(opts);
        prop_assert_eq!(hybrid.flatten(), chain.clone());
        // And the cap is honored.
        if let Some(c) = cap {
            prop_assert!(hybrid.max_width() <= c.max(1));
        }
    }

    /// The partial-order path and the preserved legacy greedy agree
    /// bit-for-bit on every chain and width cap.
    #[test]
    fn partial_order_layering_equals_legacy_greedy(
        chain in chain_strategy(),
        cap in cap_strategy(),
    ) {
        let d = deps();
        let opts = TransformOptions { max_width: cap };
        prop_assert_eq!(to_hybrid(&chain, &d, opts), to_hybrid_legacy(&chain, &d, opts));
    }

    /// Layers of the greedy layering are internally unordered: no two
    /// members of one layer carry a precedence edge in either direction.
    #[test]
    fn layers_are_antichains(chain in chain_strategy(), cap in cap_strategy()) {
        let d = deps();
        let po = PartialOrderChain::derive(&chain, &d);
        let layering = po.greedy_layering(TransformOptions { max_width: cap });
        for layer in &layering {
            for (k, &a) in layer.iter().enumerate() {
                for &b in &layer[k + 1..] {
                    prop_assert!(po.unordered(a, b), "positions {} and {} share a layer", a, b);
                }
            }
        }
    }
}
