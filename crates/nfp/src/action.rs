//! Packet-action profiles of network functions.
//!
//! A profile abstracts what a network function does to traffic — which
//! fields it reads and writes, whether it may drop packets, and whether it
//! accounts traffic — which is exactly the information needed to decide
//! whether two functions can run in parallel (NFP [17], ParaBox [22]).

use crate::field::FieldSet;
use serde::{Deserialize, Serialize};

/// What a network function reads from and does to packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ActionProfile {
    /// Fields the function inspects.
    pub reads: FieldSet,
    /// Fields the function modifies.
    pub writes: FieldSet,
    /// Whether the function may discard packets (firewall, IPS, policer).
    pub may_drop: bool,
    /// Whether the function accounts traffic volume (billing, monitoring).
    /// Counting functions are order-sensitive relative to droppers: counting
    /// before or after a firewall gives different numbers.
    pub counts_traffic: bool,
    /// Whether the function terminates and re-originates connections
    /// (terminating proxy, VPN endpoint). Such functions rewrite the whole
    /// packet and force sequential placement.
    pub terminates: bool,
}

impl ActionProfile {
    /// A pure reader of `fields` (classifier, IDS-style inspector).
    pub fn reader(fields: FieldSet) -> Self {
        ActionProfile {
            reads: fields,
            ..ActionProfile::default()
        }
    }

    /// Reads `reads` and rewrites `writes` (NAT, load balancer, marker).
    pub fn rewriter(reads: FieldSet, writes: FieldSet) -> Self {
        ActionProfile {
            reads,
            writes,
            ..ActionProfile::default()
        }
    }

    /// A dropper inspecting `fields` (firewall, IPS, policer).
    pub fn dropper(fields: FieldSet) -> Self {
        ActionProfile {
            reads: fields,
            may_drop: true,
            ..ActionProfile::default()
        }
    }

    /// A terminating function (proxy, VPN endpoint).
    pub fn terminator() -> Self {
        ActionProfile {
            reads: FieldSet::ALL,
            writes: FieldSet::ALL,
            terminates: true,
            ..ActionProfile::default()
        }
    }

    /// A pure monitor: reads everything, writes nothing, counts traffic.
    pub fn monitor() -> Self {
        ActionProfile {
            reads: FieldSet::ALL,
            writes: FieldSet::EMPTY,
            may_drop: false,
            counts_traffic: true,
            terminates: false,
        }
    }

    /// Effective write set: terminating functions rewrite every field.
    pub fn effective_writes(&self) -> FieldSet {
        if self.terminates {
            FieldSet::ALL
        } else {
            self.writes
        }
    }

    /// Effective read set: terminating functions depend on every field.
    pub fn effective_reads(&self) -> FieldSet {
        if self.terminates {
            FieldSet::ALL
        } else {
            self.reads
        }
    }

    /// Whether the function never alters traffic (pure reader).
    pub fn is_read_only(&self) -> bool {
        self.effective_writes().is_empty() && !self.may_drop
    }
}

/// Whether — and at what cost — an *ordered* NF pair `(first, second)` can
/// run in parallel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Parallelism {
    /// Parallelizable with no extra resource overhead: at most one of the
    /// two modifies packets, so no packet copying is needed (the 41.5%
    /// class measured by NFP).
    Full,
    /// Parallelizable, but both functions modify disjoint field sets, so
    /// the merger must copy packets and merge the modifications (part of
    /// NFP's 53.8% class).
    WithCopyOverhead,
    /// Order-dependent: must stay sequential.
    Sequential,
}

impl Parallelism {
    /// Whether the pair may share a parallel layer at all.
    #[inline]
    pub fn is_parallelizable(self) -> bool {
        !matches!(self, Parallelism::Sequential)
    }
}

/// Why an ordered NF pair must stay sequential.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConflictReason {
    /// One of the functions terminates/re-originates connections.
    Termination,
    /// `second` reads a field `first` writes (read-after-write).
    ReadAfterWrite,
    /// `second` writes a field `first` reads (write-after-read).
    WriteAfterRead,
    /// Both write a common field (merge ambiguity).
    WriteWrite,
    /// One may drop packets while the other accounts traffic.
    DropVsCount,
}

/// Explains why the ordered pair `(first, second)` cannot parallelize,
/// or `None` when it can. The first matching rule (in the order the
/// rules are documented on [`parallelism`]) is reported.
pub fn conflict(first: &ActionProfile, second: &ActionProfile) -> Option<ConflictReason> {
    if first.terminates || second.terminates {
        return Some(ConflictReason::Termination);
    }
    let (w1, w2) = (first.effective_writes(), second.effective_writes());
    let (r1, r2) = (first.effective_reads(), second.effective_reads());
    if w1.intersects(r2) {
        return Some(ConflictReason::ReadAfterWrite);
    }
    if r1.intersects(w2) {
        return Some(ConflictReason::WriteAfterRead);
    }
    if w1.intersects(w2) {
        return Some(ConflictReason::WriteWrite);
    }
    if (first.may_drop && second.counts_traffic) || (second.may_drop && first.counts_traffic) {
        return Some(ConflictReason::DropVsCount);
    }
    None
}

/// Decides parallelizability of the ordered pair `(first, second)`.
///
/// The pair must stay sequential when any of the following holds
/// (NFP's dependency rules):
///
/// 1. either function terminates connections;
/// 2. `first` writes a field `second` reads (read-after-write);
/// 3. `first` reads a field `second` writes (write-after-read — in
///    parallel, `first` could observe the modified value after merging);
/// 4. both write a common field (merge conflict);
/// 5. one may drop packets while the other accounts traffic (the count
///    depends on whether it runs before or after the dropper).
///
/// Otherwise the pair is parallelizable; if both functions write
/// (necessarily disjoint) fields the merger must copy packets, which NFP
/// classifies as parallelism *with* resource overhead.
pub fn parallelism(first: &ActionProfile, second: &ActionProfile) -> Parallelism {
    if conflict(first, second).is_some() {
        return Parallelism::Sequential;
    }
    if !first.effective_writes().is_empty() && !second.effective_writes().is_empty() {
        Parallelism::WithCopyOverhead
    } else {
        Parallelism::Full
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::PacketField;

    fn reader(fields: &[PacketField]) -> ActionProfile {
        ActionProfile {
            reads: FieldSet::of(fields),
            ..ActionProfile::default()
        }
    }

    fn writer(reads: &[PacketField], writes: &[PacketField]) -> ActionProfile {
        ActionProfile {
            reads: FieldSet::of(reads),
            writes: FieldSet::of(writes),
            ..ActionProfile::default()
        }
    }

    #[test]
    fn two_readers_fully_parallel() {
        let a = reader(&[PacketField::SrcIp]);
        let b = reader(&[PacketField::SrcIp, PacketField::Payload]);
        assert_eq!(parallelism(&a, &b), Parallelism::Full);
        assert_eq!(parallelism(&b, &a), Parallelism::Full);
    }

    #[test]
    fn read_after_write_is_sequential() {
        let nat = writer(&[PacketField::SrcIp], &[PacketField::SrcIp]);
        let fw = reader(&[PacketField::SrcIp]);
        assert_eq!(parallelism(&nat, &fw), Parallelism::Sequential);
    }

    #[test]
    fn write_after_read_is_sequential() {
        let fw = reader(&[PacketField::SrcIp]);
        let nat = writer(&[], &[PacketField::SrcIp]);
        assert_eq!(parallelism(&fw, &nat), Parallelism::Sequential);
    }

    #[test]
    fn write_write_conflict_is_sequential() {
        let a = writer(&[], &[PacketField::Payload]);
        let b = writer(&[], &[PacketField::Payload]);
        assert_eq!(parallelism(&a, &b), Parallelism::Sequential);
    }

    #[test]
    fn disjoint_writers_need_copy() {
        let a = writer(&[], &[PacketField::Tos]);
        let b = writer(&[], &[PacketField::Ttl]);
        assert_eq!(parallelism(&a, &b), Parallelism::WithCopyOverhead);
        assert!(Parallelism::WithCopyOverhead.is_parallelizable());
    }

    #[test]
    fn single_writer_is_full() {
        let a = writer(&[], &[PacketField::Tos]);
        let b = reader(&[PacketField::Payload]);
        assert_eq!(parallelism(&a, &b), Parallelism::Full);
    }

    #[test]
    fn terminator_forces_sequential() {
        let proxy = ActionProfile {
            terminates: true,
            ..ActionProfile::default()
        };
        let b = reader(&[PacketField::Payload]);
        assert_eq!(parallelism(&proxy, &b), Parallelism::Sequential);
        assert_eq!(parallelism(&b, &proxy), Parallelism::Sequential);
        assert_eq!(proxy.effective_writes(), FieldSet::ALL);
        assert_eq!(proxy.effective_reads(), FieldSet::ALL);
        assert!(!proxy.is_read_only());
    }

    #[test]
    fn dropper_vs_counter_is_sequential() {
        let fw = ActionProfile {
            reads: FieldSet::FIVE_TUPLE,
            may_drop: true,
            ..ActionProfile::default()
        };
        let mon = ActionProfile::monitor();
        assert_eq!(parallelism(&fw, &mon), Parallelism::Sequential);
        assert_eq!(parallelism(&mon, &fw), Parallelism::Sequential);
    }

    #[test]
    fn two_droppers_parallelize() {
        let fw = ActionProfile {
            reads: FieldSet::FIVE_TUPLE,
            may_drop: true,
            ..ActionProfile::default()
        };
        // Two ACL-style droppers: reading + dropping commute (drop wins).
        assert_eq!(parallelism(&fw, &fw), Parallelism::Full);
    }

    #[test]
    fn conflict_reasons_reported() {
        let proxy = ActionProfile {
            terminates: true,
            ..ActionProfile::default()
        };
        let fw = ActionProfile {
            reads: FieldSet::FIVE_TUPLE,
            may_drop: true,
            ..ActionProfile::default()
        };
        let nat = writer(&[PacketField::SrcIp], &[PacketField::SrcIp]);
        let mon = ActionProfile::monitor();
        assert_eq!(conflict(&proxy, &fw), Some(ConflictReason::Termination));
        assert_eq!(conflict(&nat, &fw), Some(ConflictReason::ReadAfterWrite));
        assert_eq!(conflict(&fw, &nat), Some(ConflictReason::WriteAfterRead));
        assert_eq!(
            conflict(
                &writer(&[], &[PacketField::Payload]),
                &writer(&[], &[PacketField::Payload])
            ),
            Some(ConflictReason::WriteWrite)
        );
        assert_eq!(conflict(&fw, &mon), Some(ConflictReason::DropVsCount));
        assert_eq!(conflict(&fw, &fw), None);
        // conflict() and parallelism() always agree.
        for (a, b) in [(&proxy, &fw), (&nat, &fw), (&fw, &mon), (&fw, &fw)] {
            assert_eq!(
                conflict(a, b).is_some(),
                parallelism(a, b) == Parallelism::Sequential
            );
        }
    }

    #[test]
    fn convenience_constructors() {
        let r = ActionProfile::reader(FieldSet::FIVE_TUPLE);
        assert!(r.is_read_only());
        let w = ActionProfile::rewriter(
            FieldSet::of(&[PacketField::SrcIp]),
            FieldSet::of(&[PacketField::SrcIp]),
        );
        assert!(!w.is_read_only());
        let d = ActionProfile::dropper(FieldSet::FIVE_TUPLE);
        assert!(d.may_drop && d.writes.is_empty());
        let t = ActionProfile::terminator();
        assert!(t.terminates);
        assert_eq!(parallelism(&r, &d), Parallelism::Full);
        assert_eq!(parallelism(&t, &r), Parallelism::Sequential);
    }

    #[test]
    fn monitor_profile_shape() {
        let m = ActionProfile::monitor();
        assert!(m.is_read_only());
        assert!(m.counts_traffic);
        assert_eq!(m.reads, FieldSet::ALL);
    }
}
