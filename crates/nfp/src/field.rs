//! Packet fields and compact field sets.
//!
//! Parallelizability of two network functions is decided from which packet
//! fields each one reads and writes (NFP, SIGCOMM'17; ParaBox, SOSR'17).
//! `FieldSet` is a tiny bitset over [`PacketField`] so profile algebra is
//! branch-free.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{BitAnd, BitOr, Not};

/// A packet field (or field group) a network function may read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u16)]
pub enum PacketField {
    /// Source IP address.
    SrcIp = 0,
    /// Destination IP address.
    DstIp = 1,
    /// Source transport port.
    SrcPort = 2,
    /// Destination transport port.
    DstPort = 3,
    /// Transport protocol field.
    Protocol = 4,
    /// IP TTL / hop limit.
    Ttl = 5,
    /// DSCP / ToS byte.
    Tos = 6,
    /// TCP flags and sequence numbers.
    TcpState = 7,
    /// Application payload.
    Payload = 8,
    /// Total length (changes when payload is rewritten or encapsulated).
    Length = 9,
}

impl PacketField {
    /// All fields, in discriminant order.
    pub const ALL: [PacketField; 10] = [
        PacketField::SrcIp,
        PacketField::DstIp,
        PacketField::SrcPort,
        PacketField::DstPort,
        PacketField::Protocol,
        PacketField::Ttl,
        PacketField::Tos,
        PacketField::TcpState,
        PacketField::Payload,
        PacketField::Length,
    ];

    #[inline]
    fn bit(self) -> u16 {
        1 << (self as u16)
    }
}

/// A set of packet fields, stored as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct FieldSet(u16);

impl FieldSet {
    /// The empty set.
    pub const EMPTY: FieldSet = FieldSet(0);
    /// Every field (a function that rewrites or encapsulates the whole
    /// packet, e.g. a VPN gateway or terminating proxy).
    pub const ALL: FieldSet = FieldSet((1 << PacketField::ALL.len() as u16) - 1);
    /// The five-tuple header fields.
    pub const FIVE_TUPLE: FieldSet = FieldSet(
        (1 << PacketField::SrcIp as u16)
            | (1 << PacketField::DstIp as u16)
            | (1 << PacketField::SrcPort as u16)
            | (1 << PacketField::DstPort as u16)
            | (1 << PacketField::Protocol as u16),
    );

    /// Builds a set from a list of fields.
    pub fn of(fields: &[PacketField]) -> Self {
        let mut s = 0u16;
        for f in fields {
            s |= f.bit();
        }
        FieldSet(s)
    }

    /// Whether the set contains `field`.
    #[inline]
    pub fn contains(self, field: PacketField) -> bool {
        self.0 & field.bit() != 0
    }

    /// Whether this set shares any field with `other`.
    #[inline]
    pub fn intersects(self, other: FieldSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of fields in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates the contained fields in discriminant order.
    pub fn iter(self) -> impl Iterator<Item = PacketField> {
        PacketField::ALL
            .into_iter()
            .filter(move |f| self.contains(*f))
    }
}

impl BitOr for FieldSet {
    type Output = FieldSet;
    #[inline]
    fn bitor(self, rhs: FieldSet) -> FieldSet {
        FieldSet(self.0 | rhs.0)
    }
}

impl BitAnd for FieldSet {
    type Output = FieldSet;
    #[inline]
    fn bitand(self, rhs: FieldSet) -> FieldSet {
        FieldSet(self.0 & rhs.0)
    }
}

impl Not for FieldSet {
    type Output = FieldSet;
    #[inline]
    fn not(self) -> FieldSet {
        FieldSet(!self.0 & FieldSet::ALL.0)
    }
}

impl FromIterator<PacketField> for FieldSet {
    fn from_iter<I: IntoIterator<Item = PacketField>>(iter: I) -> Self {
        let mut s = FieldSet::EMPTY;
        for f in iter {
            s = s | FieldSet::of(&[f]);
        }
        s
    }
}

impl fmt::Display for FieldSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, field) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{field:?}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_and_contains() {
        let s = FieldSet::of(&[PacketField::SrcIp, PacketField::Payload]);
        assert!(s.contains(PacketField::SrcIp));
        assert!(s.contains(PacketField::Payload));
        assert!(!s.contains(PacketField::DstIp));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(FieldSet::EMPTY.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = FieldSet::of(&[PacketField::SrcIp, PacketField::DstIp]);
        let b = FieldSet::of(&[PacketField::DstIp, PacketField::Payload]);
        assert!(a.intersects(b));
        assert_eq!((a & b), FieldSet::of(&[PacketField::DstIp]));
        assert_eq!(
            (a | b),
            FieldSet::of(&[PacketField::SrcIp, PacketField::DstIp, PacketField::Payload])
        );
        let c = FieldSet::of(&[PacketField::Ttl]);
        assert!(!a.intersects(c));
    }

    #[test]
    fn complement_stays_in_universe() {
        let a = FieldSet::of(&[PacketField::SrcIp]);
        let na = !a;
        assert!(!na.contains(PacketField::SrcIp));
        assert_eq!(na.len(), PacketField::ALL.len() - 1);
        assert_eq!(!(FieldSet::ALL), FieldSet::EMPTY);
    }

    #[test]
    fn five_tuple_constant() {
        assert_eq!(FieldSet::FIVE_TUPLE.len(), 5);
        assert!(FieldSet::FIVE_TUPLE.contains(PacketField::Protocol));
        assert!(!FieldSet::FIVE_TUPLE.contains(PacketField::Payload));
    }

    #[test]
    fn iter_roundtrip() {
        let s = FieldSet::of(&[PacketField::Tos, PacketField::Length, PacketField::SrcPort]);
        let collected: FieldSet = s.iter().collect();
        assert_eq!(collected, s);
        assert_eq!(s.iter().count(), 3);
    }

    #[test]
    fn all_covers_every_field() {
        for f in PacketField::ALL {
            assert!(FieldSet::ALL.contains(f));
        }
        assert_eq!(FieldSet::ALL.len(), PacketField::ALL.len());
    }

    #[test]
    fn display_lists_fields() {
        let s = FieldSet::of(&[PacketField::SrcIp, PacketField::Ttl]);
        let d = s.to_string();
        assert!(d.contains("SrcIp") && d.contains("Ttl"));
    }
}
