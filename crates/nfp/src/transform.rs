//! Sequential-chain → hybrid-chain transformation (paper Fig. 2, top to
//! middle), and the first-class partial order it factors through.
//!
//! Given a sequential SFC and the pairwise dependency oracle, the
//! analysis yields a [`PartialOrderChain`]: the NFs in their original
//! order plus every precedence edge the read/write dependency analysis
//! imposes (an edge `(i, j)` exists for positions `i < j` exactly when
//! the two NFs are *not* mutually parallelizable, so their relative
//! order is load-bearing). The layered hybrid form is then *one*
//! admissible linear-extension layering of that DAG — the same greedy
//! grouping the paper's Fig. 2 applies: an NF joins the current set
//! when no precedence edge ties it to any member, otherwise it opens
//! the next layer.
//!
//! [`to_hybrid`] is re-derived through the partial order; the original
//! direct greedy is preserved as [`to_hybrid_legacy`] so differential
//! tests can pin the two bit-for-bit against each other.

use crate::dependency::DependencyMatrix;
use serde::{Deserialize, Serialize};

/// The layered (hybrid) form of a chain: each inner vector is a parallel
/// NF set, layers execute sequentially.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HybridChain {
    layers: Vec<Vec<usize>>,
}

impl HybridChain {
    /// The layers, outermost-sequential order.
    #[inline]
    pub fn layers(&self) -> &[Vec<usize>] {
        &self.layers
    }

    /// Number of layers (the paper's `ω`).
    #[inline]
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Widest parallel set (the paper's `φ` bound).
    pub fn max_width(&self) -> usize {
        self.layers.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total number of NFs across all layers.
    pub fn nf_count(&self) -> usize {
        self.layers.iter().map(Vec::len).sum()
    }

    /// Flattens back to a sequential order consistent with the layering.
    pub fn flatten(&self) -> Vec<usize> {
        self.layers.iter().flatten().copied().collect()
    }
}

/// Options controlling the transformation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TransformOptions {
    /// Upper bound on the size of a parallel set. The paper's SFC
    /// generator caps sets at three VNFs; `None` means unlimited.
    pub max_width: Option<usize>,
}

/// A chain's NFP partial order, first-class: the NFs in their original
/// sequential order plus every precedence edge the dependency analysis
/// imposes over chain *positions*.
///
/// An edge `(i, j)` (always `i < j`) means the NF at position `i` must
/// complete before the NF at position `j` may run — the pair is not
/// mutually parallelizable, so the original chain order between them is
/// load-bearing. Positions without an edge in either direction are
/// unordered and may execute in parallel or in any order.
///
/// Structural guarantees (by construction, relied on by the property
/// suite): the relation is **irreflexive** (no `(i, i)`), **antisymmetric**
/// (edges only point forward, so `(i, j)` and `(j, i)` cannot coexist),
/// and **acyclic** (it is a sub-relation of the position order `<`).
/// The original chain order is therefore always one linear extension.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialOrderChain {
    nfs: Vec<usize>,
    edges: Vec<(usize, usize)>,
}

impl PartialOrderChain {
    /// Derives the partial order of `chain` from the pairwise dependency
    /// oracle: positions `i < j` get a precedence edge exactly when their
    /// NFs are not parallelizable in both directions.
    ///
    /// # Panics
    /// Panics if any NF id is outside the dependency matrix.
    pub fn derive(chain: &[usize], deps: &DependencyMatrix) -> Self {
        for &nf in chain {
            assert!(nf < deps.len(), "NF id {nf} outside dependency matrix");
        }
        let mut edges = Vec::new();
        for i in 0..chain.len() {
            for j in (i + 1)..chain.len() {
                let (a, b) = (chain[i], chain[j]);
                if !(deps.parallelizable(a, b) && deps.parallelizable(b, a)) {
                    edges.push((i, j));
                }
            }
        }
        PartialOrderChain {
            nfs: chain.to_vec(),
            edges,
        }
    }

    /// The NF ids in their original sequential order (position `p` holds
    /// `nfs()[p]`).
    #[inline]
    pub fn nfs(&self) -> &[usize] {
        &self.nfs
    }

    /// Number of chain positions.
    #[inline]
    pub fn len(&self) -> usize {
        self.nfs.len()
    }

    /// Whether the chain is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nfs.is_empty()
    }

    /// The precedence edges `(i, j)` over positions, sorted
    /// lexicographically with `i < j` in every edge.
    #[inline]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Whether position `i` must precede position `j`.
    pub fn precedes(&self, i: usize, j: usize) -> bool {
        self.edges.binary_search(&(i, j)).is_ok()
    }

    /// Whether two distinct positions are unordered (parallelizable).
    pub fn unordered(&self, i: usize, j: usize) -> bool {
        i != j && !self.precedes(i.min(j), i.max(j))
    }

    /// The greedy linear-extension layering (paper Fig. 2): walk the
    /// positions in chain order, appending each to the last layer when
    /// it is under the width cap and no precedence edge ties the new
    /// position to any member, opening a new layer otherwise. Returns
    /// layers of *positions*; their concatenation is always `0..len()`
    /// (the identity extension), which is what makes the layered form a
    /// special case rather than a different model.
    pub fn greedy_layering(&self, opts: TransformOptions) -> Vec<Vec<usize>> {
        let cap = opts.max_width.unwrap_or(usize::MAX).max(1);
        let mut layers: Vec<Vec<usize>> = Vec::new();
        for p in 0..self.nfs.len() {
            // Members were appended before `p`, so only edges (q, p)
            // with q < p can exist — exactly the pairs derived above.
            let fits_last = layers.last().is_some_and(|layer| {
                layer.len() < cap && layer.iter().all(|&q| !self.precedes(q, p))
            });
            if fits_last {
                // lint:allow(expect) — invariant: checked non-empty
                layers.last_mut().expect("checked non-empty").push(p);
            } else {
                layers.push(vec![p]);
            }
        }
        layers
    }

    /// The hybrid layered form via [`Self::greedy_layering`], mapping
    /// positions back to NF ids. Bit-identical to [`to_hybrid_legacy`]
    /// for every chain (the membership test is the same predicate,
    /// expressed through the derived edges instead of the live oracle).
    pub fn to_hybrid_chain(&self, opts: TransformOptions) -> HybridChain {
        HybridChain {
            layers: self
                .greedy_layering(opts)
                .into_iter()
                .map(|layer| layer.into_iter().map(|p| self.nfs[p]).collect())
                .collect(),
        }
    }

    /// Whether `order` is a valid linear extension of this partial
    /// order: a permutation of the positions in which every precedence
    /// edge points forward.
    pub fn is_linear_extension(&self, order: &[usize]) -> bool {
        if order.len() != self.nfs.len() {
            return false;
        }
        let mut rank = vec![usize::MAX; self.nfs.len()];
        for (idx, &p) in order.iter().enumerate() {
            if p >= self.nfs.len() || rank[p] != usize::MAX {
                return false;
            }
            rank[p] = idx;
        }
        self.edges.iter().all(|&(i, j)| rank[i] < rank[j])
    }

    /// Whether `layering` (layers of positions) is admissible: a
    /// partition of the positions with no precedence edge inside a layer
    /// and every edge crossing strictly forward between layers.
    pub fn is_admissible_layering(&self, layering: &[Vec<usize>]) -> bool {
        let mut layer_of = vec![usize::MAX; self.nfs.len()];
        let mut seen = 0usize;
        for (l, layer) in layering.iter().enumerate() {
            for &p in layer {
                if p >= self.nfs.len() || layer_of[p] != usize::MAX {
                    return false;
                }
                layer_of[p] = l;
                seen += 1;
            }
        }
        seen == self.nfs.len() && self.edges.iter().all(|&(i, j)| layer_of[i] < layer_of[j])
    }
}

/// Transforms a sequential chain of NF ids into its hybrid layered form.
///
/// Re-derived through the first-class partial order: the chain's
/// precedence DAG is built once ([`PartialOrderChain::derive`]) and the
/// layered form is its greedy linear-extension layering — provably the
/// same output as the original direct greedy ([`to_hybrid_legacy`]),
/// which the differential suite pins bit-for-bit.
///
/// Correctness invariant: within every produced layer, all *ordered* pairs
/// (in both directions, since parallel execution has no order) are
/// parallelizable per `deps`; concatenating the layers preserves the
/// original relative order of order-dependent NFs.
///
/// # Panics
/// Panics if any NF id is outside the dependency matrix.
pub fn to_hybrid(chain: &[usize], deps: &DependencyMatrix, opts: TransformOptions) -> HybridChain {
    PartialOrderChain::derive(chain, deps).to_hybrid_chain(opts)
}

/// The original direct greedy grouping, preserved verbatim as the
/// differential reference for [`to_hybrid`]: it consults the live
/// dependency oracle per candidate instead of the derived edge set.
/// Production code goes through [`to_hybrid`]; this exists so the test
/// battery can prove the partial-order path changed nothing.
///
/// # Panics
/// Panics if any NF id is outside the dependency matrix.
pub fn to_hybrid_legacy(
    chain: &[usize],
    deps: &DependencyMatrix,
    opts: TransformOptions,
) -> HybridChain {
    let cap = opts.max_width.unwrap_or(usize::MAX).max(1);
    let mut layers: Vec<Vec<usize>> = Vec::new();
    for &nf in chain {
        assert!(nf < deps.len(), "NF id {nf} outside dependency matrix");
        let fits_last = layers.last().is_some_and(|layer| {
            layer.len() < cap
                && layer
                    .iter()
                    .all(|&m| deps.parallelizable(m, nf) && deps.parallelizable(nf, m))
        });
        if fits_last {
            // lint:allow(expect) — invariant: checked non-empty
            layers.last_mut().expect("checked non-empty").push(nf);
        } else {
            layers.push(vec![nf]);
        }
    }
    HybridChain { layers }
}

/// Builds the degenerate hybrid form with one NF per layer (used to
/// compare sequential embeddings against hybrid ones).
pub fn sequentialize(chain: &[usize]) -> HybridChain {
    HybridChain {
        layers: chain.iter().map(|&nf| vec![nf]).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{enterprise_catalog, find};

    fn ids(names: &[&str]) -> Vec<usize> {
        let cat = enterprise_catalog();
        names.iter().map(|n| find(&cat, n).unwrap().0).collect()
    }

    fn deps() -> DependencyMatrix {
        DependencyMatrix::analyze(&enterprise_catalog())
    }

    #[test]
    fn readers_collapse_into_one_layer() {
        // firewall, ids, dpi, policer are mutually parallelizable readers.
        let chain = ids(&["firewall", "ids", "dpi", "policer"]);
        let h = to_hybrid(&chain, &deps(), TransformOptions::default());
        assert_eq!(h.depth(), 1);
        assert_eq!(h.max_width(), 4);
        assert_eq!(h.nf_count(), 4);
    }

    #[test]
    fn proxy_splits_layers() {
        let chain = ids(&["firewall", "proxy", "ids"]);
        let h = to_hybrid(&chain, &deps(), TransformOptions::default());
        assert_eq!(
            h.layers(),
            &[vec![chain[0]], vec![chain[1]], vec![chain[2]]]
        );
    }

    #[test]
    fn order_of_dependent_nfs_preserved() {
        // NAT writes what the firewall reads, so they must stay ordered.
        let chain = ids(&["nat", "firewall", "monitor"]);
        let h = to_hybrid(&chain, &deps(), TransformOptions::default());
        let flat = h.flatten();
        let pos = |nf: usize| flat.iter().position(|&x| x == nf).unwrap();
        assert!(pos(chain[0]) < pos(chain[1]));
        // firewall may drop, monitor counts → separate layers too.
        assert!(pos(chain[1]) < pos(chain[2]));
        assert_eq!(h.depth(), 3);
    }

    #[test]
    fn width_cap_respected() {
        let chain = ids(&["firewall", "ids", "dpi", "policer"]);
        let h = to_hybrid(&chain, &deps(), TransformOptions { max_width: Some(2) });
        assert_eq!(h.depth(), 2);
        assert!(h.max_width() <= 2);
        assert_eq!(h.flatten(), chain);
    }

    #[test]
    fn layers_internally_parallelizable() {
        let d = deps();
        let chain = ids(&[
            "firewall",
            "ids",
            "nat",
            "load_balancer",
            "dpi",
            "monitor",
            "qos_marker",
        ]);
        let h = to_hybrid(&chain, &d, TransformOptions::default());
        for layer in h.layers() {
            for (i, &a) in layer.iter().enumerate() {
                for &b in &layer[i + 1..] {
                    assert!(d.parallelizable(a, b) && d.parallelizable(b, a));
                }
            }
        }
        // Multiset of NFs preserved.
        let mut flat = h.flatten();
        let mut orig = chain.clone();
        flat.sort_unstable();
        orig.sort_unstable();
        assert_eq!(flat, orig);
    }

    #[test]
    fn empty_and_singleton_chains() {
        let d = deps();
        assert_eq!(to_hybrid(&[], &d, TransformOptions::default()).depth(), 0);
        let h = to_hybrid(&[3], &d, TransformOptions::default());
        assert_eq!(h.layers(), &[vec![3]]);
    }

    #[test]
    fn sequentialize_is_one_per_layer() {
        let h = sequentialize(&[4, 2, 7]);
        assert_eq!(h.depth(), 3);
        assert_eq!(h.max_width(), 1);
        assert_eq!(h.flatten(), vec![4, 2, 7]);
    }

    #[test]
    fn repeated_nf_kind_allowed() {
        // Two firewalls in a row: parallelizable with each other.
        let fw = ids(&["firewall"])[0];
        let h = to_hybrid(&[fw, fw], &deps(), TransformOptions::default());
        assert_eq!(h.depth(), 1);
        assert_eq!(h.max_width(), 2);
    }

    #[test]
    #[should_panic(expected = "outside dependency matrix")]
    fn unknown_nf_panics() {
        to_hybrid(&[999], &deps(), TransformOptions::default());
    }

    #[test]
    fn derived_edges_match_the_oracle_pairwise() {
        let d = deps();
        let chain = ids(&["nat", "firewall", "ids", "dpi", "monitor", "proxy"]);
        let po = PartialOrderChain::derive(&chain, &d);
        for i in 0..chain.len() {
            assert!(!po.precedes(i, i), "irreflexive");
            for j in (i + 1)..chain.len() {
                let mutual =
                    d.parallelizable(chain[i], chain[j]) && d.parallelizable(chain[j], chain[i]);
                assert_eq!(po.precedes(i, j), !mutual, "edge ({i},{j})");
                assert!(!po.precedes(j, i), "antisymmetric: no backward edges");
            }
        }
    }

    #[test]
    fn partial_order_greedy_matches_legacy_bit_for_bit() {
        let d = deps();
        for chain in [
            ids(&["firewall", "ids", "dpi", "policer"]),
            ids(&["nat", "firewall", "monitor"]),
            ids(&["firewall", "proxy", "ids"]),
            ids(&[
                "firewall",
                "ids",
                "nat",
                "load_balancer",
                "dpi",
                "monitor",
                "qos_marker",
            ]),
            vec![],
        ] {
            for cap in [None, Some(1), Some(2), Some(3)] {
                let opts = TransformOptions { max_width: cap };
                assert_eq!(
                    to_hybrid(&chain, &d, opts),
                    to_hybrid_legacy(&chain, &d, opts),
                    "chain {chain:?} cap {cap:?}"
                );
            }
        }
    }

    #[test]
    fn greedy_layering_is_admissible_and_flattens_to_identity() {
        let d = deps();
        let chain = ids(&["nat", "firewall", "ids", "dpi", "monitor"]);
        let po = PartialOrderChain::derive(&chain, &d);
        let layering = po.greedy_layering(TransformOptions::default());
        assert!(po.is_admissible_layering(&layering));
        let flat: Vec<usize> = layering.iter().flatten().copied().collect();
        assert_eq!(flat, (0..chain.len()).collect::<Vec<_>>());
        assert!(po.is_linear_extension(&flat));
    }

    #[test]
    fn extension_and_layering_checkers_reject_corruption() {
        let d = deps();
        // NAT must precede firewall (write/read dependency).
        let chain = ids(&["nat", "firewall"]);
        let po = PartialOrderChain::derive(&chain, &d);
        assert!(po.precedes(0, 1));
        assert!(!po.is_linear_extension(&[1, 0]), "reversed dependency");
        assert!(!po.is_linear_extension(&[0]), "not a permutation");
        assert!(!po.is_linear_extension(&[0, 0]), "duplicate position");
        assert!(
            !po.is_admissible_layering(&[vec![0, 1]]),
            "edge inside a layer"
        );
        assert!(
            !po.is_admissible_layering(&[vec![1], vec![0]]),
            "edge backwards"
        );
        assert!(po.is_admissible_layering(&[vec![0], vec![1]]));
    }

    #[test]
    fn unordered_is_symmetric_and_matches_edges() {
        let d = deps();
        let chain = ids(&["firewall", "ids", "proxy"]);
        let po = PartialOrderChain::derive(&chain, &d);
        assert!(po.unordered(0, 1) && po.unordered(1, 0), "readers commute");
        assert!(!po.unordered(0, 2), "proxy is order-dependent");
        assert!(!po.unordered(1, 1), "never unordered with itself");
    }

    #[test]
    fn hybrid_never_deeper_than_sequential() {
        let d = deps();
        let chain = ids(&["firewall", "ids", "nat", "dpi", "monitor"]);
        let h = to_hybrid(&chain, &d, TransformOptions::default());
        assert!(h.depth() <= chain.len());
        assert_eq!(h.nf_count(), chain.len());
    }
}
