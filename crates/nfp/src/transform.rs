//! Sequential-chain → hybrid-chain transformation (paper Fig. 2, top to
//! middle).
//!
//! Given a sequential SFC and the pairwise dependency oracle, consecutive
//! NFs are greedily grouped into *parallel NF sets*: an NF joins the
//! current set when it is parallelizable with **every** member (order
//! within a set is then immaterial), otherwise it opens the next layer.
//! The result is the layered structure the DAG-SFC abstraction
//! standardizes.

use crate::dependency::DependencyMatrix;
use serde::{Deserialize, Serialize};

/// The layered (hybrid) form of a chain: each inner vector is a parallel
/// NF set, layers execute sequentially.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HybridChain {
    layers: Vec<Vec<usize>>,
}

impl HybridChain {
    /// The layers, outermost-sequential order.
    #[inline]
    pub fn layers(&self) -> &[Vec<usize>] {
        &self.layers
    }

    /// Number of layers (the paper's `ω`).
    #[inline]
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Widest parallel set (the paper's `φ` bound).
    pub fn max_width(&self) -> usize {
        self.layers.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total number of NFs across all layers.
    pub fn nf_count(&self) -> usize {
        self.layers.iter().map(Vec::len).sum()
    }

    /// Flattens back to a sequential order consistent with the layering.
    pub fn flatten(&self) -> Vec<usize> {
        self.layers.iter().flatten().copied().collect()
    }
}

/// Options controlling the transformation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TransformOptions {
    /// Upper bound on the size of a parallel set. The paper's SFC
    /// generator caps sets at three VNFs; `None` means unlimited.
    pub max_width: Option<usize>,
}

/// Transforms a sequential chain of NF ids into its hybrid layered form.
///
/// Correctness invariant: within every produced layer, all *ordered* pairs
/// (in both directions, since parallel execution has no order) are
/// parallelizable per `deps`; concatenating the layers preserves the
/// original relative order of order-dependent NFs.
///
/// # Panics
/// Panics if any NF id is outside the dependency matrix.
pub fn to_hybrid(chain: &[usize], deps: &DependencyMatrix, opts: TransformOptions) -> HybridChain {
    let cap = opts.max_width.unwrap_or(usize::MAX).max(1);
    let mut layers: Vec<Vec<usize>> = Vec::new();
    for &nf in chain {
        assert!(nf < deps.len(), "NF id {nf} outside dependency matrix");
        let fits_last = layers.last().is_some_and(|layer| {
            layer.len() < cap
                && layer
                    .iter()
                    .all(|&m| deps.parallelizable(m, nf) && deps.parallelizable(nf, m))
        });
        if fits_last {
            // lint:allow(expect) — invariant: checked non-empty
            layers.last_mut().expect("checked non-empty").push(nf);
        } else {
            layers.push(vec![nf]);
        }
    }
    HybridChain { layers }
}

/// Builds the degenerate hybrid form with one NF per layer (used to
/// compare sequential embeddings against hybrid ones).
pub fn sequentialize(chain: &[usize]) -> HybridChain {
    HybridChain {
        layers: chain.iter().map(|&nf| vec![nf]).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{enterprise_catalog, find};

    fn ids(names: &[&str]) -> Vec<usize> {
        let cat = enterprise_catalog();
        names.iter().map(|n| find(&cat, n).unwrap().0).collect()
    }

    fn deps() -> DependencyMatrix {
        DependencyMatrix::analyze(&enterprise_catalog())
    }

    #[test]
    fn readers_collapse_into_one_layer() {
        // firewall, ids, dpi, policer are mutually parallelizable readers.
        let chain = ids(&["firewall", "ids", "dpi", "policer"]);
        let h = to_hybrid(&chain, &deps(), TransformOptions::default());
        assert_eq!(h.depth(), 1);
        assert_eq!(h.max_width(), 4);
        assert_eq!(h.nf_count(), 4);
    }

    #[test]
    fn proxy_splits_layers() {
        let chain = ids(&["firewall", "proxy", "ids"]);
        let h = to_hybrid(&chain, &deps(), TransformOptions::default());
        assert_eq!(
            h.layers(),
            &[vec![chain[0]], vec![chain[1]], vec![chain[2]]]
        );
    }

    #[test]
    fn order_of_dependent_nfs_preserved() {
        // NAT writes what the firewall reads, so they must stay ordered.
        let chain = ids(&["nat", "firewall", "monitor"]);
        let h = to_hybrid(&chain, &deps(), TransformOptions::default());
        let flat = h.flatten();
        let pos = |nf: usize| flat.iter().position(|&x| x == nf).unwrap();
        assert!(pos(chain[0]) < pos(chain[1]));
        // firewall may drop, monitor counts → separate layers too.
        assert!(pos(chain[1]) < pos(chain[2]));
        assert_eq!(h.depth(), 3);
    }

    #[test]
    fn width_cap_respected() {
        let chain = ids(&["firewall", "ids", "dpi", "policer"]);
        let h = to_hybrid(&chain, &deps(), TransformOptions { max_width: Some(2) });
        assert_eq!(h.depth(), 2);
        assert!(h.max_width() <= 2);
        assert_eq!(h.flatten(), chain);
    }

    #[test]
    fn layers_internally_parallelizable() {
        let d = deps();
        let chain = ids(&[
            "firewall",
            "ids",
            "nat",
            "load_balancer",
            "dpi",
            "monitor",
            "qos_marker",
        ]);
        let h = to_hybrid(&chain, &d, TransformOptions::default());
        for layer in h.layers() {
            for (i, &a) in layer.iter().enumerate() {
                for &b in &layer[i + 1..] {
                    assert!(d.parallelizable(a, b) && d.parallelizable(b, a));
                }
            }
        }
        // Multiset of NFs preserved.
        let mut flat = h.flatten();
        let mut orig = chain.clone();
        flat.sort_unstable();
        orig.sort_unstable();
        assert_eq!(flat, orig);
    }

    #[test]
    fn empty_and_singleton_chains() {
        let d = deps();
        assert_eq!(to_hybrid(&[], &d, TransformOptions::default()).depth(), 0);
        let h = to_hybrid(&[3], &d, TransformOptions::default());
        assert_eq!(h.layers(), &[vec![3]]);
    }

    #[test]
    fn sequentialize_is_one_per_layer() {
        let h = sequentialize(&[4, 2, 7]);
        assert_eq!(h.depth(), 3);
        assert_eq!(h.max_width(), 1);
        assert_eq!(h.flatten(), vec![4, 2, 7]);
    }

    #[test]
    fn repeated_nf_kind_allowed() {
        // Two firewalls in a row: parallelizable with each other.
        let fw = ids(&["firewall"])[0];
        let h = to_hybrid(&[fw, fw], &deps(), TransformOptions::default());
        assert_eq!(h.depth(), 1);
        assert_eq!(h.max_width(), 2);
    }

    #[test]
    #[should_panic(expected = "outside dependency matrix")]
    fn unknown_nf_panics() {
        to_hybrid(&[999], &deps(), TransformOptions::default());
    }

    #[test]
    fn hybrid_never_deeper_than_sequential() {
        let d = deps();
        let chain = ids(&["firewall", "ids", "nat", "dpi", "monitor"]);
        let h = to_hybrid(&chain, &d, TransformOptions::default());
        assert!(h.depth() <= chain.len());
        assert_eq!(h.nf_count(), chain.len());
    }
}
