//! A library of canned enterprise service chains.
//!
//! NFP's measurement study and the DAG-SFC paper both motivate hybrid
//! chains with concrete enterprise deployments. These presets (over the
//! [`crate::catalog::enterprise_catalog`] NF ids) give examples, tests,
//! and demos realistic chains to transform and embed without hand-
//! picking NF indices.

use crate::catalog::{enterprise_catalog, find, NfSpec};
use crate::dependency::DependencyMatrix;
use crate::transform::{to_hybrid, HybridChain, TransformOptions};
use std::fmt;

/// A preset lookup failure — an ordinary error, so a service daemon can
/// surface a bad chain name as a protocol-level rejection instead of
/// aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PresetError {
    /// No preset with the given name exists.
    UnknownPreset(String),
    /// A preset references an NF name the catalog does not define.
    UnknownNf {
        /// The preset being resolved.
        preset: String,
        /// The NF name missing from the catalog.
        nf: String,
    },
}

impl fmt::Display for PresetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PresetError::UnknownPreset(name) => write!(f, "unknown chain preset '{name}'"),
            PresetError::UnknownNf { preset, nf } => {
                write!(
                    f,
                    "preset '{preset}' references NF '{nf}' missing from the catalog"
                )
            }
        }
    }
}

impl std::error::Error for PresetError {}

/// A named service chain preset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainPreset {
    /// Preset name.
    pub name: &'static str,
    /// What the chain is for.
    pub description: &'static str,
    /// NF names, in traversal order (all present in the enterprise
    /// catalog).
    pub nfs: &'static [&'static str],
}

/// The preset library.
pub const PRESETS: &[ChainPreset] = &[
    ChainPreset {
        name: "web-ingress",
        description: "North-south ingress for a web tier",
        nfs: &["firewall", "ids", "dpi", "load_balancer"],
    },
    ChainPreset {
        name: "security-stack",
        description: "Full inspection stack for regulated traffic",
        nfs: &["firewall", "ips", "dpi", "monitor"],
    },
    ChainPreset {
        name: "branch-office",
        description: "Branch-to-HQ with WAN optimization and VPN",
        nfs: &["firewall", "qos_marker", "wan_optimizer", "vpn"],
    },
    ChainPreset {
        name: "nat-egress",
        description: "Outbound NAT with policing and accounting",
        nfs: &["policer", "nat", "monitor"],
    },
    ChainPreset {
        name: "proxy-front",
        description: "Terminating proxy behind an inspection layer",
        nfs: &["firewall", "ids", "proxy", "load_balancer"],
    },
    ChainPreset {
        name: "full-gauntlet",
        description: "Everything a paranoid enterprise deploys inline",
        nfs: &[
            "policer",
            "firewall",
            "ids",
            "ips",
            "dpi",
            "nat",
            "qos_marker",
        ],
    },
];

/// Looks up a preset by name.
pub fn preset(name: &str) -> Option<&'static ChainPreset> {
    PRESETS.iter().find(|p| p.name == name)
}

/// Resolves a preset's NF names to catalog indices.
///
/// Fails with [`PresetError::UnknownNf`] if the preset references an
/// NF missing from `catalog` — the built-in presets over the built-in
/// catalog never do, but custom catalogs can be sparse.
pub fn resolve(preset: &ChainPreset, catalog: &[NfSpec]) -> Result<Vec<usize>, PresetError> {
    preset
        .nfs
        .iter()
        .map(|n| {
            find(catalog, n)
                .map(|(i, _)| i)
                .ok_or_else(|| PresetError::UnknownNf {
                    preset: preset.name.to_string(),
                    nf: n.to_string(),
                })
        })
        .collect()
}

/// Convenience: resolve and transform a preset into its hybrid form over
/// the built-in catalog.
pub fn hybrid_preset(name: &str, opts: TransformOptions) -> Result<HybridChain, PresetError> {
    let p = preset(name).ok_or_else(|| PresetError::UnknownPreset(name.to_string()))?;
    let catalog = enterprise_catalog();
    let deps = DependencyMatrix::analyze(&catalog);
    Ok(to_hybrid(&resolve(p, &catalog)?, &deps, opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_resolve() {
        let catalog = enterprise_catalog();
        for p in PRESETS {
            let ids = resolve(p, &catalog).unwrap();
            assert_eq!(ids.len(), p.nfs.len(), "{}", p.name);
            assert!(!p.description.is_empty());
        }
    }

    #[test]
    fn preset_lookup() {
        assert!(preset("web-ingress").is_some());
        assert!(preset("quantum-mesh").is_none());
    }

    #[test]
    fn unknown_preset_is_an_error() {
        let err = hybrid_preset("quantum-mesh", TransformOptions::default()).unwrap_err();
        assert_eq!(err, PresetError::UnknownPreset("quantum-mesh".into()));
        assert!(err.to_string().contains("quantum-mesh"));
    }

    #[test]
    fn missing_nf_is_an_error_not_a_panic() {
        // A sparse custom catalog lacking "dpi" must fail cleanly.
        let catalog: Vec<NfSpec> = enterprise_catalog()
            .into_iter()
            .filter(|nf| nf.name != "dpi")
            .collect();
        let p = preset("web-ingress").unwrap();
        let err = resolve(p, &catalog).unwrap_err();
        assert_eq!(
            err,
            PresetError::UnknownNf {
                preset: "web-ingress".into(),
                nf: "dpi".into(),
            }
        );
        assert!(err.to_string().contains("dpi"));
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = PRESETS.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PRESETS.len());
    }

    #[test]
    fn every_preset_transforms() {
        for p in PRESETS {
            let h = hybrid_preset(p.name, TransformOptions::default()).unwrap();
            assert_eq!(h.nf_count(), p.nfs.len(), "{}", p.name);
            assert!(h.depth() >= 1);
            assert!(h.depth() <= p.nfs.len());
        }
    }

    #[test]
    fn web_ingress_parallelizes_inspection() {
        // firewall ∥ ids ∥ dpi collapse; the load balancer writes the
        // destination the firewall reads, so it stays behind them.
        let h = hybrid_preset("web-ingress", TransformOptions::default()).unwrap();
        assert_eq!(h.depth(), 2);
        assert_eq!(h.layers()[0].len(), 3);
        assert_eq!(h.layers()[1].len(), 1);
    }

    #[test]
    fn proxy_front_cannot_parallelize_across_proxy() {
        let h = hybrid_preset("proxy-front", TransformOptions::default()).unwrap();
        // proxy terminates connections: it sits alone in its layer.
        let catalog = enterprise_catalog();
        let proxy_id = find(&catalog, "proxy").unwrap().0;
        let proxy_layer = h
            .layers()
            .iter()
            .find(|l| l.contains(&proxy_id))
            .expect("proxy embedded");
        assert_eq!(proxy_layer.len(), 1);
    }

    #[test]
    fn full_gauntlet_compresses_significantly() {
        let h = hybrid_preset("full-gauntlet", TransformOptions::default()).unwrap();
        assert!(
            h.depth() <= 4,
            "expected ≥ 3 stages of parallelism, got depth {}",
            h.depth()
        );
    }

    #[test]
    fn width_cap_applies_to_presets() {
        let capped =
            hybrid_preset("full-gauntlet", TransformOptions { max_width: Some(2) }).unwrap();
        assert!(capped.max_width() <= 2);
    }
}
