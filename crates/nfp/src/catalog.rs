//! A canned catalog of enterprise network functions.
//!
//! The DAG-SFC paper motivates hybrid chains with the enterprise NFs
//! studied by NFP [17] — firewalls, intrusion detection, NAT, load
//! balancing, monitoring, and so on. This module provides action profiles
//! and representative per-packet processing delays for twelve such
//! functions, enough to populate the paper's VNF universe (Table 2 uses a
//! deployment of *n* VNF kinds plus the merger).

use crate::action::ActionProfile;
use crate::field::{FieldSet, PacketField};
use serde::{Deserialize, Serialize};

/// A network function specification: identity, behaviour, and unit costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NfSpec {
    /// Human-readable name, e.g. `"firewall"`.
    pub name: &'static str,
    /// The packet-action profile driving parallelism analysis.
    pub profile: ActionProfile,
    /// Representative per-packet processing delay in microseconds
    /// (order-of-magnitude values from the NFV literature; used by the
    /// delay model, not by the cost objective).
    pub proc_delay_us: f64,
}

/// Builds the default twelve-function enterprise catalog.
///
/// Index in the returned vector is the NF's id; the DAG-SFC VNF type ids
/// map 1:1 onto these indices.
pub fn enterprise_catalog() -> Vec<NfSpec> {
    use PacketField as F;
    let header = FieldSet::FIVE_TUPLE;
    vec![
        NfSpec {
            // Stateless ACL firewall: inspects the 5-tuple, may drop.
            name: "firewall",
            profile: ActionProfile {
                reads: header,
                writes: FieldSet::EMPTY,
                may_drop: true,
                counts_traffic: false,
                terminates: false,
            },
            proc_delay_us: 15.0,
        },
        NfSpec {
            // Signature IDS: reads everything, alerts out-of-band.
            name: "ids",
            profile: ActionProfile {
                reads: FieldSet::ALL,
                writes: FieldSet::EMPTY,
                may_drop: false,
                counts_traffic: false,
                terminates: false,
            },
            proc_delay_us: 120.0,
        },
        NfSpec {
            // Inline IPS: reads everything, may drop.
            name: "ips",
            profile: ActionProfile {
                reads: FieldSet::ALL,
                writes: FieldSet::EMPTY,
                may_drop: true,
                counts_traffic: false,
                terminates: false,
            },
            proc_delay_us: 130.0,
        },
        NfSpec {
            // Source NAT: inspects and rewrites the source half only.
            name: "nat",
            profile: ActionProfile {
                reads: FieldSet::of(&[F::SrcIp, F::SrcPort, F::Protocol]),
                writes: FieldSet::of(&[F::SrcIp, F::SrcPort]),
                may_drop: false,
                counts_traffic: false,
                terminates: false,
            },
            proc_delay_us: 25.0,
        },
        NfSpec {
            // L4 load balancer: inspects and rewrites the destination half.
            name: "load_balancer",
            profile: ActionProfile {
                reads: FieldSet::of(&[F::DstIp, F::DstPort, F::Protocol]),
                writes: FieldSet::of(&[F::DstIp, F::DstPort]),
                may_drop: false,
                counts_traffic: false,
                terminates: false,
            },
            proc_delay_us: 20.0,
        },
        NfSpec {
            // Terminating HTTP proxy: re-originates connections.
            name: "proxy",
            profile: ActionProfile {
                reads: FieldSet::ALL,
                writes: FieldSet::ALL,
                may_drop: false,
                counts_traffic: false,
                terminates: true,
            },
            proc_delay_us: 200.0,
        },
        NfSpec {
            // VPN gateway: encapsulates the whole packet.
            name: "vpn",
            profile: ActionProfile {
                reads: FieldSet::ALL,
                writes: FieldSet::ALL,
                may_drop: false,
                counts_traffic: false,
                terminates: true,
            },
            proc_delay_us: 180.0,
        },
        NfSpec {
            // Passive monitor / billing probe.
            name: "monitor",
            profile: ActionProfile::monitor(),
            proc_delay_us: 10.0,
        },
        NfSpec {
            // DSCP remarker for QoS.
            name: "qos_marker",
            profile: ActionProfile {
                reads: header,
                writes: FieldSet::of(&[F::Tos]),
                may_drop: false,
                counts_traffic: false,
                terminates: false,
            },
            proc_delay_us: 12.0,
        },
        NfSpec {
            // Deep packet inspection classifier: pure payload reader.
            name: "dpi",
            profile: ActionProfile {
                reads: FieldSet::of(&[F::Payload, F::Protocol]),
                writes: FieldSet::EMPTY,
                may_drop: false,
                counts_traffic: false,
                terminates: false,
            },
            proc_delay_us: 90.0,
        },
        NfSpec {
            // WAN optimizer: compresses payload.
            name: "wan_optimizer",
            profile: ActionProfile {
                reads: FieldSet::of(&[F::Payload]),
                writes: FieldSet::of(&[F::Payload, F::Length]),
                may_drop: false,
                counts_traffic: false,
                terminates: false,
            },
            proc_delay_us: 150.0,
        },
        NfSpec {
            // Traffic policer: meters and may drop, but rewrites nothing.
            name: "policer",
            profile: ActionProfile {
                reads: header,
                writes: FieldSet::EMPTY,
                may_drop: true,
                counts_traffic: false,
                terminates: false,
            },
            proc_delay_us: 8.0,
        },
    ]
}

/// Looks up an NF by name in a catalog.
pub fn find<'a>(catalog: &'a [NfSpec], name: &str) -> Option<(usize, &'a NfSpec)> {
    catalog.iter().enumerate().find(|(_, s)| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{parallelism, Parallelism};

    #[test]
    fn twelve_functions_with_unique_names() {
        let cat = enterprise_catalog();
        assert_eq!(cat.len(), 12);
        let mut names: Vec<_> = cat.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn find_by_name() {
        let cat = enterprise_catalog();
        let (idx, spec) = find(&cat, "nat").unwrap();
        assert_eq!(spec.name, "nat");
        assert_eq!(cat[idx].name, "nat");
        assert!(find(&cat, "quantum_router").is_none());
    }

    #[test]
    fn profiles_behave_as_documented() {
        let cat = enterprise_catalog();
        let fw = &find(&cat, "firewall").unwrap().1.profile;
        let ids = &find(&cat, "ids").unwrap().1.profile;
        let nat = &find(&cat, "nat").unwrap().1.profile;
        let mon = &find(&cat, "monitor").unwrap().1.profile;
        let proxy = &find(&cat, "proxy").unwrap().1.profile;

        // Firewall ∥ IDS: classic NFP example of full parallelism.
        assert_eq!(parallelism(fw, ids), Parallelism::Full);
        // NAT then firewall: firewall reads what NAT wrote.
        assert_eq!(parallelism(nat, fw), Parallelism::Sequential);
        // Firewall then monitor: drop-vs-count ordering matters.
        assert_eq!(parallelism(fw, mon), Parallelism::Sequential);
        // Proxies never parallelize.
        assert_eq!(parallelism(proxy, ids), Parallelism::Sequential);
    }

    #[test]
    fn delays_positive() {
        for s in enterprise_catalog() {
            assert!(s.proc_delay_us > 0.0, "{} has no delay", s.name);
        }
    }

    #[test]
    fn nat_and_lb_parallel_with_copy() {
        let cat = enterprise_catalog();
        let nat = &find(&cat, "nat").unwrap().1.profile;
        let lb = &find(&cat, "load_balancer").unwrap().1.profile;
        // Both write disjoint header halves → copy-and-merge parallelism.
        assert_eq!(parallelism(nat, lb), Parallelism::WithCopyOverhead);
    }
}
