//! Pairwise order-dependency analysis over an NF catalog.
//!
//! NFP [17] reports that 53.8% of NF pairs in enterprise networks can work
//! in parallel and 41.5% can do so without extra resource overhead. This
//! module computes the same classification for any catalog of
//! [`NfSpec`]s, and is the oracle the chain transformation queries.

use crate::action::{parallelism, Parallelism};
use crate::catalog::NfSpec;
use serde::{Deserialize, Serialize};

/// Dense matrix of [`Parallelism`] verdicts for every *ordered* NF pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DependencyMatrix {
    n: usize,
    cells: Vec<Parallelism>,
}

impl DependencyMatrix {
    /// Analyzes every ordered pair in `catalog`.
    pub fn analyze(catalog: &[NfSpec]) -> Self {
        let n = catalog.len();
        let mut cells = Vec::with_capacity(n * n);
        for a in catalog {
            for b in catalog {
                cells.push(parallelism(&a.profile, &b.profile));
            }
        }
        DependencyMatrix { n, cells }
    }

    /// Number of NFs covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Verdict for the ordered pair `(first, second)`.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    #[inline]
    pub fn pair(&self, first: usize, second: usize) -> Parallelism {
        assert!(first < self.n && second < self.n, "NF index out of range");
        self.cells[first * self.n + second]
    }

    /// Whether the ordered pair may share a parallel layer.
    #[inline]
    pub fn parallelizable(&self, first: usize, second: usize) -> bool {
        self.pair(first, second).is_parallelizable()
    }

    /// Statistics over all ordered pairs (diagonal included, matching
    /// NFP's methodology of classifying every NF pair).
    pub fn stats(&self) -> PairStats {
        let mut full = 0usize;
        let mut copy = 0usize;
        let mut seq = 0usize;
        for &c in &self.cells {
            match c {
                Parallelism::Full => full += 1,
                Parallelism::WithCopyOverhead => copy += 1,
                Parallelism::Sequential => seq += 1,
            }
        }
        PairStats {
            pairs: self.cells.len(),
            full,
            with_copy: copy,
            sequential: seq,
        }
    }
}

/// Aggregate pair-classification counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairStats {
    /// Total ordered pairs classified.
    pub pairs: usize,
    /// Pairs parallelizable with no resource overhead.
    pub full: usize,
    /// Pairs parallelizable only with packet copying.
    pub with_copy: usize,
    /// Pairs that must stay sequential.
    pub sequential: usize,
}

impl PairStats {
    /// Fraction of pairs that can work in parallel (NFP's 53.8% figure).
    pub fn parallel_fraction(&self) -> f64 {
        if self.pairs == 0 {
            return 0.0;
        }
        (self.full + self.with_copy) as f64 / self.pairs as f64
    }

    /// Fraction parallelizable without extra overhead (NFP's 41.5%).
    pub fn overhead_free_fraction(&self) -> f64 {
        if self.pairs == 0 {
            return 0.0;
        }
        self.full as f64 / self.pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{enterprise_catalog, find};

    #[test]
    fn matrix_matches_direct_calls() {
        let cat = enterprise_catalog();
        let m = DependencyMatrix::analyze(&cat);
        assert_eq!(m.len(), cat.len());
        for i in 0..cat.len() {
            for j in 0..cat.len() {
                assert_eq!(
                    m.pair(i, j),
                    parallelism(&cat[i].profile, &cat[j].profile),
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn stats_sum_to_total() {
        let cat = enterprise_catalog();
        let s = DependencyMatrix::analyze(&cat).stats();
        assert_eq!(s.pairs, cat.len() * cat.len());
        assert_eq!(s.full + s.with_copy + s.sequential, s.pairs);
    }

    #[test]
    fn catalog_parallelism_in_nfp_ballpark() {
        // NFP measured 53.8% parallelizable and 41.5% overhead-free across
        // enterprise NF pairs; our synthetic catalog should land in the
        // same regime (a broad band — the exact NF mix differs).
        let s = DependencyMatrix::analyze(&enterprise_catalog()).stats();
        let p = s.parallel_fraction();
        let f = s.overhead_free_fraction();
        assert!((0.25..0.75).contains(&p), "parallel fraction {p}");
        assert!((0.2..0.7).contains(&f), "overhead-free fraction {f}");
        assert!(f <= p);
    }

    #[test]
    fn known_pairs() {
        let cat = enterprise_catalog();
        let m = DependencyMatrix::analyze(&cat);
        let fw = find(&cat, "firewall").unwrap().0;
        let ids = find(&cat, "ids").unwrap().0;
        let proxy = find(&cat, "proxy").unwrap().0;
        assert!(m.parallelizable(fw, ids));
        assert!(!m.parallelizable(proxy, ids));
        assert!(!m.parallelizable(ids, proxy));
    }

    #[test]
    fn empty_catalog() {
        let m = DependencyMatrix::analyze(&[]);
        assert!(m.is_empty());
        assert_eq!(m.stats().pairs, 0);
        assert_eq!(m.stats().parallel_fraction(), 0.0);
        assert_eq!(m.stats().overhead_free_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pair_panics() {
        let m = DependencyMatrix::analyze(&enterprise_catalog());
        m.pair(0, 99);
    }
}
