//! # dagsfc-nfp — network-function parallelism analysis
//!
//! The DAG-SFC paper builds on the observation (NFP [17], ParaBox [22])
//! that many network-function pairs have no order dependency and can run
//! in parallel. This crate supplies that substrate:
//!
//! * [`field`]/[`action`] — packet-field bitsets and NF action profiles
//!   (reads, writes, drop, accounting, termination);
//! * [`catalog`] — a twelve-function enterprise NF catalog with
//!   representative processing delays;
//! * [`dependency`] — the pairwise parallelizability oracle and the
//!   NFP-style pair statistics (53.8% parallelizable / 41.5%
//!   overhead-free in the original measurement);
//! * [`transform`] — the sequential→hybrid chain transformation of the
//!   paper's Fig. 2 (top → middle), producing the layered structure the
//!   DAG-SFC abstraction standardizes.
//!
//! ```
//! use dagsfc_nfp::{catalog, DependencyMatrix, to_hybrid, TransformOptions};
//!
//! let cat = catalog::enterprise_catalog();
//! let deps = DependencyMatrix::analyze(&cat);
//! // firewall, ids, dpi are mutually independent readers:
//! let chain = [0usize, 1, 9];
//! let hybrid = to_hybrid(&chain, &deps, TransformOptions::default());
//! assert_eq!(hybrid.depth(), 1);
//! assert_eq!(hybrid.max_width(), 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod action;
pub mod catalog;
pub mod chains;
pub mod dependency;
pub mod field;
pub mod transform;

pub use action::{conflict, parallelism, ActionProfile, ConflictReason, Parallelism};
pub use catalog::{enterprise_catalog, NfSpec};
pub use chains::{hybrid_preset, ChainPreset, PresetError, PRESETS};
pub use dependency::{DependencyMatrix, PairStats};
pub use field::{FieldSet, PacketField};
pub use transform::{
    sequentialize, to_hybrid, to_hybrid_legacy, HybridChain, PartialOrderChain, TransformOptions,
};
