//! The paper's random network generator (§5.1).
//!
//! Reproduces the four generation steps verbatim:
//! 1. create nodes until the configured *network size* is reached;
//! 2. connect all nodes with a random spanning tree (guaranteeing a
//!    connected graph), then add random extra edges until the configured
//!    *network connectivity* (average node degree) is met;
//! 3. deploy each VNF kind on each node with probability equal to the
//!    *VNF deploying ratio*, drawing prices from the configured *VNF price
//!    fluctuation ratio* around the mean;
//! 4. price every link according to the *average price ratio* (mean link
//!    price over mean VNF price).
//!
//! Everything is driven by a caller-supplied RNG so experiments are
//! reproducible from a seed.

use crate::error::{NetError, NetResult};
use crate::graph::Network;
use crate::ids::{NodeId, VnfTypeId};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Parameters of the §5.1 random network generator.
///
/// Defaults mirror Table 2 of the paper (the "basic configuration"),
/// with absolute scales fixed at mean VNF price 1.0 (only ratios matter
/// for the reported results).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetGenConfig {
    /// Network size: number of nodes.
    pub nodes: usize,
    /// Network connectivity: target average node degree.
    pub avg_degree: f64,
    /// Number of deployable VNF kinds (callers include the merger kind).
    pub vnf_kinds: usize,
    /// VNF deploying ratio: probability that a kind is deployed on a node.
    pub deploy_ratio: f64,
    /// Mean VNF rental price per rate unit.
    pub avg_vnf_price: f64,
    /// VNF price fluctuation ratio: half the max-min gap over the mean,
    /// i.e. prices are uniform in `avg·(1 ± fluctuation)`.
    pub vnf_price_fluctuation: f64,
    /// Average price ratio: mean link price / mean VNF price.
    pub avg_price_ratio: f64,
    /// Link price fluctuation (same convention as the VNF one). The paper
    /// specifies only the link price *average*; a small spread keeps
    /// min-cost paths unique in practice without changing any trend.
    pub link_price_fluctuation: f64,
    /// Processing capability of every VNF instance, in rate units.
    pub vnf_capacity: f64,
    /// Bandwidth capacity of every link, in rate units.
    pub link_capacity: f64,
    /// Mean link propagation delay in microseconds. Delays are drawn
    /// *after* every price draw so topologies and prices stay
    /// bit-identical to pre-delay seeds.
    pub avg_link_delay_us: f64,
    /// Link delay fluctuation ratio (same `avg·(1 ± fluctuation)`
    /// convention as the price fluctuations).
    pub link_delay_fluctuation: f64,
    /// Guarantee that every VNF kind is deployed on at least one node even
    /// when the deploying ratio leaves it out entirely (keeps tiny
    /// networks embeddable).
    pub ensure_full_coverage: bool,
}

impl Default for NetGenConfig {
    fn default() -> Self {
        NetGenConfig {
            nodes: 500,
            avg_degree: 6.0,
            vnf_kinds: 13, // 12 regular kinds + the merger kind
            deploy_ratio: 0.5,
            avg_vnf_price: 1.0,
            vnf_price_fluctuation: 0.05,
            avg_price_ratio: 0.2,
            link_price_fluctuation: 0.05,
            vnf_capacity: 1e6,
            link_capacity: 1e6,
            avg_link_delay_us: 10.0,
            link_delay_fluctuation: 0.05,
            ensure_full_coverage: true,
        }
    }
}

impl NetGenConfig {
    /// Validates parameter ranges.
    pub fn validate(&self) -> NetResult<()> {
        if self.nodes == 0 {
            return Err(NetError::InvalidParameter("nodes must be positive"));
        }
        if self.vnf_kinds == 0 {
            return Err(NetError::InvalidParameter("vnf_kinds must be positive"));
        }
        if !(0.0..=1.0).contains(&self.deploy_ratio) {
            return Err(NetError::InvalidParameter("deploy_ratio must be in [0,1]"));
        }
        if !(0.0..=1.0).contains(&self.vnf_price_fluctuation)
            || !(0.0..=1.0).contains(&self.link_price_fluctuation)
        {
            return Err(NetError::InvalidParameter(
                "price fluctuation ratios must be in [0,1]",
            ));
        }
        if !(0.0..=1.0).contains(&self.link_delay_fluctuation) {
            return Err(NetError::InvalidParameter(
                "link_delay_fluctuation must be in [0,1]",
            ));
        }
        if self.avg_degree < 0.0 {
            return Err(NetError::InvalidParameter(
                "avg_degree must be non-negative",
            ));
        }
        for (v, name) in [
            (self.avg_vnf_price, "avg_vnf_price"),
            (self.avg_price_ratio, "avg_price_ratio"),
            (self.vnf_capacity, "vnf_capacity"),
            (self.link_capacity, "link_capacity"),
            (self.avg_link_delay_us, "avg_link_delay_us"),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(NetError::InvalidParameter(name));
            }
        }
        Ok(())
    }

    /// Mean link price implied by the configuration.
    pub fn avg_link_price(&self) -> f64 {
        self.avg_price_ratio * self.avg_vnf_price
    }
}

/// Draws a price uniformly from `avg·(1 ± fluctuation)`.
fn fluctuated_price<R: Rng + ?Sized>(rng: &mut R, avg: f64, fluctuation: f64) -> f64 {
    if fluctuation == 0.0 || avg == 0.0 {
        return avg;
    }
    let lo = avg * (1.0 - fluctuation);
    let hi = avg * (1.0 + fluctuation);
    rng.gen_range(lo..=hi)
}

/// Generates a random priced network per the paper's procedure.
pub fn generate<R: Rng + ?Sized>(config: &NetGenConfig, rng: &mut R) -> NetResult<Network> {
    config.validate()?;
    let n = config.nodes;

    // Step 2a: random spanning tree over a random node order.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut edge_set: HashSet<(u32, u32)> = HashSet::new();
    for i in 1..n {
        let a = order[i];
        let b = order[rng.gen_range(0..i)];
        let key = (a.min(b), a.max(b));
        edges.push(key);
        edge_set.insert(key);
    }

    // Step 2b: extra random edges up to the target edge count
    // |E| = round(n · avg_degree / 2), clamped to the complete graph.
    let max_edges = n * n.saturating_sub(1) / 2;
    let target = ((n as f64 * config.avg_degree / 2.0).round() as usize)
        .clamp(edges.len().min(max_edges), max_edges);
    let mut stall = 0usize;
    while edges.len() < target {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if edge_set.insert(key) {
            edges.push(key);
            stall = 0;
        } else {
            stall += 1;
            if stall > 64 * n.max(16) {
                // Dense regime: fall back to a systematic scan over the
                // remaining non-edges to finish deterministically.
                let mut remaining: Vec<(u32, u32)> = Vec::new();
                for a in 0..n as u32 {
                    for b in (a + 1)..n as u32 {
                        if !edge_set.contains(&(a, b)) {
                            remaining.push((a, b));
                        }
                    }
                }
                remaining.shuffle(rng);
                for key in remaining.into_iter().take(target - edges.len()) {
                    edge_set.insert(key);
                    edges.push(key);
                }
                break;
            }
        }
    }

    // Assemble the network.
    let mut net = Network::new();
    net.add_nodes(n);

    // Step 3: VNF deployment with price fluctuation.
    for kind in 0..config.vnf_kinds {
        let vnf = VnfTypeId(kind as u16);
        let mut deployed_any = false;
        for node in 0..n as u32 {
            if rng.gen_bool(config.deploy_ratio) {
                let price =
                    fluctuated_price(rng, config.avg_vnf_price, config.vnf_price_fluctuation);
                net.deploy_vnf(NodeId(node), vnf, price, config.vnf_capacity)?;
                deployed_any = true;
            }
        }
        if !deployed_any && config.ensure_full_coverage && config.deploy_ratio > 0.0 {
            let node = NodeId(rng.gen_range(0..n as u32));
            let price = fluctuated_price(rng, config.avg_vnf_price, config.vnf_price_fluctuation);
            net.deploy_vnf(node, vnf, price, config.vnf_capacity)?;
        }
    }

    // Step 4: link prices from the average price ratio.
    let avg_link = config.avg_link_price();
    for (a, b) in edges {
        let price = fluctuated_price(rng, avg_link, config.link_price_fluctuation);
        net.add_link(NodeId(a), NodeId(b), price, config.link_capacity)?;
    }

    // Step 5: link propagation delays, drawn in a dedicated pass *after*
    // every topology/price draw — pre-delay seeds keep generating
    // bit-identical networks apart from the new delay attribute.
    for l in 0..net.link_count() as u32 {
        let delay = fluctuated_price(rng, config.avg_link_delay_us, config.link_delay_fluctuation);
        net.set_link_delay(crate::ids::LinkId(l), delay)?;
    }

    debug_assert!(net.is_connected());
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(nodes: usize) -> NetGenConfig {
        NetGenConfig {
            nodes,
            avg_degree: 4.0,
            vnf_kinds: 5,
            deploy_ratio: 0.5,
            ..NetGenConfig::default()
        }
    }

    #[test]
    fn generates_connected_graph_of_right_size() {
        let mut rng = StdRng::seed_from_u64(7);
        let net = generate(&cfg(100), &mut rng).unwrap();
        assert_eq!(net.node_count(), 100);
        assert!(net.is_connected());
        // |E| = 100·4/2 = 200
        assert_eq!(net.link_count(), 200);
        assert!((net.avg_degree() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn determinism_under_seed() {
        let a = generate(&cfg(60), &mut StdRng::seed_from_u64(9)).unwrap();
        let b = generate(&cfg(60), &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a.link_count(), b.link_count());
        for l in a.link_ids() {
            assert_eq!(a.link(l).a, b.link(l).a);
            assert_eq!(a.link(l).b, b.link(l).b);
            assert_eq!(a.link(l).price, b.link(l).price);
            assert_eq!(a.link(l).delay_us, b.link(l).delay_us);
        }
        for v in a.node_ids() {
            assert_eq!(a.node(v).instances(), b.node(v).instances());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&cfg(60), &mut StdRng::seed_from_u64(1)).unwrap();
        let b = generate(&cfg(60), &mut StdRng::seed_from_u64(2)).unwrap();
        let same_links = a
            .link_ids()
            .filter(|&l| a.link(l).a == b.link(l).a && a.link(l).b == b.link(l).b)
            .count();
        assert!(same_links < a.link_count());
    }

    #[test]
    fn deploy_ratio_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = generate(&cfg(400), &mut rng).unwrap();
        let total: usize = net.node_ids().map(|v| net.node(v).instances().len()).sum();
        let expected = 400.0 * 5.0 * 0.5;
        let ratio = total as f64 / expected;
        assert!((0.9..1.1).contains(&ratio), "deployment ratio off: {ratio}");
    }

    #[test]
    fn price_fluctuation_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut c = cfg(200);
        c.vnf_price_fluctuation = 0.3;
        c.link_price_fluctuation = 0.3;
        let net = generate(&c, &mut rng).unwrap();
        for v in net.node_ids() {
            for inst in net.node(v).instances() {
                assert!(inst.price >= 0.7 - 1e-12 && inst.price <= 1.3 + 1e-12);
            }
        }
        let avg_link = c.avg_link_price();
        for l in net.link_ids() {
            let p = net.link(l).price;
            assert!(p >= avg_link * 0.7 - 1e-12 && p <= avg_link * 1.3 + 1e-12);
        }
    }

    #[test]
    fn link_delays_drawn_within_fluctuation_bounds() {
        let mut c = cfg(100);
        c.avg_link_delay_us = 20.0;
        c.link_delay_fluctuation = 0.25;
        let net = generate(&c, &mut StdRng::seed_from_u64(12)).unwrap();
        let mut sum = 0.0;
        for l in net.link_ids() {
            let d = net.link(l).delay_us;
            assert!((15.0 - 1e-12..=25.0 + 1e-12).contains(&d), "delay off: {d}");
            sum += d;
        }
        let avg = sum / net.link_count() as f64;
        assert!((avg - 20.0).abs() < 2.0, "mean delay off: {avg}");
        // Invalid delay parameters are rejected.
        let mut bad = cfg(10);
        bad.link_delay_fluctuation = 1.5;
        assert!(generate(&bad, &mut StdRng::seed_from_u64(0)).is_err());
        let mut bad = cfg(10);
        bad.avg_link_delay_us = f64::NAN;
        assert!(generate(&bad, &mut StdRng::seed_from_u64(0)).is_err());
    }

    #[test]
    fn average_price_ratio_approximately_holds() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = generate(&cfg(300), &mut rng).unwrap();
        let s = net.stats();
        let ratio = s.avg_link_price / s.avg_vnf_price;
        assert!((ratio - 0.2).abs() < 0.03, "price ratio off: {ratio}");
    }

    #[test]
    fn full_coverage_guarantee() {
        let mut c = cfg(10);
        c.deploy_ratio = 0.05; // likely to miss kinds on 10 nodes
        for seed in 0..20 {
            let net = generate(&c, &mut StdRng::seed_from_u64(seed)).unwrap();
            for kind in 0..c.vnf_kinds {
                assert!(
                    !net.hosts_of(VnfTypeId(kind as u16)).is_empty(),
                    "kind {kind} missing under seed {seed}"
                );
            }
        }
    }

    #[test]
    fn dense_target_clamps_to_complete_graph() {
        let mut c = cfg(8);
        c.avg_degree = 50.0; // impossible; must clamp to K8 = 28 edges
        let net = generate(&c, &mut StdRng::seed_from_u64(6)).unwrap();
        assert_eq!(net.link_count(), 28);
    }

    #[test]
    fn single_node_network() {
        let mut c = cfg(1);
        c.avg_degree = 0.0;
        let net = generate(&c, &mut StdRng::seed_from_u64(8)).unwrap();
        assert_eq!(net.node_count(), 1);
        assert_eq!(net.link_count(), 0);
        assert!(net.is_connected());
    }

    #[test]
    fn rejects_invalid_config() {
        let mut c = cfg(10);
        c.deploy_ratio = 1.5;
        assert!(generate(&c, &mut StdRng::seed_from_u64(0)).is_err());
        let mut c = cfg(0);
        c.nodes = 0;
        assert!(generate(&c, &mut StdRng::seed_from_u64(0)).is_err());
        let mut c = cfg(10);
        c.avg_vnf_price = f64::NAN;
        assert!(generate(&c, &mut StdRng::seed_from_u64(0)).is_err());
    }

    #[test]
    fn tree_only_when_degree_below_two() {
        // avg_degree < 2(n-1)/n: the spanning tree may already exceed the
        // target; generator must keep at least the tree (connectivity).
        let mut c = cfg(50);
        c.avg_degree = 1.0;
        let net = generate(&c, &mut StdRng::seed_from_u64(11)).unwrap();
        assert_eq!(net.link_count(), 49); // spanning tree preserved
        assert!(net.is_connected());
    }
}
