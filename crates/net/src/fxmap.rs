//! Vendored seeded FxHash-style hasher for hot-path maps.
//!
//! The workspace builds fully offline, so instead of pulling in the
//! `rustc-hash` crate this module vendors the ~40-line multiply-xor
//! hasher the rust compiler itself uses for its internal tables. It is
//! dramatically cheaper than std's SipHash for the small integer keys
//! the [`PathOracle`](crate::PathOracle) and
//! [`CommitLedger`](crate::CommitLedger) hash on every solve, and —
//! unlike `RandomState` — it is *deterministically seeded*, so map
//! iteration order (where we rely on it we still sort) and hash values
//! are identical across runs and processes.
//!
//! Not DoS-resistant: only use for trusted, internally generated keys
//! (node ids, lease ids, capacity classes), never for attacker-chosen
//! input.

use std::hash::{BuildHasher, Hasher};

/// Multiplier from the FxHash scheme (derived from the golden ratio).
const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Fixed deterministic seed mixed into every hasher instance.
const FIXED_STATE: u64 = 0x9e37_79b9_7f4a_7c15;

/// A fast, deterministic, non-cryptographic hasher.
#[derive(Debug, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl Default for FxHasher {
    fn default() -> Self {
        FxHasher { hash: FIXED_STATE }
    }
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// [`BuildHasher`] producing [`FxHasher`] instances with a fixed seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// `HashMap` keyed with the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the deterministic [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        // Same value hashes identically regardless of when/where the
        // hasher was built — this is what makes replay bit-stable.
        for k in [0u64, 1, 42, u64::MAX, 0xdead_beef] {
            assert_eq!(hash_of(&k), hash_of(&k));
        }
        let pair = (7u32, 3usize);
        assert_eq!(hash_of(&pair), hash_of(&pair));
    }

    #[test]
    fn distinct_keys_spread() {
        // Not a cryptographic property, but the oracle keys
        // (node, class) must not trivially collide in small domains.
        let mut seen = std::collections::HashSet::new();
        for node in 0u32..200 {
            for class in 0usize..8 {
                seen.insert(hash_of(&(node, class)));
            }
        }
        assert_eq!(seen.len(), 200 * 8, "collision in small key domain");
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        m.insert(1, "c");
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&1), Some(&"c"));
        assert!(m.remove(&2).is_some());
        assert!(m.is_empty() || m.len() == 1);
    }

    #[test]
    fn insertion_heavy_determinism() {
        // Build two maps with the same inserts in different orders and
        // confirm the *sorted* view matches — the pattern production
        // code uses whenever order matters.
        let mut a: FxHashMap<u64, u64> = FxHashMap::default();
        let mut b: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            a.insert(i, i * 3);
        }
        for i in (0..1000u64).rev() {
            b.insert(i, i * 3);
        }
        let mut ka: Vec<_> = a.iter().map(|(k, v)| (*k, *v)).collect();
        let mut kb: Vec<_> = b.iter().map(|(k, v)| (*k, *v)).collect();
        ka.sort_unstable();
        kb.sort_unstable();
        assert_eq!(ka, kb);
    }
}
