//! Real-paths: concrete link sequences implementing the DAG-SFC meta-paths.
//!
//! The paper denotes a `β`-length real-path between `v_{x_0}` and `v_{x_β}`
//! as the link sequence `{e_{x0,x1}, …, e_{x(β-1),xβ}}`. A real-path of
//! length zero (both endpoints on the same node) is legal and free — it
//! arises whenever two consecutive VNFs are colocated.

use crate::error::{NetError, NetResult};
use crate::graph::Network;
use crate::ids::{LinkId, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A concrete path through the network: `nodes.len() == links.len() + 1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    nodes: Vec<NodeId>,
    links: Vec<LinkId>,
}

impl Path {
    /// A zero-length path sitting on a single node.
    pub fn trivial(node: NodeId) -> Self {
        Path {
            nodes: vec![node],
            links: Vec::new(),
        }
    }

    /// Builds a path from node and link sequences, verifying contiguity
    /// against the network.
    pub fn new(net: &Network, nodes: Vec<NodeId>, links: Vec<LinkId>) -> NetResult<Self> {
        if nodes.is_empty() || nodes.len() != links.len() + 1 {
            return Err(NetError::InvalidParameter("path shape"));
        }
        for (i, &l) in links.iter().enumerate() {
            let link = net.try_link(l)?;
            let (from, to) = (nodes[i], nodes[i + 1]);
            let connects = (link.a == from && link.b == to) || (link.a == to && link.b == from);
            if !connects {
                return Err(NetError::InvalidParameter(
                    "path link does not connect its nodes",
                ));
            }
        }
        Ok(Path { nodes, links })
    }

    /// Builds a path from a node sequence, looking up the connecting links.
    pub fn from_nodes(net: &Network, nodes: Vec<NodeId>) -> NetResult<Self> {
        if nodes.is_empty() {
            return Err(NetError::InvalidParameter("empty path"));
        }
        let mut links = Vec::with_capacity(nodes.len() - 1);
        for w in nodes.windows(2) {
            let l = net.link_between(w[0], w[1]).ok_or(NetError::NoPath {
                from: w[0],
                to: w[1],
            })?;
            links.push(l);
        }
        Ok(Path { nodes, links })
    }

    /// Assembles a path from parts whose contiguity the caller guarantees
    /// (e.g. a Dijkstra predecessor chain).
    ///
    /// Debug builds assert the shape invariant.
    pub(crate) fn from_parts_unchecked(nodes: Vec<NodeId>, links: Vec<LinkId>) -> Self {
        debug_assert!(!nodes.is_empty() && nodes.len() == links.len() + 1);
        Path { nodes, links }
    }

    /// Source node of the path.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Target node of the path.
    #[inline]
    pub fn target(&self) -> NodeId {
        // lint:allow(expect) — invariant: path has at least one node
        *self.nodes.last().expect("path has at least one node")
    }

    /// Number of links (the paper's `β`).
    #[inline]
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the path has zero links (endpoints colocated).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The node sequence, source first.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The link sequence.
    #[inline]
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Sum of link prices along the path (cost per unit rate).
    pub fn price(&self, net: &Network) -> f64 {
        self.links.iter().map(|&l| net.link(l).price).sum()
    }

    /// Sum of link propagation delays along the path, in microseconds.
    /// Trivial paths traverse no link and therefore cost zero delay.
    pub fn delay_us(&self, net: &Network) -> f64 {
        self.links.iter().map(|&l| net.link(l).delay_us).sum()
    }

    /// Whether the path visits any node twice.
    pub fn has_node_cycle(&self) -> bool {
        let mut sorted = self.nodes.clone();
        sorted.sort_unstable();
        sorted.windows(2).any(|w| w[0] == w[1])
    }

    /// Reverses the path in place (valid because links are bi-directional).
    pub fn reverse(&mut self) {
        self.nodes.reverse();
        self.links.reverse();
    }

    /// Returns the reversed path.
    pub fn reversed(mut self) -> Self {
        self.reverse();
        self
    }

    /// Concatenates `other` onto the end of this path.
    ///
    /// `other` must start where `self` ends.
    pub fn join(&self, other: &Path) -> NetResult<Path> {
        if self.target() != other.source() {
            return Err(NetError::InvalidParameter(
                "joined paths do not share an endpoint",
            ));
        }
        let mut nodes = self.nodes.clone();
        nodes.extend_from_slice(&other.nodes[1..]);
        let mut links = self.links.clone();
        links.extend_from_slice(&other.links);
        Ok(Path { nodes, links })
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, "-")?;
            }
            write!(f, "{n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Network {
        let mut g = Network::new();
        g.add_nodes(n);
        for i in 0..n - 1 {
            g.add_link_with_delay(
                NodeId(i as u32),
                NodeId(i as u32 + 1),
                (i + 1) as f64,
                10.0,
                10.0 * (i + 1) as f64,
            )
            .unwrap();
        }
        g
    }

    #[test]
    fn trivial_path() {
        let p = Path::trivial(NodeId(4));
        assert_eq!(p.source(), NodeId(4));
        assert_eq!(p.target(), NodeId(4));
        assert_eq!(p.len(), 0);
        assert!(p.is_empty());
        assert!(!p.has_node_cycle());
    }

    #[test]
    fn from_nodes_builds_links() {
        let g = line(4);
        let p = Path::from_nodes(&g, vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.links(), &[LinkId(0), LinkId(1)]);
        assert!((p.price(&g) - 3.0).abs() < 1e-12);
        assert!((p.delay_us(&g) - 30.0).abs() < 1e-12);
        assert_eq!(p.to_string(), "v0-v1-v2");
    }

    #[test]
    fn trivial_path_has_zero_delay() {
        let g = line(3);
        assert_eq!(Path::trivial(NodeId(1)).delay_us(&g), 0.0);
    }

    #[test]
    fn from_nodes_rejects_gaps() {
        let g = line(4);
        assert!(Path::from_nodes(&g, vec![NodeId(0), NodeId(2)]).is_err());
        assert!(Path::from_nodes(&g, vec![]).is_err());
    }

    #[test]
    fn new_validates_contiguity() {
        let g = line(3);
        assert!(Path::new(&g, vec![NodeId(0), NodeId(1)], vec![LinkId(0)]).is_ok());
        // wrong link for the hop
        assert!(Path::new(&g, vec![NodeId(0), NodeId(1)], vec![LinkId(1)]).is_err());
        // shape mismatch
        assert!(Path::new(&g, vec![NodeId(0)], vec![LinkId(0)]).is_err());
    }

    #[test]
    fn reverse_and_join() {
        let g = line(4);
        let p = Path::from_nodes(&g, vec![NodeId(0), NodeId(1)]).unwrap();
        let q = Path::from_nodes(&g, vec![NodeId(1), NodeId(2), NodeId(3)]).unwrap();
        let j = p.join(&q).unwrap();
        assert_eq!(j.nodes(), &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(j.len(), 3);
        let r = j.clone().reversed();
        assert_eq!(r.source(), NodeId(3));
        assert_eq!(r.target(), NodeId(0));
        assert_eq!(r.len(), 3);
        // join mismatch
        assert!(q.join(&p).is_err());
    }

    #[test]
    fn cycle_detection() {
        let mut g = line(3);
        g.add_link(NodeId(0), NodeId(2), 1.0, 10.0).unwrap();
        let cyc = Path::from_nodes(&g, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(0)]).unwrap();
        assert!(cyc.has_node_cycle());
    }
}
