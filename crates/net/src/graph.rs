//! The priced cloud network model of the DAG-SFC paper (§3.2).
//!
//! The target network is a graph `G = (V, E)` where every bi-directional
//! link carries a *link price* per unit of traffic rate and a *bandwidth
//! capacity*, and every node hosts a set of VNF *instances*, each with a
//! *rental price* per unit of traffic rate and a *traffic processing
//! capability*.
//!
//! The structure is immutable once built (embedding algorithms never change
//! topology); the mutable residual-capacity view lives in
//! [`crate::state::NetworkState`].

use crate::error::{NetError, NetResult};
use crate::ids::{LinkId, NodeId, VnfTypeId};
use crate::snapshot::{NetworkSnapshot, SnapshotCell};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A deployed VNF instance `f_v(i)` on some node `v`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VnfInstance {
    /// The VNF category `f(i)` this instance belongs to.
    pub vnf: VnfTypeId,
    /// Rental price `c_{v,f(i)}` per unit of traffic delivery rate.
    pub price: f64,
    /// Traffic processing capability `r_{v,f(i)}` (units of rate).
    pub capacity: f64,
}

/// A network node hosting zero or more VNF instances.
///
/// At most one instance per VNF category is hosted per node (matching the
/// paper's `f_v(i)` notation, which is unique per `(v, i)`); instances are
/// kept sorted by [`VnfTypeId`] for binary-search lookup.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Node {
    instances: Vec<VnfInstance>,
}

impl Node {
    /// All VNF instances on this node, sorted by type id (the paper's `F_v`).
    #[inline]
    pub fn instances(&self) -> &[VnfInstance] {
        &self.instances
    }

    /// Looks up the instance of VNF type `vnf` on this node, if deployed.
    pub fn instance(&self, vnf: VnfTypeId) -> Option<&VnfInstance> {
        self.instances
            .binary_search_by_key(&vnf, |i| i.vnf)
            .ok()
            .map(|idx| &self.instances[idx])
    }

    /// Whether VNF type `vnf` is deployed on this node.
    #[inline]
    pub fn hosts(&self, vnf: VnfTypeId) -> bool {
        self.instance(vnf).is_some()
    }
}

/// A bi-directional network link `e = (a, b)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint (always the smaller node id).
    pub a: NodeId,
    /// The other endpoint (always the larger node id).
    pub b: NodeId,
    /// Link price `c_e` per unit of traffic delivery rate.
    pub price: f64,
    /// Bandwidth capacity `r_e` (units of rate, shared by both directions).
    pub capacity: f64,
    /// Propagation/forwarding delay `d_e` in microseconds (both
    /// directions). Zero on links built without an explicit delay.
    pub delay_us: f64,
}

impl Link {
    /// The endpoint opposite to `n`.
    ///
    /// # Panics
    /// Panics if `n` is not an endpoint of this link.
    #[inline]
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else {
            debug_assert_eq!(n, self.b, "node is not an endpoint of this link");
            self.a
        }
    }

    /// Whether `n` is an endpoint of this link.
    #[inline]
    pub fn touches(&self, n: NodeId) -> bool {
        n == self.a || n == self.b
    }
}

/// The immutable target network `G = (V, E)` with prices and capacities.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Network {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// `adj[v]` lists `(neighbor, link)` pairs, sorted by neighbor id.
    adj: Vec<Vec<(NodeId, LinkId)>>,
    /// `hosts[i]` lists the nodes hosting VNF type `i` (the paper's `V_i`),
    /// sorted by node id. Indexed by `VnfTypeId`.
    hosts: Vec<Vec<NodeId>>,
    /// Lazily built CSR snapshot, dropped on every topology mutation.
    /// Serializes as null (rebuilt on demand) and resets on `Clone`.
    csr: SnapshotCell,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links `|E|`.
    #[inline]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterator over all link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len() as u32).map(LinkId)
    }

    /// Adds a node with no VNF instances, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::default());
        self.adj.push(Vec::new());
        self.csr.invalidate();
        id
    }

    /// Adds `count` empty nodes, returning the id of the first.
    pub fn add_nodes(&mut self, count: usize) -> NodeId {
        let first = NodeId(self.nodes.len() as u32);
        for _ in 0..count {
            self.add_node();
        }
        first
    }

    /// Deploys a VNF instance on `node`.
    ///
    /// Fails if the node does not exist, a `vnf` instance already exists on
    /// the node, or price/capacity are not finite non-negative numbers.
    pub fn deploy_vnf(
        &mut self,
        node: NodeId,
        vnf: VnfTypeId,
        price: f64,
        capacity: f64,
    ) -> NetResult<()> {
        if node.index() >= self.nodes.len() {
            return Err(NetError::UnknownNode(node));
        }
        if !(price.is_finite() && price >= 0.0) {
            return Err(NetError::InvalidParameter("VNF price"));
        }
        if !(capacity.is_finite() && capacity >= 0.0) {
            return Err(NetError::InvalidParameter("VNF capacity"));
        }
        let instances = &mut self.nodes[node.index()].instances;
        match instances.binary_search_by_key(&vnf, |i| i.vnf) {
            Ok(_) => Err(NetError::InvalidParameter("VNF already deployed on node")),
            Err(pos) => {
                instances.insert(
                    pos,
                    VnfInstance {
                        vnf,
                        price,
                        capacity,
                    },
                );
                let hosts = &mut self.ensure_hosts(vnf)[vnf.index()];
                if let Err(hpos) = hosts.binary_search(&node) {
                    hosts.insert(hpos, node);
                }
                // The CSR snapshot holds no VNF data today, but
                // invalidating here keeps the cache safe if it ever does.
                self.csr.invalidate();
                Ok(())
            }
        }
    }

    fn ensure_hosts(&mut self, vnf: VnfTypeId) -> &mut Vec<Vec<NodeId>> {
        if self.hosts.len() <= vnf.index() {
            self.hosts.resize_with(vnf.index() + 1, Vec::new);
        }
        &mut self.hosts
    }

    /// Adds a bi-directional link between `a` and `b` with zero delay.
    ///
    /// Fails on self-loops, duplicate links, unknown endpoints, or invalid
    /// price/capacity values.
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        price: f64,
        capacity: f64,
    ) -> NetResult<LinkId> {
        self.add_link_with_delay(a, b, price, capacity, 0.0)
    }

    /// Adds a bi-directional link between `a` and `b` carrying an
    /// explicit propagation delay (microseconds).
    ///
    /// Fails on self-loops, duplicate links, unknown endpoints, or invalid
    /// price/capacity/delay values.
    pub fn add_link_with_delay(
        &mut self,
        a: NodeId,
        b: NodeId,
        price: f64,
        capacity: f64,
        delay_us: f64,
    ) -> NetResult<LinkId> {
        if a == b {
            return Err(NetError::SelfLoop(a));
        }
        if a.index() >= self.nodes.len() {
            return Err(NetError::UnknownNode(a));
        }
        if b.index() >= self.nodes.len() {
            return Err(NetError::UnknownNode(b));
        }
        if !(price.is_finite() && price >= 0.0) {
            return Err(NetError::InvalidParameter("link price"));
        }
        if !(capacity.is_finite() && capacity >= 0.0) {
            return Err(NetError::InvalidParameter("link capacity"));
        }
        if !(delay_us.is_finite() && delay_us >= 0.0) {
            return Err(NetError::InvalidParameter("link delay"));
        }
        if self.link_between(a, b).is_some() {
            return Err(NetError::DuplicateLink(a, b));
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            a: lo,
            b: hi,
            price,
            capacity,
            delay_us,
        });
        let pos_a = self.adj[a.index()].partition_point(|&(n, _)| n < b);
        self.adj[a.index()].insert(pos_a, (b, id));
        let pos_b = self.adj[b.index()].partition_point(|&(n, _)| n < a);
        self.adj[b.index()].insert(pos_b, (a, id));
        self.csr.invalidate();
        Ok(id)
    }

    /// Sets the propagation delay of an existing link (microseconds).
    ///
    /// Fails on unknown links or non-finite/negative delays.
    pub fn set_link_delay(&mut self, link: LinkId, delay_us: f64) -> NetResult<()> {
        if !(delay_us.is_finite() && delay_us >= 0.0) {
            return Err(NetError::InvalidParameter("link delay"));
        }
        let l = self
            .links
            .get_mut(link.index())
            .ok_or(NetError::UnknownLink(link))?;
        l.delay_us = delay_us;
        self.csr.invalidate();
        Ok(())
    }

    /// Per-link delays in microseconds, indexed by [`LinkId`] — the
    /// lookup table the core delay model consumes.
    pub fn link_delays_us(&self) -> Vec<f64> {
        self.links.iter().map(|l| l.delay_us).collect()
    }

    /// The cached CSR snapshot of this network, built on first use.
    ///
    /// The snapshot is invalidated by every topology mutation
    /// ([`add_node`](Self::add_node), [`add_link`](Self::add_link),
    /// [`deploy_vnf`](Self::deploy_vnf)) and rebuilt lazily, so hot
    /// routing loops always see arc data consistent with the graph.
    #[inline]
    pub fn snapshot(&self) -> &Arc<NetworkSnapshot> {
        self.csr.get_or_build(self)
    }

    /// The node data for `id`.
    ///
    /// # Panics
    /// Panics if the node does not exist.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The link data for `id`.
    ///
    /// # Panics
    /// Panics if the link does not exist.
    #[inline]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Checked node access.
    pub fn try_node(&self, id: NodeId) -> NetResult<&Node> {
        self.nodes.get(id.index()).ok_or(NetError::UnknownNode(id))
    }

    /// Checked link access.
    pub fn try_link(&self, id: LinkId) -> NetResult<&Link> {
        self.links.get(id.index()).ok_or(NetError::UnknownLink(id))
    }

    /// `(neighbor, link)` pairs adjacent to `n`, sorted by neighbor id.
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        &self.adj[n.index()]
    }

    /// Degree of node `n`.
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n.index()].len()
    }

    /// Average node degree (the paper's *network connectivity*).
    pub fn avg_degree(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        2.0 * self.links.len() as f64 / self.nodes.len() as f64
    }

    /// The link connecting `a` and `b` directly, if any.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        let adj = &self.adj[a.index()];
        adj.binary_search_by_key(&b, |&(n, _)| n)
            .ok()
            .map(|i| adj[i].1)
    }

    /// The nodes hosting VNF type `vnf` (the paper's `V_i`), sorted.
    pub fn hosts_of(&self, vnf: VnfTypeId) -> &[NodeId] {
        self.hosts
            .get(vnf.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether `node` hosts VNF type `vnf`.
    #[inline]
    pub fn hosts(&self, node: NodeId, vnf: VnfTypeId) -> bool {
        self.nodes[node.index()].hosts(vnf)
    }

    /// The instance of `vnf` on `node`, if deployed.
    #[inline]
    pub fn instance(&self, node: NodeId, vnf: VnfTypeId) -> Option<&VnfInstance> {
        self.nodes[node.index()].instance(vnf)
    }

    /// Price of renting one rate unit of `vnf` on `node`.
    pub fn vnf_price(&self, node: NodeId, vnf: VnfTypeId) -> NetResult<f64> {
        self.instance(node, vnf)
            .map(|i| i.price)
            .ok_or(NetError::VnfNotDeployed { node, vnf })
    }

    /// Whether the network is connected (empty networks count as connected).
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(n) = stack.pop() {
            for &(m, _) in self.neighbors(n) {
                if !seen[m.index()] {
                    seen[m.index()] = true;
                    count += 1;
                    stack.push(m);
                }
            }
        }
        count == self.nodes.len()
    }

    /// Returns a structurally identical network with every capacity
    /// remapped: `vnf_cap(node, kind, old)` and `link_cap(link, old)`
    /// decide the new values. Prices and topology are preserved.
    ///
    /// This is the bridge from a mutable [`crate::NetworkState`] back to
    /// an immutable `Network` — online/multi-request simulations embed
    /// each arrival against the *residual* network produced this way.
    pub fn map_capacities(
        &self,
        mut vnf_cap: impl FnMut(NodeId, VnfTypeId, f64) -> f64,
        mut link_cap: impl FnMut(LinkId, f64) -> f64,
    ) -> Network {
        let mut out = self.clone();
        for (vi, node) in out.nodes.iter_mut().enumerate() {
            let v = NodeId(vi as u32);
            for inst in &mut node.instances {
                inst.capacity = vnf_cap(v, inst.vnf, inst.capacity).max(0.0);
            }
        }
        for (li, link) in out.links.iter_mut().enumerate() {
            link.capacity = link_cap(LinkId(li as u32), link.capacity).max(0.0);
        }
        out
    }

    /// Summary statistics used by reports and sanity tests.
    pub fn stats(&self) -> NetworkStats {
        let mut vnf_instances = 0usize;
        let mut vnf_price_sum = 0.0;
        for n in &self.nodes {
            vnf_instances += n.instances.len();
            vnf_price_sum += n.instances.iter().map(|i| i.price).sum::<f64>();
        }
        let link_price_sum: f64 = self.links.iter().map(|l| l.price).sum();
        let link_delay_sum: f64 = self.links.iter().map(|l| l.delay_us).sum();
        NetworkStats {
            nodes: self.nodes.len(),
            links: self.links.len(),
            avg_degree: self.avg_degree(),
            vnf_instances,
            avg_vnf_price: if vnf_instances == 0 {
                0.0
            } else {
                vnf_price_sum / vnf_instances as f64
            },
            avg_link_price: if self.links.is_empty() {
                0.0
            } else {
                link_price_sum / self.links.len() as f64
            },
            avg_link_delay_us: if self.links.is_empty() {
                0.0
            } else {
                link_delay_sum / self.links.len() as f64
            },
        }
    }
}

/// Aggregate statistics of a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of links.
    pub links: usize,
    /// Average node degree.
    pub avg_degree: f64,
    /// Total number of deployed VNF instances.
    pub vnf_instances: usize,
    /// Mean VNF rental price.
    pub avg_vnf_price: f64,
    /// Mean link price.
    pub avg_link_price: f64,
    /// Mean link propagation delay in microseconds.
    pub avg_link_delay_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Network {
        let mut g = Network::new();
        g.add_nodes(3);
        g.add_link(NodeId(0), NodeId(1), 1.0, 10.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 2.0, 10.0).unwrap();
        g
    }

    #[test]
    fn build_and_query() {
        let g = tiny();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.link_count(), 2);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert_eq!(g.link_between(NodeId(0), NodeId(1)), Some(LinkId(0)));
        assert_eq!(g.link_between(NodeId(1), NodeId(0)), Some(LinkId(0)));
        assert_eq!(g.link_between(NodeId(0), NodeId(2)), None);
        assert!((g.avg_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn link_endpoints_normalized() {
        let mut g = Network::new();
        g.add_nodes(2);
        let l = g.add_link(NodeId(1), NodeId(0), 1.0, 1.0).unwrap();
        let link = g.link(l);
        assert_eq!(link.a, NodeId(0));
        assert_eq!(link.b, NodeId(1));
        assert_eq!(link.other(NodeId(0)), NodeId(1));
        assert_eq!(link.other(NodeId(1)), NodeId(0));
        assert!(link.touches(NodeId(0)) && link.touches(NodeId(1)));
        assert!(!link.touches(NodeId(7)));
    }

    #[test]
    fn rejects_self_loop_and_duplicates() {
        let mut g = tiny();
        assert_eq!(
            g.add_link(NodeId(0), NodeId(0), 1.0, 1.0),
            Err(NetError::SelfLoop(NodeId(0)))
        );
        assert_eq!(
            g.add_link(NodeId(1), NodeId(0), 1.0, 1.0),
            Err(NetError::DuplicateLink(NodeId(1), NodeId(0)))
        );
        assert!(matches!(
            g.add_link(NodeId(0), NodeId(9), 1.0, 1.0),
            Err(NetError::UnknownNode(_))
        ));
    }

    #[test]
    fn rejects_invalid_prices() {
        let mut g = tiny();
        assert!(g.add_link(NodeId(0), NodeId(2), -1.0, 1.0).is_err());
        assert!(g.add_link(NodeId(0), NodeId(2), f64::NAN, 1.0).is_err());
        assert!(g.deploy_vnf(NodeId(0), VnfTypeId(0), -0.5, 1.0).is_err());
        assert!(g
            .deploy_vnf(NodeId(0), VnfTypeId(0), 1.0, f64::INFINITY)
            .is_err());
    }

    #[test]
    fn vnf_deployment_and_hosts_index() {
        let mut g = tiny();
        g.deploy_vnf(NodeId(2), VnfTypeId(1), 3.0, 5.0).unwrap();
        g.deploy_vnf(NodeId(0), VnfTypeId(1), 2.0, 5.0).unwrap();
        g.deploy_vnf(NodeId(0), VnfTypeId(0), 1.0, 5.0).unwrap();
        assert_eq!(g.hosts_of(VnfTypeId(1)), &[NodeId(0), NodeId(2)]);
        assert_eq!(g.hosts_of(VnfTypeId(0)), &[NodeId(0)]);
        assert_eq!(g.hosts_of(VnfTypeId(9)), &[] as &[NodeId]);
        assert!(g.hosts(NodeId(0), VnfTypeId(1)));
        assert!(!g.hosts(NodeId(1), VnfTypeId(1)));
        assert_eq!(g.vnf_price(NodeId(0), VnfTypeId(1)).unwrap(), 2.0);
        assert!(g.vnf_price(NodeId(1), VnfTypeId(1)).is_err());
        // instances sorted by type id
        let types: Vec<_> = g
            .node(NodeId(0))
            .instances()
            .iter()
            .map(|i| i.vnf)
            .collect();
        assert_eq!(types, vec![VnfTypeId(0), VnfTypeId(1)]);
    }

    #[test]
    fn duplicate_deployment_rejected() {
        let mut g = tiny();
        g.deploy_vnf(NodeId(0), VnfTypeId(0), 1.0, 5.0).unwrap();
        assert!(g.deploy_vnf(NodeId(0), VnfTypeId(0), 1.0, 5.0).is_err());
    }

    #[test]
    fn connectivity_check() {
        let g = tiny();
        assert!(g.is_connected());
        let mut g2 = Network::new();
        g2.add_nodes(2);
        assert!(!g2.is_connected());
        assert!(Network::new().is_connected());
    }

    #[test]
    fn stats_aggregation() {
        let mut g = tiny();
        g.deploy_vnf(NodeId(0), VnfTypeId(0), 2.0, 5.0).unwrap();
        g.deploy_vnf(NodeId(1), VnfTypeId(0), 4.0, 5.0).unwrap();
        let s = g.stats();
        assert_eq!(s.nodes, 3);
        assert_eq!(s.links, 2);
        assert_eq!(s.vnf_instances, 2);
        assert!((s.avg_vnf_price - 3.0).abs() < 1e-12);
        assert!((s.avg_link_price - 1.5).abs() < 1e-12);
    }

    #[test]
    fn link_delays_default_zero_and_are_settable() {
        let mut g = Network::new();
        g.add_nodes(3);
        let l0 = g.add_link(NodeId(0), NodeId(1), 1.0, 10.0).unwrap();
        let l1 = g
            .add_link_with_delay(NodeId(1), NodeId(2), 1.0, 10.0, 25.0)
            .unwrap();
        assert_eq!(g.link(l0).delay_us, 0.0);
        assert_eq!(g.link(l1).delay_us, 25.0);
        g.set_link_delay(l0, 7.5).unwrap();
        assert_eq!(g.link(l0).delay_us, 7.5);
        assert_eq!(g.link_delays_us(), vec![7.5, 25.0]);
        let s = g.stats();
        assert!((s.avg_link_delay_us - 16.25).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_delays() {
        let mut g = Network::new();
        g.add_nodes(2);
        assert!(g
            .add_link_with_delay(NodeId(0), NodeId(1), 1.0, 1.0, -1.0)
            .is_err());
        assert!(g
            .add_link_with_delay(NodeId(0), NodeId(1), 1.0, 1.0, f64::NAN)
            .is_err());
        let l = g
            .add_link_with_delay(NodeId(0), NodeId(1), 1.0, 1.0, 2.0)
            .unwrap();
        assert!(g.set_link_delay(l, f64::INFINITY).is_err());
        assert!(g.set_link_delay(LinkId(9), 1.0).is_err());
        assert_eq!(g.link(l).delay_us, 2.0);
    }

    #[test]
    fn neighbors_sorted() {
        let mut g = Network::new();
        g.add_nodes(4);
        g.add_link(NodeId(2), NodeId(3), 1.0, 1.0).unwrap();
        g.add_link(NodeId(2), NodeId(0), 1.0, 1.0).unwrap();
        g.add_link(NodeId(2), NodeId(1), 1.0, 1.0).unwrap();
        let ns: Vec<_> = g.neighbors(NodeId(2)).iter().map(|&(n, _)| n).collect();
        assert_eq!(ns, vec![NodeId(0), NodeId(1), NodeId(3)]);
    }
}
