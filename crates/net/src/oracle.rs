//! Shared path oracle: memoized single-source Dijkstra trees.
//!
//! Every solver in the workspace answers the same query shape over and
//! over — "cheapest path from `v` over links that fit a flow of rate
//! `R`" — and most of them ask it with the *static* capacity filter
//! (`capacity + CAP_EPS >= rate`). For a fixed network the admitted link
//! set depends only on which side of each distinct capacity value the
//! rate falls, so rates collapse into a small number of **capacity
//! classes** and one [`ShortestPathTree`] per `(source, class)` serves
//! every query of that class. The [`PathOracle`] caches exactly those
//! trees behind a `parking_lot` mutex, so one oracle instance can be
//! shared by all runs (and threads) of a simulation instance.
//!
//! Solvers that route on *residual* capacities (the RANV/MINV baselines
//! reserve bandwidth as they go) cannot share trees across concurrent
//! solves: each solve owns a private [`NetworkState`]. For those, an
//! [`OracleSession`] provides a per-solve cache with explicit
//! residual-capacity-aware invalidation — the caller invalidates after
//! every reservation that changed the residuals, and hit/miss traffic
//! still rolls up into the shared oracle's counters.
//!
//! [`NetworkState`]: crate::state::NetworkState

use crate::fault::FaultEvent;
use crate::fxmap::FxHashMap;
use crate::graph::Network;
use crate::ids::{LinkId, NodeId};
use crate::path::Path;
use crate::routing::csp::{larac_core, ConstrainedPath};
use crate::routing::{ArcWeight, LinkFilter, RoutingScratch, ShortestPathTree};
use crate::state::CAP_EPS;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default bound on cached trees (LRU-evicted beyond this).
const DEFAULT_CAPACITY: usize = 1024;

/// Counter snapshot of a [`PathOracle`] (see [`PathOracle::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OracleStats {
    /// Tree queries answered from the cache.
    pub hits: u64,
    /// Tree queries that had to run Dijkstra.
    pub misses: u64,
    /// Trees dropped by the LRU bound.
    pub evictions: u64,
    /// Explicit invalidations (global flushes and session flushes).
    pub invalidations: u64,
}

impl OracleStats {
    /// Fraction of queries served from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// LRU bookkeeping guarded by the oracle's mutex.
///
/// The [`RoutingScratch`] lives here because tree builds happen while
/// the mutex is held: every cache fill on every thread reuses one set
/// of search buffers, allocation-free in the steady state.
struct TreeCache {
    map: FxHashMap<(NodeId, usize), (Arc<ShortestPathTree>, u64)>,
    /// Weighted (delay / Lagrangian) trees for the LARAC bounded mode,
    /// keyed by `(source, capacity class, ArcWeight::cache_key())`.
    /// Flushed together with `map` on every invalidation.
    wmap: FxHashMap<(NodeId, usize, u64), (Arc<ShortestPathTree>, u64)>,
    tick: u64,
    scratch: RoutingScratch,
    /// Fault overlay: links taken out of service. Trees built while a
    /// resource is down exclude it, and flipping any flag flushes the
    /// cache (counted as an invalidation) — the fault-injection
    /// analogue of an epoch bump.
    down_links: Vec<bool>,
    /// Fault overlay: nodes taken out of service (incident links are
    /// excluded too).
    down_nodes: Vec<bool>,
}

/// Memoized single-source Dijkstra trees over the static-capacity link
/// filter, keyed by `(source, capacity class)`.
///
/// Thread-safe and intended to be shared (`&PathOracle` is `Send + Sync`):
/// the cache sits behind a [`parking_lot::Mutex`] and the counters are
/// atomics, so one oracle serves every run of a sim instance.
pub struct PathOracle<'n> {
    net: &'n Network,
    /// Sorted distinct link capacities: the class boundaries.
    classes: Vec<f64>,
    capacity: usize,
    cache: Mutex<TreeCache>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl<'n> PathOracle<'n> {
    /// An oracle over `net` with the default LRU bound.
    pub fn new(net: &'n Network) -> Self {
        Self::with_capacity(net, DEFAULT_CAPACITY)
    }

    /// An oracle over `net` keeping at most `capacity` trees.
    pub fn with_capacity(net: &'n Network, capacity: usize) -> Self {
        let mut classes: Vec<f64> = net.link_ids().map(|l| net.link(l).capacity).collect();
        classes.sort_by(|a, b| a.total_cmp(b));
        classes.dedup();
        PathOracle {
            net,
            classes,
            capacity: capacity.max(1),
            cache: Mutex::new(TreeCache {
                map: FxHashMap::default(),
                wmap: FxHashMap::default(),
                tick: 0,
                scratch: RoutingScratch::new(),
                down_links: vec![false; net.link_count()],
                down_nodes: vec![false; net.node_count()],
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// The underlying network.
    #[inline]
    pub fn network(&self) -> &'n Network {
        self.net
    }

    /// The capacity class of `rate`: the index of the smallest distinct
    /// link capacity that admits a flow of `rate`. All rates of one class
    /// admit the identical link set, so their trees are interchangeable.
    pub fn rate_class(&self, rate: f64) -> usize {
        self.classes.partition_point(|&c| c + CAP_EPS < rate)
    }

    /// The shortest-path tree rooted at `source` over links admitting
    /// `rate`, from the cache when possible.
    pub fn tree(&self, source: NodeId, rate: f64) -> Arc<ShortestPathTree> {
        self.tree_tracked(source, rate).0
    }

    /// Like [`Self::tree`], also reporting whether the query was a cache
    /// hit — callers use this for per-solve hit/miss accounting.
    pub fn tree_tracked(&self, source: NodeId, rate: f64) -> (Arc<ShortestPathTree>, bool) {
        let class = self.rate_class(rate);
        let mut cache = self.cache.lock();
        cache.tick += 1;
        let tick = cache.tick;
        if let Some((tree, last_used)) = cache.map.get_mut(&(source, class)) {
            *last_used = tick;
            let tree = Arc::clone(tree);
            drop(cache);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (tree, true);
        }
        // Build with the class's canonical threshold so every rate of the
        // class produces the bit-identical tree. Destructured so the
        // filter can read the down flags while the scratch is borrowed
        // mutably for the build.
        let threshold = self.classes.get(class).copied().unwrap_or(f64::INFINITY);
        let net = self.net;
        let TreeCache {
            map,
            scratch,
            down_links,
            down_nodes,
            ..
        } = &mut *cache;
        let filter = |l: LinkId| {
            if down_links[l.index()] {
                return false;
            }
            let link = net.link(l);
            if down_nodes[link.a.index()] || down_nodes[link.b.index()] {
                return false;
            }
            link.capacity >= threshold
        };
        let tree = Arc::new(ShortestPathTree::build_in(
            net, source, &filter, None, scratch,
        ));
        if map.len() >= self.capacity {
            // `used` ticks are unique (the counter bumps on every cache
            // access), so the min is unique and map iteration order
            // cannot change the evicted victim.
            // lint:allow(unordered-iter)
            if let Some(&victim) = map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k)
            {
                map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        map.insert((source, class), (Arc::clone(&tree), tick));
        drop(cache);
        self.misses.fetch_add(1, Ordering::Relaxed);
        (tree, false)
    }

    /// Cheapest path `from → to` over links admitting `rate` (static
    /// capacities). `from == to` yields the trivial path without touching
    /// the cache.
    pub fn min_cost_path(&self, from: NodeId, to: NodeId, rate: f64) -> Option<Path> {
        if from == to {
            return Some(Path::trivial(from));
        }
        self.tree(from, rate).path_to(to)
    }

    /// The shortest-path tree rooted at `source` under an explicit
    /// [`ArcWeight`], from the weighted cache when possible. `Price`
    /// delegates to the classic per-class cache; `Delay` and
    /// `Lagrange(λ)` trees are keyed by `(source, class, λ-bits)` so the
    /// LARAC iteration reuses trees across queries sharing a λ. The
    /// fault overlay (down links / nodes) applies exactly as it does to
    /// price trees.
    pub fn weighted_tree(
        &self,
        source: NodeId,
        rate: f64,
        weight: ArcWeight,
    ) -> Arc<ShortestPathTree> {
        if weight == ArcWeight::Price {
            return self.tree(source, rate);
        }
        let class = self.rate_class(rate);
        let key = (source, class, weight.cache_key());
        let mut cache = self.cache.lock();
        cache.tick += 1;
        let tick = cache.tick;
        if let Some((tree, last_used)) = cache.wmap.get_mut(&key) {
            *last_used = tick;
            let tree = Arc::clone(tree);
            drop(cache);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return tree;
        }
        let threshold = self.classes.get(class).copied().unwrap_or(f64::INFINITY);
        let net = self.net;
        let TreeCache {
            wmap,
            scratch,
            down_links,
            down_nodes,
            ..
        } = &mut *cache;
        let filter = |l: LinkId| {
            if down_links[l.index()] {
                return false;
            }
            let link = net.link(l);
            if down_nodes[link.a.index()] || down_nodes[link.b.index()] {
                return false;
            }
            link.capacity >= threshold
        };
        let tree = Arc::new(ShortestPathTree::build_weighted_in(
            net, source, &filter, None, scratch, weight,
        ));
        if wmap.len() >= self.capacity {
            // `used` ticks are unique (the counter bumps on every cache
            // access), so the min is unique and map iteration order
            // cannot change the evicted victim.
            // lint:allow(unordered-iter)
            if let Some(&victim) = wmap
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k)
            {
                wmap.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        wmap.insert(key, (Arc::clone(&tree), tick));
        drop(cache);
        self.misses.fetch_add(1, Ordering::Relaxed);
        tree
    }

    /// Delay-bounded cheapest path `from → to` over links admitting
    /// `rate`: LARAC over cached weighted trees. Guarantees the returned
    /// path's summed link delay is within `max_delay_us` (plus float
    /// slack) and returns `None` only when no admitted path can meet the
    /// budget — including when faults have taken the fast links down.
    pub fn min_cost_path_bounded(
        &self,
        from: NodeId,
        to: NodeId,
        rate: f64,
        max_delay_us: f64,
    ) -> Option<Path> {
        if max_delay_us.is_nan() || max_delay_us < 0.0 {
            return None;
        }
        if from == to {
            return Some(Path::trivial(from));
        }
        larac_core(
            |w| {
                let tree = self.weighted_tree(from, rate, w);
                tree.path_to(to)
                    .map(|p| ConstrainedPath::evaluate(self.net, p))
            },
            max_delay_us,
        )
        .map(|c| c.path)
    }

    /// Flushes every cached tree (counted as one invalidation).
    pub fn invalidate(&self) {
        let mut cache = self.cache.lock();
        cache.map.clear();
        cache.wmap.clear();
        drop(cache);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks `link` in or out of service. Returns whether the flag
    /// changed; a change flushes every cached tree (one invalidation),
    /// since any of them may route over the link.
    pub fn set_link_down(&self, link: LinkId, down: bool) -> bool {
        let mut cache = self.cache.lock();
        let flag = match cache.down_links.get_mut(link.index()) {
            Some(f) => f,
            None => return false,
        };
        if *flag == down {
            return false;
        }
        *flag = down;
        cache.map.clear();
        cache.wmap.clear();
        drop(cache);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Marks `node` in or out of service (incident links are excluded
    /// from routing while it is down). Returns whether the flag changed;
    /// a change flushes every cached tree.
    pub fn set_node_down(&self, node: NodeId, down: bool) -> bool {
        let mut cache = self.cache.lock();
        let flag = match cache.down_nodes.get_mut(node.index()) {
            Some(f) => f,
            None => return false,
        };
        if *flag == down {
            return false;
        }
        *flag = down;
        cache.map.clear();
        cache.wmap.clear();
        drop(cache);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Mirrors a substrate [`FaultEvent`] into the oracle's overlay.
    /// Reachability events toggle the down flags (flushing the cache on
    /// change); capacity churn is a no-op here because class trees
    /// filter on *base* capacities — churned-down capacity is caught by
    /// the solve against the residual network. Returns whether the
    /// overlay changed.
    pub fn apply_fault(&self, event: &FaultEvent) -> bool {
        match *event {
            FaultEvent::LinkDown { link } => self.set_link_down(link, true),
            FaultEvent::LinkUp { link } => self.set_link_down(link, false),
            FaultEvent::NodeDown { node } => self.set_node_down(node, true),
            FaultEvent::NodeUp { node } => self.set_node_down(node, false),
            FaultEvent::LinkCapacity { .. } | FaultEvent::VnfCapacity { .. } => false,
        }
    }

    /// Snapshot of the hit/miss/eviction/invalidation counters.
    pub fn stats(&self) -> OracleStats {
        OracleStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Opens a per-solve session for residual-capacity routing (see
    /// [`OracleSession`]).
    pub fn session(&self) -> OracleSession<'_, 'n> {
        OracleSession {
            oracle: self,
            cache: FxHashMap::default(),
            scratch: RoutingScratch::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn record_session(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A private, residual-capacity-aware tree cache for one solve.
///
/// Residual-filtered trees depend on the solve's own [`NetworkState`]
/// and on caller context (e.g. which links a multicast group already
/// owns), so they must never be shared across solves. A session caches
/// them keyed by `(source, context)`; the caller **must** call
/// [`OracleSession::invalidate`] after any reservation that changed the
/// residual capacities — every cached tree may be stale after that.
/// Hits and misses also accumulate in the parent oracle's counters.
///
/// [`NetworkState`]: crate::state::NetworkState
pub struct OracleSession<'o, 'n> {
    oracle: &'o PathOracle<'n>,
    cache: FxHashMap<(NodeId, u64), Arc<ShortestPathTree>>,
    /// Session-owned search buffers, reused by every tree build of the
    /// solve (see [`RoutingScratch`]).
    scratch: RoutingScratch,
    hits: u64,
    misses: u64,
}

impl OracleSession<'_, '_> {
    /// Cheapest path `from → to` under a caller-supplied filter
    /// (typically residual capacity plus shared multicast links).
    /// `context` must distinguish filters with different semantics
    /// (e.g. the multicast group index); trees cached under one context
    /// are reused only for that context.
    pub fn min_cost_path_with<F: LinkFilter>(
        &mut self,
        from: NodeId,
        to: NodeId,
        context: u64,
        filter: &F,
    ) -> Option<Path> {
        if from == to {
            return Some(Path::trivial(from));
        }
        let key = (from, context);
        if let Some(tree) = self.cache.get(&key) {
            self.hits += 1;
            self.oracle.record_session(true);
            return tree.path_to(to);
        }
        let tree = Arc::new(ShortestPathTree::build_in(
            self.oracle.net,
            from,
            filter,
            None,
            &mut self.scratch,
        ));
        let path = tree.path_to(to);
        self.cache.insert(key, tree);
        self.misses += 1;
        self.oracle.record_session(false);
        path
    }

    /// Drops every cached tree — call after reserving capacity, which
    /// makes residual-filtered trees stale.
    pub fn invalidate(&mut self) {
        if !self.cache.is_empty() {
            self.cache.clear();
        }
        self.oracle.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Session-local cache hits.
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Session-local cache misses.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LinkId;
    use crate::routing::min_cost_path;
    use crate::state::NetworkState;

    /// Diamond: 0-1 (1.0), 0-2 (0.4), 1-3 (1.0), 2-3 (0.4), 1-2 (0.1);
    /// link 2-3 has capacity 1.0, the rest 10.0.
    fn diamond() -> Network {
        let mut g = Network::new();
        g.add_nodes(4);
        g.add_link(NodeId(0), NodeId(1), 1.0, 10.0).unwrap();
        g.add_link(NodeId(0), NodeId(2), 0.4, 10.0).unwrap();
        g.add_link(NodeId(1), NodeId(3), 1.0, 10.0).unwrap();
        g.add_link(NodeId(2), NodeId(3), 0.4, 1.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 0.1, 10.0).unwrap();
        g
    }

    #[test]
    fn cached_paths_match_direct_dijkstra() {
        let g = diamond();
        let oracle = PathOracle::new(&g);
        for rate in [0.5, 2.0] {
            let direct = min_cost_path(&g, NodeId(0), NodeId(3), &|l: LinkId| {
                g.link(l).capacity + CAP_EPS >= rate
            });
            let cached = oracle.min_cost_path(NodeId(0), NodeId(3), rate);
            assert_eq!(
                direct.as_ref().map(Path::nodes),
                cached.as_ref().map(Path::nodes),
                "rate {rate}"
            );
        }
        // First query per class was a miss; repeat queries hit.
        let before = oracle.stats();
        let again = oracle.min_cost_path(NodeId(0), NodeId(3), 0.5).unwrap();
        assert_eq!(again.nodes(), &[NodeId(0), NodeId(2), NodeId(3)]);
        let after = oracle.stats();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses);
        assert!(after.hit_rate() > 0.0);
    }

    #[test]
    fn rates_of_one_capacity_class_share_a_tree() {
        let g = diamond();
        let oracle = PathOracle::new(&g);
        assert_eq!(oracle.rate_class(0.3), oracle.rate_class(0.9));
        assert_ne!(oracle.rate_class(0.9), oracle.rate_class(2.0));
        // Rate above every capacity maps to the all-blocked class.
        assert_eq!(oracle.rate_class(99.0), 2);
        assert!(oracle.min_cost_path(NodeId(0), NodeId(3), 99.0).is_none());

        oracle.min_cost_path(NodeId(0), NodeId(3), 0.3);
        let s1 = oracle.stats();
        oracle.min_cost_path(NodeId(0), NodeId(3), 0.9); // same class → hit
        let s2 = oracle.stats();
        assert_eq!(s2.hits, s1.hits + 1);
        assert_eq!(s2.misses, s1.misses);
    }

    #[test]
    fn class_partition_excludes_small_links() {
        let g = diamond();
        let oracle = PathOracle::new(&g);
        // Rate 2.0 exceeds link 2-3's capacity (1.0): the tree must route
        // around it via the 1-2 cross link.
        let p = oracle.min_cost_path(NodeId(0), NodeId(3), 2.0).unwrap();
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(2), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn trivial_queries_bypass_the_cache() {
        let g = diamond();
        let oracle = PathOracle::new(&g);
        let p = oracle.min_cost_path(NodeId(2), NodeId(2), 1.0).unwrap();
        assert!(p.is_empty());
        assert_eq!(oracle.stats(), OracleStats::default());
    }

    #[test]
    fn lru_bound_evicts_oldest_tree() {
        let g = diamond();
        let oracle = PathOracle::with_capacity(&g, 1);
        oracle.tree(NodeId(0), 0.5);
        oracle.tree(NodeId(1), 0.5); // evicts the NodeId(0) tree
        oracle.tree(NodeId(0), 0.5); // rebuilt → miss
        let s = oracle.stats();
        assert_eq!(s.evictions, 2);
        assert_eq!(s.misses, 3);
        assert_eq!(s.hits, 0);
    }

    #[test]
    fn invalidate_flushes_and_counts() {
        let g = diamond();
        let oracle = PathOracle::new(&g);
        oracle.tree(NodeId(0), 0.5);
        oracle.invalidate();
        oracle.tree(NodeId(0), 0.5);
        let s = oracle.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits, 0);
    }

    #[test]
    fn session_invalidation_tracks_residual_updates() {
        let g = diamond();
        let oracle = PathOracle::new(&g);
        let mut state = NetworkState::new(&g);
        let mut session = oracle.session();

        let filter = |l: LinkId| state.link_fits(l, 0.8);
        let p1 = session
            .min_cost_path_with(NodeId(0), NodeId(3), 0, &filter)
            .unwrap();
        assert_eq!(p1.nodes(), &[NodeId(0), NodeId(2), NodeId(3)]);
        // Cached: the same query hits.
        let _ = session.min_cost_path_with(NodeId(0), NodeId(3), 0, &filter);
        assert_eq!(session.hits(), 1);

        // Reserve the cheap 2-3 link to saturation, then invalidate: the
        // refreshed tree must route around it.
        state.reserve_link(LinkId(3), 1.0).unwrap();
        session.invalidate();
        let filter = |l: LinkId| state.link_fits(l, 0.8);
        let p2 = session
            .min_cost_path_with(NodeId(0), NodeId(3), 0, &filter)
            .unwrap();
        assert_eq!(p2.nodes(), &[NodeId(0), NodeId(2), NodeId(1), NodeId(3)]);
        assert_eq!(session.misses(), 2);
        // Session traffic rolls up into the shared counters.
        let s = oracle.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 2, 1));
    }

    #[test]
    fn session_contexts_are_isolated() {
        let g = diamond();
        let oracle = PathOracle::new(&g);
        let mut session = oracle.session();
        let all = |_l: LinkId| true;
        let none = |_l: LinkId| false;
        assert!(session
            .min_cost_path_with(NodeId(0), NodeId(3), 1, &all)
            .is_some());
        // Different context: the permissive tree must not be reused.
        assert!(session
            .min_cost_path_with(NodeId(0), NodeId(3), 2, &none)
            .is_none());
        assert_eq!(session.misses(), 2);
    }

    /// Diamond with delays: 0-1 and 1-3 are fast (5 µs) but pricey,
    /// 0-2 and 2-3 are cheap but slow (50 µs), 1-2 is fast (5 µs).
    fn delayed_diamond() -> Network {
        let mut g = Network::new();
        g.add_nodes(4);
        g.add_link_with_delay(NodeId(0), NodeId(1), 1.0, 10.0, 5.0)
            .unwrap();
        g.add_link_with_delay(NodeId(0), NodeId(2), 0.4, 10.0, 50.0)
            .unwrap();
        g.add_link_with_delay(NodeId(1), NodeId(3), 1.0, 10.0, 5.0)
            .unwrap();
        g.add_link_with_delay(NodeId(2), NodeId(3), 0.4, 10.0, 50.0)
            .unwrap();
        g.add_link_with_delay(NodeId(1), NodeId(2), 0.1, 10.0, 5.0)
            .unwrap();
        g
    }

    #[test]
    fn bounded_path_switches_route_under_tight_budget() {
        let g = delayed_diamond();
        let oracle = PathOracle::new(&g);
        // Loose budget: the classic cheapest route (0-2-3, delay 100).
        let loose = oracle
            .min_cost_path_bounded(NodeId(0), NodeId(3), 0.5, 200.0)
            .unwrap();
        assert_eq!(loose.nodes(), &[NodeId(0), NodeId(2), NodeId(3)]);
        // Tight budget: forced onto the fast 0-1-3 route (delay 10).
        let tight = oracle
            .min_cost_path_bounded(NodeId(0), NodeId(3), 0.5, 20.0)
            .unwrap();
        assert_eq!(tight.nodes(), &[NodeId(0), NodeId(1), NodeId(3)]);
        assert!(tight.delay_us(&g) <= 20.0);
        // Budget below the fastest path: provably infeasible.
        assert!(oracle
            .min_cost_path_bounded(NodeId(0), NodeId(3), 0.5, 5.0)
            .is_none());
        // Negative budgets and trivial queries behave sanely.
        assert!(oracle
            .min_cost_path_bounded(NodeId(0), NodeId(3), 0.5, -1.0)
            .is_none());
        assert!(oracle
            .min_cost_path_bounded(NodeId(2), NodeId(2), 0.5, 0.0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn bounded_mode_excludes_down_links() {
        let g = delayed_diamond();
        let oracle = PathOracle::new(&g);
        let tight = oracle
            .min_cost_path_bounded(NodeId(0), NodeId(3), 0.5, 20.0)
            .unwrap();
        assert_eq!(tight.nodes(), &[NodeId(0), NodeId(1), NodeId(3)]);
        // Fail the fast 0-1 link: budget 20 is now unreachable (best
        // remaining is 0-2-1-3 at 60 µs) — the bounded mode must not
        // route over the dead link.
        assert!(oracle.set_link_down(LinkId(0), true));
        assert!(oracle
            .min_cost_path_bounded(NodeId(0), NodeId(3), 0.5, 20.0)
            .is_none());
        // A 90 µs budget admits only the detour via the cross link.
        let detour = oracle
            .min_cost_path_bounded(NodeId(0), NodeId(3), 0.5, 90.0)
            .unwrap();
        assert_eq!(
            detour.nodes(),
            &[NodeId(0), NodeId(2), NodeId(1), NodeId(3)]
        );
        assert!(!detour.links().contains(&LinkId(0)));
        // Recovery restores the fast route.
        assert!(oracle.set_link_down(LinkId(0), false));
        let back = oracle
            .min_cost_path_bounded(NodeId(0), NodeId(3), 0.5, 20.0)
            .unwrap();
        assert_eq!(back.nodes(), &[NodeId(0), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn weighted_trees_are_cached_per_lambda() {
        let g = delayed_diamond();
        let oracle = PathOracle::new(&g);
        let t1 = oracle.weighted_tree(NodeId(0), 0.5, ArcWeight::Delay);
        let before = oracle.stats();
        let t2 = oracle.weighted_tree(NodeId(0), 0.5, ArcWeight::Delay);
        let after = oracle.stats();
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses);
        // A different λ is a different tree.
        let t3 = oracle.weighted_tree(NodeId(0), 0.5, ArcWeight::Lagrange(0.5));
        assert!(!Arc::ptr_eq(&t1, &t3));
        // Invalidation flushes the weighted cache too.
        oracle.invalidate();
        let t4 = oracle.weighted_tree(NodeId(0), 0.5, ArcWeight::Delay);
        assert!(!Arc::ptr_eq(&t1, &t4));
    }

    #[test]
    fn down_link_reroutes_and_recovery_restores() {
        let g = diamond();
        let oracle = PathOracle::new(&g);
        let cheap = oracle.min_cost_path(NodeId(0), NodeId(3), 0.5).unwrap();
        assert_eq!(cheap.nodes(), &[NodeId(0), NodeId(2), NodeId(3)]);
        // Fail the cheap 2-3 link: trees rebuild around it.
        assert!(oracle.set_link_down(LinkId(3), true));
        // Repeat is a no-op and must not count another invalidation.
        assert!(!oracle.set_link_down(LinkId(3), true));
        let rerouted = oracle.min_cost_path(NodeId(0), NodeId(3), 0.5).unwrap();
        assert_eq!(
            rerouted.nodes(),
            &[NodeId(0), NodeId(2), NodeId(1), NodeId(3)]
        );
        assert_eq!(oracle.stats().invalidations, 1);
        // Recovery flushes again and the cheap route returns.
        assert!(oracle.apply_fault(&FaultEvent::LinkUp { link: LinkId(3) }));
        let back = oracle.min_cost_path(NodeId(0), NodeId(3), 0.5).unwrap();
        assert_eq!(back.nodes(), cheap.nodes());
        assert_eq!(oracle.stats().invalidations, 2);
    }

    #[test]
    fn down_node_partitions_the_oracle() {
        let g = diamond();
        let oracle = PathOracle::new(&g);
        // Nodes 1 AND 2 down: 0 and 3 are disconnected.
        oracle.set_node_down(NodeId(1), true);
        oracle.set_node_down(NodeId(2), true);
        assert!(oracle.min_cost_path(NodeId(0), NodeId(3), 0.5).is_none());
        oracle.apply_fault(&FaultEvent::NodeUp { node: NodeId(1) });
        assert!(oracle.min_cost_path(NodeId(0), NodeId(3), 0.5).is_some());
    }

    #[test]
    fn capacity_churn_does_not_flush_class_trees() {
        let g = diamond();
        let oracle = PathOracle::new(&g);
        oracle.tree(NodeId(0), 0.5);
        assert!(!oracle.apply_fault(&FaultEvent::LinkCapacity {
            link: LinkId(0),
            factor: 0.5
        }));
        assert_eq!(oracle.stats().invalidations, 0);
        // Out-of-range targets are a safe no-op.
        assert!(!oracle.set_link_down(LinkId(99), true));
    }

    #[test]
    fn concurrent_queries_agree() {
        let g = diamond();
        let oracle = PathOracle::new(&g);
        let paths: Vec<Option<Path>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| oracle.min_cost_path(NodeId(0), NodeId(3), 0.5)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for p in &paths {
            assert_eq!(
                p.as_ref().map(Path::nodes),
                paths[0].as_ref().map(Path::nodes)
            );
        }
        let s = oracle.stats();
        assert_eq!(s.hits + s.misses, 4);
        assert!(s.misses >= 1);
    }
}
