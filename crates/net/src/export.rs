//! Graphviz (DOT) export of networks.
//!
//! Produces `graph` documents (links are bi-directional) with VNF
//! inventories in node labels and prices on edges — handy for eyeballing
//! small generated instances and for documenting worked examples.
//! Embedding overlays live in `dagsfc-core`, which knows about chains.

use crate::graph::Network;
use crate::ids::{LinkId, NodeId};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Options controlling DOT rendering.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name in the DOT header.
    pub name: String,
    /// Include the VNF inventory (`f(i):price`) in node labels.
    pub show_vnfs: bool,
    /// Include prices in edge labels.
    pub show_link_prices: bool,
    /// Node ids rendered with a `fillcolor` highlight.
    pub highlight_nodes: Vec<NodeId>,
    /// Link ids rendered bold/colored (e.g. links used by an embedding).
    pub highlight_links: Vec<LinkId>,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "dagsfc".to_string(),
            show_vnfs: true,
            show_link_prices: true,
            highlight_nodes: Vec::new(),
            highlight_links: Vec::new(),
        }
    }
}

/// Renders `net` as a Graphviz `graph` document.
pub fn to_dot(net: &Network, opts: &DotOptions) -> String {
    let hi_nodes: HashSet<NodeId> = opts.highlight_nodes.iter().copied().collect();
    let hi_links: HashSet<LinkId> = opts.highlight_links.iter().copied().collect();
    let mut out = String::new();
    writeln!(out, "graph {} {{", sanitize(&opts.name)).ok();
    writeln!(out, "  node [shape=box, fontsize=10];").ok();
    for v in net.node_ids() {
        let mut label = format!("{v}");
        if opts.show_vnfs {
            for inst in net.node(v).instances() {
                write!(label, "\\n{}:{:.2}", inst.vnf, inst.price).ok();
            }
        }
        let style = if hi_nodes.contains(&v) {
            ", style=filled, fillcolor=lightblue"
        } else {
            ""
        };
        writeln!(out, "  {} [label=\"{label}\"{style}];", v.0).ok();
    }
    for l in net.link_ids() {
        let link = net.link(l);
        let mut attrs = Vec::new();
        if opts.show_link_prices {
            attrs.push(format!("label=\"{:.2}\"", link.price));
        }
        if hi_links.contains(&l) {
            attrs.push("color=red, penwidth=2".to_string());
        }
        let attr_str = if attrs.is_empty() {
            String::new()
        } else {
            format!(" [{}]", attrs.join(", "))
        };
        writeln!(out, "  {} -- {}{attr_str};", link.a.0, link.b.0).ok();
    }
    writeln!(out, "}}").ok();
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("g_{cleaned}")
    } else if cleaned.is_empty() {
        "g".to_string()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VnfTypeId;

    fn net() -> Network {
        let mut g = Network::new();
        g.add_nodes(3);
        g.add_link(NodeId(0), NodeId(1), 1.5, 10.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 0.5, 10.0).unwrap();
        g.deploy_vnf(NodeId(1), VnfTypeId(2), 2.25, 10.0).unwrap();
        g
    }

    #[test]
    fn dot_structure() {
        let d = to_dot(&net(), &DotOptions::default());
        assert!(d.starts_with("graph dagsfc {"));
        assert!(d.trim_end().ends_with('}'));
        assert!(d.contains("0 -- 1"));
        assert!(d.contains("1 -- 2"));
        assert!(d.contains("label=\"1.50\""));
        assert!(d.contains("f(2):2.25"));
        // One node statement per node, one edge per link.
        assert_eq!(d.matches(" -- ").count(), 2);
    }

    #[test]
    fn options_suppress_detail() {
        let opts = DotOptions {
            show_vnfs: false,
            show_link_prices: false,
            ..DotOptions::default()
        };
        let d = to_dot(&net(), &opts);
        assert!(!d.contains("f(2)"));
        assert!(!d.contains("label=\"1.50\""));
    }

    #[test]
    fn highlights_render() {
        let opts = DotOptions {
            highlight_nodes: vec![NodeId(1)],
            highlight_links: vec![LinkId(0)],
            ..DotOptions::default()
        };
        let d = to_dot(&net(), &opts);
        assert!(d.contains("fillcolor=lightblue"));
        assert!(d.contains("color=red"));
    }

    #[test]
    fn name_sanitization() {
        assert_eq!(sanitize("my graph!"), "my_graph_");
        assert_eq!(sanitize("3nodes"), "g_3nodes");
        assert_eq!(sanitize(""), "g");
        let opts = DotOptions {
            name: "fig 3".to_string(),
            ..DotOptions::default()
        };
        assert!(to_dot(&net(), &opts).starts_with("graph fig_3 {"));
    }
}
