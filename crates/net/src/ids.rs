//! Strongly-typed identifiers for network entities.
//!
//! All identifiers are small integer newtypes so that they can be used as
//! arena indices without hashing overhead, while still preventing the
//! classic "passed a link index where a node index was expected" bug.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a network node (a cloud node hosting VNF instances).
///
/// `NodeId(i)` indexes into [`crate::Network::nodes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a bi-directional network link.
///
/// `LinkId(i)` indexes into [`crate::Network::links`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// Identifier of a VNF *type* (category), e.g. "firewall" or "IDS".
///
/// The DAG-SFC convention used throughout this workspace:
/// regular types are `0..n`, the merger pseudo-VNF `f(n+1)` is the value
/// returned by the catalog's `merger()` accessor, and the dummy VNF `f(0)`
/// of the paper (used only for the stretched source/destination layers) is
/// never deployed on any node and therefore never appears in a [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VnfTypeId(pub u16);

impl NodeId {
    /// The node id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// The link id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl VnfTypeId {
    /// The VNF type id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for VnfTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f({})", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for LinkId {
    fn from(v: u32) -> Self {
        LinkId(v)
    }
}

impl From<u16> for VnfTypeId {
    fn from(v: u16) -> Self {
        VnfTypeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "v3");
        assert_eq!(LinkId(7).to_string(), "e7");
        assert_eq!(VnfTypeId(2).to_string(), "f(2)");
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(NodeId(42).index(), 42);
        assert_eq!(LinkId(42).index(), 42);
        assert_eq!(VnfTypeId(42).index(), 42);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(LinkId(0) < LinkId(10));
        assert!(VnfTypeId(3) > VnfTypeId(1));
    }

    #[test]
    fn from_impls() {
        assert_eq!(NodeId::from(5u32), NodeId(5));
        assert_eq!(LinkId::from(5u32), LinkId(5));
        assert_eq!(VnfTypeId::from(5u16), VnfTypeId(5));
    }
}
