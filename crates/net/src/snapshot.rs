//! Immutable CSR (compressed sparse row) view of a [`Network`].
//!
//! Routing kernels are the hottest code in the workspace: every solve
//! runs many Dijkstra/BFS searches, and each search visits every arc of
//! the graph in the worst case. The pointer-chasing
//! `Vec<Vec<(NodeId, LinkId)>>` adjacency plus a `links[link]` lookup
//! per relaxation costs two dependent cache misses per arc. This module
//! flattens the graph into struct-of-arrays form once — `u32` offsets
//! and targets plus parallel price/capacity arrays — so the inner
//! relaxation loop is a contiguous scan.
//!
//! Each undirected link contributes two *arcs* (one per direction). Arc
//! order within a node matches [`Network::neighbors`] (sorted by
//! neighbor id), so CSR-based searches relax arcs in exactly the order
//! the adjacency-list searches did and produce bit-identical trees.
//!
//! Snapshots are built lazily by [`Network::snapshot`] and cached until
//! the next topology mutation; they are cheap to share (`Arc`).

use crate::graph::Network;
use crate::ids::{LinkId, NodeId};
use crate::routing::quant::QuantPlan;
use std::sync::{Arc, OnceLock};

/// A single outgoing arc in a [`NetworkSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arc32 {
    /// Arc head (the neighbor reached by traversing the arc).
    pub to: NodeId,
    /// The undirected link this arc belongs to.
    pub link: LinkId,
    /// Link price `c_e` per unit rate (same for both directions).
    pub price: f64,
    /// Link bandwidth capacity `r_e` (shared by both directions).
    pub capacity: f64,
    /// Link propagation delay `d_e` in microseconds (both directions).
    pub delay_us: f64,
}

/// Flat struct-of-arrays adjacency of a [`Network`].
///
/// `offsets` has `node_count + 1` entries; the arcs leaving node `v`
/// occupy indices `offsets[v] .. offsets[v + 1]` of the parallel
/// `targets` / `arc_link` / `arc_price` / `arc_capacity` arrays.
#[derive(Debug, Clone)]
pub struct NetworkSnapshot {
    node_count: usize,
    offsets: Vec<u32>,
    targets: Vec<u32>,
    arc_link: Vec<u32>,
    arc_price: Vec<f64>,
    arc_capacity: Vec<f64>,
    arc_delay: Vec<f64>,
    /// Lossless `u32` quantization of `arc_price`, when one exists —
    /// the bucket-queue kernel's fast path for `Price` searches.
    price_q: Option<QuantPlan>,
    /// Lossless `u32` quantization of `arc_delay`, when one exists.
    delay_q: Option<QuantPlan>,
}

impl NetworkSnapshot {
    /// Builds the CSR form of `net`. Arc order per node matches
    /// [`Network::neighbors`] exactly.
    pub fn build(net: &Network) -> Self {
        let n = net.node_count();
        let arc_total: usize = 2 * net.link_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(arc_total);
        let mut arc_link = Vec::with_capacity(arc_total);
        let mut arc_price = Vec::with_capacity(arc_total);
        let mut arc_capacity = Vec::with_capacity(arc_total);
        let mut arc_delay = Vec::with_capacity(arc_total);
        offsets.push(0);
        for v in net.node_ids() {
            for &(m, l) in net.neighbors(v) {
                let link = net.link(l);
                targets.push(m.0);
                arc_link.push(l.0);
                arc_price.push(link.price);
                arc_capacity.push(link.capacity);
                arc_delay.push(link.delay_us);
            }
            offsets.push(targets.len() as u32);
        }
        // Quantization plans are detected once per snapshot build (i.e.
        // per topology mutation), so every routing query amortizes the
        // O(arcs) detection cost away.
        let price_q = QuantPlan::build(&arc_price);
        let delay_q = QuantPlan::build(&arc_delay);
        NetworkSnapshot {
            node_count: n,
            offsets,
            targets,
            arc_link,
            arc_price,
            arc_capacity,
            arc_delay,
            price_q,
            delay_q,
        }
    }

    /// The lossless price quantization, when the price axis is dyadic.
    #[inline]
    pub fn price_quant(&self) -> Option<&QuantPlan> {
        self.price_q.as_ref()
    }

    /// The lossless delay quantization, when the delay axis is dyadic.
    #[inline]
    pub fn delay_quant(&self) -> Option<&QuantPlan> {
        self.delay_q.as_ref()
    }

    /// Number of nodes in the snapshotted network.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Total number of arcs (twice the undirected link count).
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.targets.len()
    }

    /// Index range of the arcs leaving `v` in the parallel arrays.
    #[inline]
    pub fn arc_range(&self, v: NodeId) -> std::ops::Range<usize> {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        lo..hi
    }

    /// Head node of arc `i`.
    #[inline]
    pub fn arc_target(&self, i: usize) -> NodeId {
        NodeId(self.targets[i])
    }

    /// Underlying link of arc `i`.
    #[inline]
    pub fn arc_link(&self, i: usize) -> LinkId {
        LinkId(self.arc_link[i])
    }

    /// Price of arc `i` per unit rate.
    #[inline]
    pub fn arc_price(&self, i: usize) -> f64 {
        self.arc_price[i]
    }

    /// Bandwidth capacity of arc `i`.
    #[inline]
    pub fn arc_capacity(&self, i: usize) -> f64 {
        self.arc_capacity[i]
    }

    /// Propagation delay of arc `i` in microseconds.
    #[inline]
    pub fn arc_delay(&self, i: usize) -> f64 {
        self.arc_delay[i]
    }

    /// Iterator over the arcs leaving `v`, in neighbor-id order.
    #[inline]
    pub fn arcs(&self, v: NodeId) -> impl Iterator<Item = Arc32> + '_ {
        self.arc_range(v).map(move |i| Arc32 {
            to: NodeId(self.targets[i]),
            link: LinkId(self.arc_link[i]),
            price: self.arc_price[i],
            capacity: self.arc_capacity[i],
            delay_us: self.arc_delay[i],
        })
    }
}

/// Lazily initialized, mutation-invalidated cache slot for a network's
/// CSR snapshot.
///
/// `Clone` intentionally produces an *empty* cell: a cloned network is
/// usually about to be mutated (`map_capacities`), and the snapshot is
/// cheap to rebuild on first use.
#[derive(Debug, Default)]
pub(crate) struct SnapshotCell(OnceLock<Arc<NetworkSnapshot>>);

impl Clone for SnapshotCell {
    fn clone(&self) -> Self {
        SnapshotCell::default()
    }
}

// The cell is a derived cache, never persisted: it serializes to null
// and deserializes (from null or from a payload predating the field)
// to an empty cell that rebuilds on first use.
impl serde::Serialize for SnapshotCell {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Null
    }
}

impl serde::Deserialize for SnapshotCell {
    fn from_value(_v: &serde::value::Value) -> Result<Self, serde::DeError> {
        Ok(SnapshotCell::default())
    }
}

impl SnapshotCell {
    /// Returns the cached snapshot, building it from `net` on first use.
    #[inline]
    pub(crate) fn get_or_build(&self, net: &Network) -> &Arc<NetworkSnapshot> {
        self.0.get_or_init(|| Arc::new(NetworkSnapshot::build(net)))
    }

    /// Drops any cached snapshot (called by topology mutators).
    #[inline]
    pub(crate) fn invalidate(&mut self) {
        self.0.take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Network {
        let mut g = Network::new();
        g.add_nodes(4);
        g.add_link(NodeId(0), NodeId(1), 1.0, 10.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 2.0, 20.0).unwrap();
        g.add_link(NodeId(2), NodeId(3), 3.0, 30.0).unwrap();
        g.add_link(NodeId(0), NodeId(3), 4.0, 40.0).unwrap();
        g
    }

    #[test]
    fn csr_matches_adjacency() {
        let g = sample();
        let s = NetworkSnapshot::build(&g);
        assert_eq!(s.node_count(), 4);
        assert_eq!(s.arc_count(), 8);
        for v in g.node_ids() {
            let adj: Vec<_> = g.neighbors(v).to_vec();
            let csr: Vec<_> = s.arcs(v).map(|a| (a.to, a.link)).collect();
            assert_eq!(adj, csr, "arc order must match neighbors({v:?})");
            for a in s.arcs(v) {
                let l = g.link(a.link);
                assert_eq!(a.price, l.price);
                assert_eq!(a.capacity, l.capacity);
                assert_eq!(a.delay_us, l.delay_us);
            }
        }
    }

    #[test]
    fn snapshot_cached_and_invalidated() {
        let mut g = sample();
        let first = std::sync::Arc::as_ptr(g.snapshot());
        let again = std::sync::Arc::as_ptr(g.snapshot());
        assert_eq!(first, again, "second call must hit the cache");
        g.add_link(NodeId(1), NodeId(3), 1.0, 1.0).unwrap();
        let rebuilt = g.snapshot();
        assert_eq!(rebuilt.arc_count(), 10, "rebuild sees the new link");
    }

    #[test]
    fn clone_resets_cache() {
        let g = sample();
        let _ = g.snapshot();
        let h = g.clone();
        // The clone's cell is empty; building from the clone reflects
        // any divergence between the two networks.
        let mut h2 = h.clone();
        h2.add_link(NodeId(1), NodeId(3), 1.0, 1.0).unwrap();
        assert_eq!(h2.snapshot().arc_count(), 10);
        assert_eq!(g.snapshot().arc_count(), 8);
    }

    #[test]
    fn empty_network() {
        let g = Network::new();
        let s = NetworkSnapshot::build(&g);
        assert_eq!(s.node_count(), 0);
        assert_eq!(s.arc_count(), 0);
    }
}
