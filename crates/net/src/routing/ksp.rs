//! Yen's algorithm for the k cheapest loopless paths.
//!
//! The exact solver enumerates alternative real-paths per meta-path
//! (the paper's `p^a_{b,ρ} ∈ P^a_b`), which requires more than the single
//! cheapest path. Yen's algorithm yields them in non-decreasing price
//! order without repetition.
//!
//! All spur searches of one invocation share a single
//! [`RoutingScratch`], so Yen's O(k·n) Dijkstra calls reuse one set of
//! working buffers.

use super::dijkstra::min_cost_path_in;
use super::scratch::{with_thread_scratch, RoutingScratch};
use super::LinkFilter;
use crate::graph::Network;
use crate::ids::{LinkId, NodeId};
use crate::path::Path;

/// Returns up to `k` cheapest loopless paths from `from` to `to`, sorted by
/// ascending price (ties broken arbitrarily but deterministically).
///
/// Only links admitted by `filter` are used. `from == to` yields just the
/// trivial path.
pub fn k_shortest_paths<F: LinkFilter>(
    net: &Network,
    from: NodeId,
    to: NodeId,
    k: usize,
    filter: &F,
) -> Vec<Path> {
    with_thread_scratch(|scratch| k_shortest_paths_in(net, from, to, k, filter, scratch))
}

/// Like [`k_shortest_paths`], but runs every spur search in a
/// caller-provided scratch.
pub fn k_shortest_paths_in<F: LinkFilter>(
    net: &Network,
    from: NodeId,
    to: NodeId,
    k: usize,
    filter: &F,
    scratch: &mut RoutingScratch,
) -> Vec<Path> {
    if k == 0 {
        return Vec::new();
    }
    if from == to {
        return vec![Path::trivial(from)];
    }
    let mut result: Vec<Path> = Vec::with_capacity(k);
    let Some(first) = min_cost_path_in(net, from, to, filter, scratch) else {
        return result;
    };
    result.push(first);

    // Candidate pool: (price, path). Paths are deduplicated on insert.
    let mut candidates: Vec<(f64, Path)> = Vec::new();

    while result.len() < k {
        // lint:allow(expect) — invariant: at least the first path
        let last = result.last().expect("at least the first path").clone();
        // Each prefix of the last accepted path spawns a spur search.
        for spur_idx in 0..last.len() {
            let spur_node = last.nodes()[spur_idx];
            let root_nodes = &last.nodes()[..=spur_idx];
            let root_links = &last.links()[..spur_idx];

            // Links leaving the spur node along any already-accepted path
            // sharing this root are banned, preventing duplicates.
            let mut banned_links: Vec<LinkId> = Vec::new();
            for p in &result {
                if p.len() > spur_idx && p.nodes()[..=spur_idx] == *root_nodes {
                    banned_links.push(p.links()[spur_idx]);
                }
            }
            // Root nodes (except the spur) are banned to keep paths loopless.
            let banned_nodes: Vec<NodeId> = root_nodes[..spur_idx].to_vec();

            let spur_filter = |l: LinkId| {
                if banned_links.contains(&l) || !filter.allows(l) {
                    return false;
                }
                let link = net.link(l);
                !banned_nodes.contains(&link.a) && !banned_nodes.contains(&link.b)
            };
            if let Some(spur) = min_cost_path_in(net, spur_node, to, &spur_filter, scratch) {
                let root = Path::from_parts_unchecked(root_nodes.to_vec(), root_links.to_vec());
                // lint:allow(expect) — invariant: root ends at spur node
                let total = root.join(&spur).expect("root ends at spur node");
                if total.has_node_cycle() {
                    continue;
                }
                let price = total.price(net);
                if !result.contains(&total) && !candidates.iter().any(|(_, p)| *p == total) {
                    candidates.push((price, total));
                }
            }
        }
        // Pop the cheapest candidate.
        let Some(best_idx) = candidates
            .iter()
            .enumerate()
            .min_by(|a, b| {
                a.1 .0
                    .total_cmp(&b.1 .0)
                    .then_with(|| a.1 .1.nodes().cmp(b.1 .1.nodes()))
            })
            .map(|(i, _)| i)
        else {
            break;
        };
        result.push(candidates.swap_remove(best_idx).1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::min_cost_path;
    use crate::routing::NoFilter;

    /// Square with a diagonal: 0-1 (1), 1-3 (1), 0-2 (1.5), 2-3 (1.5), 0-3 (5).
    fn square() -> Network {
        let mut g = Network::new();
        g.add_nodes(4);
        g.add_link(NodeId(0), NodeId(1), 1.0, 1.0).unwrap();
        g.add_link(NodeId(1), NodeId(3), 1.0, 1.0).unwrap();
        g.add_link(NodeId(0), NodeId(2), 1.5, 1.0).unwrap();
        g.add_link(NodeId(2), NodeId(3), 1.5, 1.0).unwrap();
        g.add_link(NodeId(0), NodeId(3), 5.0, 1.0).unwrap();
        g
    }

    #[test]
    fn returns_paths_in_price_order() {
        let g = square();
        let ps = k_shortest_paths(&g, NodeId(0), NodeId(3), 5, &NoFilter);
        assert_eq!(ps.len(), 3);
        let prices: Vec<f64> = ps.iter().map(|p| p.price(&g)).collect();
        assert!((prices[0] - 2.0).abs() < 1e-12);
        assert!((prices[1] - 3.0).abs() < 1e-12);
        assert!((prices[2] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn paths_are_distinct_and_loopless() {
        let g = square();
        let ps = k_shortest_paths(&g, NodeId(0), NodeId(3), 10, &NoFilter);
        for (i, p) in ps.iter().enumerate() {
            assert!(!p.has_node_cycle());
            assert_eq!(p.source(), NodeId(0));
            assert_eq!(p.target(), NodeId(3));
            for q in &ps[i + 1..] {
                assert_ne!(p, q);
            }
        }
    }

    #[test]
    fn k_caps_output() {
        let g = square();
        assert_eq!(
            k_shortest_paths(&g, NodeId(0), NodeId(3), 2, &NoFilter).len(),
            2
        );
        assert_eq!(
            k_shortest_paths(&g, NodeId(0), NodeId(3), 0, &NoFilter).len(),
            0
        );
    }

    #[test]
    fn same_endpoints_trivial() {
        let g = square();
        let ps = k_shortest_paths(&g, NodeId(1), NodeId(1), 4, &NoFilter);
        assert_eq!(ps.len(), 1);
        assert!(ps[0].is_empty());
    }

    #[test]
    fn disconnected_yields_empty() {
        let mut g = Network::new();
        g.add_nodes(2);
        assert!(k_shortest_paths(&g, NodeId(0), NodeId(1), 3, &NoFilter).is_empty());
    }

    #[test]
    fn respects_filter() {
        let g = square();
        // Ban the two cheapest first hops; only the direct 0-3 remains.
        let f = |l: LinkId| l != LinkId(0) && l != LinkId(2);
        let ps = k_shortest_paths(&g, NodeId(0), NodeId(3), 5, &f);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].links(), &[LinkId(4)]);
    }

    #[test]
    fn first_path_matches_dijkstra() {
        let g = square();
        let d = min_cost_path(&g, NodeId(0), NodeId(3), &NoFilter).unwrap();
        let ps = k_shortest_paths(&g, NodeId(0), NodeId(3), 1, &NoFilter);
        assert_eq!(ps[0], d);
    }

    #[test]
    fn explicit_scratch_matches_thread_local() {
        let g = square();
        let mut scratch = RoutingScratch::new();
        let a = k_shortest_paths(&g, NodeId(0), NodeId(3), 5, &NoFilter);
        let b = k_shortest_paths_in(&g, NodeId(0), NodeId(3), 5, &NoFilter, &mut scratch);
        assert_eq!(a, b);
    }
}
