//! Lossless dyadic quantization of `f64` arc weights onto `u32`.
//!
//! The bucket-queue kernel ([`super::bucket`]) needs integer keys, but
//! the rest of the workspace prices everything in `f64` and the figure
//! CSVs are pinned byte-for-byte. The bridge is *exact* quantization:
//! a weight axis quantizes only when every arc weight can be written as
//! `m · 2⁻ᵏ` with an integer `m ≥ 1` under one shared shift `k`, and
//! the sum of all `m` fits in `u32` (so no path sum can overflow).
//! Under those conditions every partial path sum is an integer below
//! 2³² < 2⁵³, all the `f64` additions the binary-heap kernel performs
//! are exact, and `(q as f64) * 2⁻ᵏ` reconstructs the heap kernel's
//! distances bit-for-bit. When any condition fails, [`quantize_into`]
//! returns `None` and the caller keeps the heap kernel — weights are
//! never rounded, silently or otherwise.

/// Largest shared shift `k` we accept. Weights needing more fractional
/// bits (e.g. anything derived from `0.1`, or a generic LARAC λ blend)
/// reject quantization immediately.
const MAX_SHIFT: u32 = 40;

/// A losslessly quantized weight axis over a snapshot's arc array:
/// `weights[i] as f64 * scale` equals the original `f64` arc weight
/// bit-for-bit.
#[derive(Debug, Clone)]
pub struct QuantPlan {
    /// Per-arc integer weights, aligned with the snapshot's arc arrays.
    pub weights: Vec<u32>,
    /// The exact power of two `2⁻ᵏ` reconstructing `f64` distances.
    pub scale: f64,
}

impl QuantPlan {
    /// Quantizes one weight axis, or `None` when it cannot be lossless.
    pub fn build(weights: &[f64]) -> Option<QuantPlan> {
        let mut out = Vec::new();
        let scale = quantize_into(weights.iter().copied(), &mut out)?;
        Some(QuantPlan {
            weights: out,
            scale,
        })
    }
}

/// The exact power of two `2^e` for `|e| < 1023`, via direct exponent
/// construction (no libm rounding in the loop).
#[inline]
fn exp2(e: i32) -> f64 {
    debug_assert!((-1022..=1023).contains(&e));
    f64::from_bits(((1023 + e) as u64) << 52)
}

/// Minimal `k` such that `w · 2ᵏ` is an integer, or `None` when `w` is
/// non-positive, non-finite, or needs more than [`MAX_SHIFT`] bits.
/// Zero is rejected too: the bucket kernel's tie-break equivalence
/// proof requires strictly positive integer weights.
#[inline]
fn frac_bits(w: f64) -> Option<u32> {
    if !w.is_finite() || w <= 0.0 {
        return None;
    }
    let bits = w.to_bits();
    let raw_exp = ((bits >> 52) & 0x7ff) as i64;
    let frac = bits & ((1u64 << 52) - 1);
    // Reduce the mantissa by its trailing zeros so `k` is minimal.
    let (mant, exp) = if raw_exp == 0 {
        (frac, -1074i64) // subnormal
    } else {
        (frac | (1u64 << 52), raw_exp - 1075)
    };
    debug_assert!(mant != 0, "w > 0 implies a nonzero mantissa");
    let e2 = exp + i64::from(mant.trailing_zeros());
    let k = if e2 >= 0 { 0 } else { (-e2) as u32 };
    (k <= MAX_SHIFT).then_some(k)
}

/// Quantizes a weight sequence into `out` (cleared first), returning
/// the exact reconstruction scale `2⁻ᵏ` on success.
///
/// Success requires every weight to be `m · 2⁻ᵏ` with integer `m ≥ 1`
/// under the shared minimal `k`, and `Σ m ≤ u32::MAX` across the whole
/// sequence so no path sum can overflow the `u32` keys. On failure
/// `out`'s contents are unspecified but its capacity is retained, so
/// callers (the per-query LARAC attempt) stay allocation-free.
pub(crate) fn quantize_into(
    weights: impl Iterator<Item = f64> + Clone,
    out: &mut Vec<u32>,
) -> Option<f64> {
    out.clear();
    let mut k = 0u32;
    let mut any = false;
    for w in weights.clone() {
        k = k.max(frac_bits(w)?);
        any = true;
    }
    if !any {
        return None;
    }
    let up = exp2(k as i32);
    let scale = exp2(-(k as i32));
    let mut sum = 0u64;
    for w in weights {
        // Exact: w has at most k fractional bits, so w·2ᵏ is an
        // integer and the power-of-two product does not round.
        let m = w * up;
        if !(m >= 1.0 && m <= f64::from(u32::MAX)) {
            return None;
        }
        let q = m as u32;
        // Belt and braces for the "never silently rounds" contract.
        if f64::from(q) * scale != w {
            return None;
        }
        sum += u64::from(q);
        if sum > u64::from(u32::MAX) {
            return None;
        }
        out.push(q);
    }
    Some(scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dyadic_grid_round_trips() {
        let ws = [0.25, 1.5, 3.0, 0.125, 7.75];
        let plan = QuantPlan::build(&ws).unwrap();
        assert_eq!(plan.scale, 0.125);
        for (q, w) in plan.weights.iter().zip(ws) {
            assert_eq!(f64::from(*q) * plan.scale, w);
        }
        assert_eq!(plan.weights, vec![2, 12, 24, 1, 62]);
    }

    #[test]
    fn integers_use_unit_scale() {
        let plan = QuantPlan::build(&[1.0, 5.0, 42.0]).unwrap();
        assert_eq!(plan.scale, 1.0);
        assert_eq!(plan.weights, vec![1, 5, 42]);
    }

    #[test]
    fn non_dyadic_rejects() {
        assert!(QuantPlan::build(&[0.25, 0.1]).is_none());
        assert!(QuantPlan::build(&[1.0 / 3.0]).is_none());
    }

    #[test]
    fn zero_negative_and_non_finite_reject() {
        assert!(QuantPlan::build(&[0.0, 1.0]).is_none());
        assert!(QuantPlan::build(&[-0.5]).is_none());
        assert!(QuantPlan::build(&[f64::INFINITY]).is_none());
        assert!(QuantPlan::build(&[f64::NAN]).is_none());
        assert!(QuantPlan::build(&[]).is_none());
    }

    #[test]
    fn sum_overflow_rejects() {
        // Each weight fits u32, but the total would overflow the key
        // space, so a long path could wrap — reject.
        let big = f64::from(u32::MAX - 1);
        assert!(QuantPlan::build(&[big, big]).is_none());
        assert!(QuantPlan::build(&[big]).is_some());
    }

    #[test]
    fn tiny_dyadic_within_shift_cap() {
        let w = exp2(-40);
        let plan = QuantPlan::build(&[w, 2.0 * w]).unwrap();
        assert_eq!(plan.weights, vec![1, 2]);
        assert!(QuantPlan::build(&[exp2(-41)]).is_none());
    }
}
