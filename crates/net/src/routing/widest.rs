//! Widest (maximum-bottleneck) paths.
//!
//! Under capacity pressure the *cheapest* path is not always the path
//! that keeps the network alive: admission-oriented placement prefers
//! routes whose bottleneck link leaves the most residual bandwidth.
//! This is the classic widest-path problem — Dijkstra with `min` instead
//! of `+` and `max`-relaxation — over the residual capacities.
//!
//! The relaxation loop scans the network's CSR snapshot like the other
//! kernels; the width semiring needs its own heap ordering and
//! sentinels, so it keeps local working vectors rather than sharing the
//! min-cost [`RoutingScratch`](super::RoutingScratch).

use super::LinkFilter;
use crate::graph::Network;
use crate::ids::{LinkId, NodeId};
use crate::path::Path;
use crate::snapshot::NetworkSnapshot;
use crate::state::NetworkState;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug, PartialEq)]
struct HeapEntry {
    width: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on width: the widest frontier pops first.
        self.width
            .total_cmp(&other.width)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Finds the path `from → to` maximizing the minimum link width, where a
/// link's width is given by `width_of` (e.g. residual bandwidth).
/// Returns the path and its bottleneck width; `from == to` yields the
/// trivial path with infinite width.
pub fn widest_path<F: LinkFilter>(
    net: &Network,
    from: NodeId,
    to: NodeId,
    filter: &F,
    width_of: impl Fn(LinkId) -> f64,
) -> Option<(Path, f64)> {
    if from == to {
        return Some((Path::trivial(from), f64::INFINITY));
    }
    let snap: &NetworkSnapshot = net.snapshot();
    let n = snap.node_count();
    let mut best = vec![f64::NEG_INFINITY; n];
    let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    best[from.index()] = f64::INFINITY;
    heap.push(HeapEntry {
        width: f64::INFINITY,
        node: from,
    });
    while let Some(HeapEntry { width, node }) = heap.pop() {
        if settled[node.index()] {
            continue;
        }
        settled[node.index()] = true;
        if node == to {
            break;
        }
        for i in snap.arc_range(node) {
            let next = snap.arc_target(i);
            let link = snap.arc_link(i);
            if settled[next.index()] || !filter.allows(link) {
                continue;
            }
            let w = width.min(width_of(link));
            if w > best[next.index()] {
                best[next.index()] = w;
                prev[next.index()] = Some((node, link));
                heap.push(HeapEntry {
                    width: w,
                    node: next,
                });
            }
        }
    }
    if !best[to.index()].is_finite() && best[to.index()] == f64::NEG_INFINITY {
        return None;
    }
    let mut nodes = vec![to];
    let mut links = Vec::new();
    let mut cur = to;
    while cur != from {
        let (p, l) = prev[cur.index()]?;
        nodes.push(p);
        links.push(l);
        cur = p;
    }
    nodes.reverse();
    links.reverse();
    Path::new(net, nodes, links)
        .ok()
        .map(|p| (p, best[to.index()]))
}

/// Widest path over a residual [`NetworkState`] (width = remaining
/// bandwidth).
pub fn widest_residual_path(
    net: &Network,
    state: &NetworkState<'_>,
    from: NodeId,
    to: NodeId,
) -> Option<(Path, f64)> {
    widest_path(net, from, to, &super::NoFilter, |l| {
        state.link_remaining(l).unwrap_or(0.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::NoFilter;

    /// Diamond: top route capacity 5, bottom route capacity {9, 2}.
    fn net() -> Network {
        let mut g = Network::new();
        g.add_nodes(4);
        g.add_link(NodeId(0), NodeId(1), 1.0, 5.0).unwrap();
        g.add_link(NodeId(1), NodeId(3), 1.0, 5.0).unwrap();
        g.add_link(NodeId(0), NodeId(2), 1.0, 9.0).unwrap();
        g.add_link(NodeId(2), NodeId(3), 1.0, 2.0).unwrap();
        g
    }

    #[test]
    fn picks_max_bottleneck_route() {
        let g = net();
        let (p, w) =
            widest_path(&g, NodeId(0), NodeId(3), &NoFilter, |l| g.link(l).capacity).unwrap();
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(w, 5.0);
    }

    #[test]
    fn bottleneck_dominates_any_alternative() {
        // Brute force check: the returned width is ≥ every simple path's
        // bottleneck.
        let g = net();
        let (_, w) =
            widest_path(&g, NodeId(0), NodeId(3), &NoFilter, |l| g.link(l).capacity).unwrap();
        // The only two simple routes have bottlenecks 5 and 2.
        assert!(w >= 5.0 - 1e-12);
    }

    #[test]
    fn residual_variant_tracks_state() {
        let g = net();
        let mut s = NetworkState::new(&g);
        // Drain the top route: the answer flips to the bottom.
        s.reserve_link(LinkId(0), 4.5).unwrap();
        let (p, w) = widest_residual_path(&g, &s, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(2), NodeId(3)]);
        assert_eq!(w, 2.0);
    }

    #[test]
    fn trivial_and_unreachable() {
        let g = net();
        let (p, w) =
            widest_path(&g, NodeId(2), NodeId(2), &NoFilter, |l| g.link(l).capacity).unwrap();
        assert!(p.is_empty());
        assert!(w.is_infinite());
        let mut g2 = Network::new();
        g2.add_nodes(2);
        assert!(widest_path(&g2, NodeId(0), NodeId(1), &NoFilter, |_| 1.0).is_none());
    }

    #[test]
    fn respects_filter() {
        let g = net();
        let banned = g.link_between(NodeId(0), NodeId(1)).unwrap();
        let f = move |l: LinkId| l != banned;
        let (p, w) = widest_path(&g, NodeId(0), NodeId(3), &f, |l| g.link(l).capacity).unwrap();
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(2), NodeId(3)]);
        assert_eq!(w, 2.0);
    }
}
