//! Widest (maximum-bottleneck) paths.
//!
//! Under capacity pressure the *cheapest* path is not always the path
//! that keeps the network alive: admission-oriented placement prefers
//! routes whose bottleneck link leaves the most residual bandwidth.
//! This is the classic widest-path problem — Dijkstra with `min` instead
//! of `+` and `max`-relaxation — over the residual capacities.
//!
//! Like the min-cost kernels, the relaxation loop scans the network's
//! CSR snapshot and keeps its working state in the shared epoch-stamped
//! [`RoutingScratch`]. The width semiring has no useful integer
//! quantization, but it *does* have a small key universe: every
//! reachable bottleneck width is one of the per-link widths. The queue
//! is therefore a rank bucket array (Dial's algorithm over the
//! descending-sorted distinct widths) instead of a comparison heap —
//! pushes are O(log ranks) binary-search inserts, pops are cursor
//! bumps, and the buckets replicate the old heap's
//! (width desc, node asc) pop order exactly, so predecessor trees are
//! unchanged.

use super::scratch::{with_thread_scratch, RoutingScratch};
use super::LinkFilter;
use crate::graph::Network;
use crate::ids::{LinkId, NodeId};
use crate::path::Path;
use crate::snapshot::NetworkSnapshot;
use crate::state::NetworkState;

/// Rank-bucket queue for the widest-path kernel, embedded in
/// [`RoutingScratch`] so its arrays persist across searches.
///
/// `ranks` holds the distinct per-link widths sorted descending
/// (`total_cmp`, matching the old heap's ordering); bucket `r` holds
/// the frontier nodes whose tentative bottleneck width is `ranks[r]`,
/// kept sorted ascending by node id. Draining buckets in rank order
/// with a cursor reproduces the heap's deterministic pop order, and a
/// same-rank relaxation (`min(parent, link) == parent`) inserts into
/// the un-drained tail at its sorted position.
#[derive(Debug, Default)]
pub(crate) struct WideBuckets {
    link_width: Vec<f64>,
    ranks: Vec<f64>,
    buckets: Vec<Vec<u32>>,
    /// Rank currently draining and its cursor into the bucket.
    current: usize,
    cursor: usize,
    /// Number of live ranks this search (buckets only ever grow).
    active: usize,
}

impl WideBuckets {
    /// Rebuilds the width table and rank index for a new search.
    pub(crate) fn prepare(&mut self, links: usize, width_of: &impl Fn(LinkId) -> f64) {
        self.link_width.clear();
        self.link_width
            .extend((0..links).map(|l| width_of(LinkId(l as u32))));
        self.ranks.clear();
        self.ranks.extend_from_slice(&self.link_width);
        self.ranks.sort_unstable_by(|a, b| b.total_cmp(a));
        self.ranks.dedup_by(|a, b| a.total_cmp(b).is_eq());
        self.active = self.ranks.len();
        if self.buckets.len() < self.active {
            self.buckets.resize_with(self.active, Vec::new);
        }
        for b in &mut self.buckets[..self.active] {
            b.clear();
        }
        self.current = 0;
        self.cursor = 0;
    }

    /// The precomputed width of `link`.
    #[inline]
    pub(crate) fn link_width(&self, link: LinkId) -> f64 {
        self.link_width[link.index()]
    }

    /// Enqueues `node` at bottleneck width `w`. `w` always carries the
    /// bit pattern of some link width (it is a `min` over them), so the
    /// rank lookup is exact.
    pub(crate) fn push(&mut self, w: f64, node: u32) {
        let r = self.ranks.partition_point(|x| x.total_cmp(&w).is_gt());
        debug_assert!(r < self.active && self.ranks[r].total_cmp(&w).is_eq());
        let b = &mut self.buckets[r];
        let start = if r == self.current { self.cursor } else { 0 };
        let pos = b[start..].partition_point(|&x| x < node);
        b.insert(start + pos, node);
    }

    /// Pops the widest `(width, node)` frontier entry, smallest node id
    /// first on width ties — the old heap's exact pop order.
    pub(crate) fn pop(&mut self) -> Option<(f64, u32)> {
        while self.current < self.active {
            if self.cursor < self.buckets[self.current].len() {
                let v = self.buckets[self.current][self.cursor];
                self.cursor += 1;
                return Some((self.ranks[self.current], v));
            }
            self.current += 1;
            self.cursor = 0;
        }
        None
    }
}

/// Finds the path `from → to` maximizing the minimum link width, where a
/// link's width is given by `width_of` (e.g. residual bandwidth).
/// Returns the path and its bottleneck width; `from == to` yields the
/// trivial path with infinite width.
pub fn widest_path<F: LinkFilter>(
    net: &Network,
    from: NodeId,
    to: NodeId,
    filter: &F,
    width_of: impl Fn(LinkId) -> f64,
) -> Option<(Path, f64)> {
    with_thread_scratch(|scratch| widest_path_in(net, from, to, filter, width_of, scratch))
}

/// Like [`widest_path`], but runs in a caller-provided scratch so
/// repeated queries reuse one set of working buffers.
pub fn widest_path_in<F: LinkFilter>(
    net: &Network,
    from: NodeId,
    to: NodeId,
    filter: &F,
    width_of: impl Fn(LinkId) -> f64,
    scratch: &mut RoutingScratch,
) -> Option<(Path, f64)> {
    if from == to {
        return Some((Path::trivial(from), f64::INFINITY));
    }
    let snap: &NetworkSnapshot = net.snapshot();
    scratch.begin(snap.node_count());
    scratch.wide.prepare(net.link_count(), &width_of);
    // The source is the unique infinite-width entry: settle it up front
    // (mirroring the old heap's first pop) so the buckets only ever see
    // link-width keys.
    scratch.relax(from, f64::INFINITY, None);
    scratch.settle(from);
    relax_arcs(snap, from, f64::INFINITY, filter, scratch);
    while let Some((width, v)) = scratch.wide.pop() {
        let node = NodeId(v);
        if scratch.is_settled(node) {
            continue;
        }
        scratch.settle(node);
        if node == to {
            break;
        }
        relax_arcs(snap, node, width, filter, scratch);
    }
    let best = scratch.width(to);
    if best == f64::NEG_INFINITY {
        return None;
    }
    let mut nodes = vec![to];
    let mut links = Vec::new();
    let mut cur = to;
    while cur != from {
        let (p, l) = scratch.prev_of(cur)?;
        nodes.push(p);
        links.push(l);
        cur = p;
    }
    nodes.reverse();
    links.reverse();
    Path::new(net, nodes, links).ok().map(|p| (p, best))
}

/// One relaxation round: widens every admitted neighbor of `node`
/// reachable through a strictly better bottleneck.
#[inline]
fn relax_arcs<F: LinkFilter>(
    snap: &NetworkSnapshot,
    node: NodeId,
    width: f64,
    filter: &F,
    scratch: &mut RoutingScratch,
) {
    for i in snap.arc_range(node) {
        let next = snap.arc_target(i);
        let link = snap.arc_link(i);
        if scratch.is_settled(next) || !filter.allows(link) {
            continue;
        }
        let w = width.min(scratch.wide.link_width(link));
        if w > scratch.width(next) {
            scratch.relax(next, w, Some((node, link)));
            scratch.wide.push(w, next.0);
        }
    }
}

/// Widest path over a residual [`NetworkState`] (width = remaining
/// bandwidth).
pub fn widest_residual_path(
    net: &Network,
    state: &NetworkState<'_>,
    from: NodeId,
    to: NodeId,
) -> Option<(Path, f64)> {
    widest_path(net, from, to, &super::NoFilter, |l| {
        state.link_remaining(l).unwrap_or(0.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::NoFilter;

    /// Diamond: top route capacity 5, bottom route capacity {9, 2}.
    fn net() -> Network {
        let mut g = Network::new();
        g.add_nodes(4);
        g.add_link(NodeId(0), NodeId(1), 1.0, 5.0).unwrap();
        g.add_link(NodeId(1), NodeId(3), 1.0, 5.0).unwrap();
        g.add_link(NodeId(0), NodeId(2), 1.0, 9.0).unwrap();
        g.add_link(NodeId(2), NodeId(3), 1.0, 2.0).unwrap();
        g
    }

    #[test]
    fn picks_max_bottleneck_route() {
        let g = net();
        let (p, w) =
            widest_path(&g, NodeId(0), NodeId(3), &NoFilter, |l| g.link(l).capacity).unwrap();
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(w, 5.0);
    }

    #[test]
    fn bottleneck_dominates_any_alternative() {
        // Brute force check: the returned width is ≥ every simple path's
        // bottleneck.
        let g = net();
        let (_, w) =
            widest_path(&g, NodeId(0), NodeId(3), &NoFilter, |l| g.link(l).capacity).unwrap();
        // The only two simple routes have bottlenecks 5 and 2.
        assert!(w >= 5.0 - 1e-12);
    }

    #[test]
    fn residual_variant_tracks_state() {
        let g = net();
        let mut s = NetworkState::new(&g);
        // Drain the top route: the answer flips to the bottom.
        s.reserve_link(LinkId(0), 4.5).unwrap();
        let (p, w) = widest_residual_path(&g, &s, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(2), NodeId(3)]);
        assert_eq!(w, 2.0);
    }

    #[test]
    fn trivial_and_unreachable() {
        let g = net();
        let (p, w) =
            widest_path(&g, NodeId(2), NodeId(2), &NoFilter, |l| g.link(l).capacity).unwrap();
        assert!(p.is_empty());
        assert!(w.is_infinite());
        let mut g2 = Network::new();
        g2.add_nodes(2);
        assert!(widest_path(&g2, NodeId(0), NodeId(1), &NoFilter, |_| 1.0).is_none());
    }

    #[test]
    fn respects_filter() {
        let g = net();
        let banned = g.link_between(NodeId(0), NodeId(1)).unwrap();
        let f = move |l: LinkId| l != banned;
        let (p, w) = widest_path(&g, NodeId(0), NodeId(3), &f, |l| g.link(l).capacity).unwrap();
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(2), NodeId(3)]);
        assert_eq!(w, 2.0);
    }

    #[test]
    fn shared_scratch_reproduces_per_call_results() {
        let g = net();
        let mut scratch = RoutingScratch::new();
        for from in g.node_ids() {
            for to in g.node_ids() {
                let fresh = widest_path(&g, from, to, &NoFilter, |l| g.link(l).capacity);
                let reused = widest_path_in(
                    &g,
                    from,
                    to,
                    &NoFilter,
                    |l| g.link(l).capacity,
                    &mut scratch,
                );
                match (fresh, reused) {
                    (Some((a, wa)), Some((b, wb))) => {
                        assert_eq!(a.nodes(), b.nodes());
                        assert_eq!(a.links(), b.links());
                        assert_eq!(wa.to_bits(), wb.to_bits());
                    }
                    (a, b) => assert_eq!(a.is_none(), b.is_none()),
                }
            }
        }
    }

    #[test]
    fn duplicate_widths_share_a_rank() {
        // Many equal-capacity links exercise the same-rank tie-breaks.
        let mut g = Network::new();
        g.add_nodes(5);
        g.add_link(NodeId(0), NodeId(1), 1.0, 4.0).unwrap();
        g.add_link(NodeId(0), NodeId(2), 1.0, 4.0).unwrap();
        g.add_link(NodeId(1), NodeId(3), 1.0, 4.0).unwrap();
        g.add_link(NodeId(2), NodeId(3), 1.0, 4.0).unwrap();
        g.add_link(NodeId(3), NodeId(4), 1.0, 4.0).unwrap();
        let (p, w) =
            widest_path(&g, NodeId(0), NodeId(4), &NoFilter, |l| g.link(l).capacity).unwrap();
        assert_eq!(w, 4.0);
        // Deterministic tie-break: the lower-id branch wins.
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(1), NodeId(3), NodeId(4)]);
    }
}
