//! The designated binary-heap routing fallback.
//!
//! The production kernels run on the monotone bucket queue
//! ([`super::bucket`]) whenever the active weight axis quantizes
//! losslessly ([`super::quant`]). When it does not — fluctuated
//! generator prices, arbitrary LARAC λ blends, zero delays — the
//! searches fall back to the classic `BinaryHeap` Dijkstra loop kept
//! here, which is also the reference implementation the differential
//! tests and the bench microbench pin the bucket kernel against.
//!
//! This is the *only* module under `crates/net/src/routing/` allowed to
//! name `BinaryHeap` (enforced by `dagsfc-lint`'s `raw-heap-routing`
//! rule); the other kernels hold their queues through the wrappers
//! exported from here.

use super::dijkstra::ArcWeight;
use super::scratch::RoutingScratch;
use super::LinkFilter;
use crate::ids::NodeId;
use crate::snapshot::NetworkSnapshot;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Max-heap entry ordered so the *cheapest* distance pops first.
///
/// Tie-break on node id keeps pop order — and therefore predecessor
/// trees — fully deterministic. The bucket kernel reproduces exactly
/// this (distance, node) pop order when it drains a bucket in ascending
/// node order.
#[derive(Debug, PartialEq)]
struct MinCostEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for MinCostEntry {}

impl Ord for MinCostEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap (a max-heap) pops the minimum distance.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for MinCostEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The fallback min-cost priority queue held by [`RoutingScratch`].
#[derive(Debug, Default)]
pub(crate) struct MinHeap(BinaryHeap<MinCostEntry>);

impl MinHeap {
    #[inline]
    pub(crate) fn clear(&mut self) {
        self.0.clear();
    }

    #[inline]
    pub(crate) fn push(&mut self, dist: f64, node: NodeId) {
        self.0.push(MinCostEntry { dist, node });
    }

    /// Pops the cheapest `(dist, node)` entry, smallest node id first on
    /// distance ties.
    #[inline]
    pub(crate) fn pop(&mut self) -> Option<(f64, NodeId)> {
        self.0.pop().map(|e| (e.dist, e.node))
    }
}

/// The weighted CSR Dijkstra loop over the scratch's binary heap. With
/// [`ArcWeight::Price`] it relaxes the identical values in the identical
/// order as the historical price-only search, so trees stay
/// bit-identical.
pub(crate) fn search_weighted_heap_in<F: LinkFilter>(
    snap: &NetworkSnapshot,
    source: NodeId,
    filter: &F,
    target: Option<NodeId>,
    scratch: &mut RoutingScratch,
    weight: ArcWeight,
) {
    scratch.begin(snap.node_count());
    scratch.relax(source, 0.0, None);
    scratch.heap.push(0.0, source);
    while let Some((d, node)) = scratch.heap.pop() {
        if scratch.is_settled(node) {
            continue;
        }
        scratch.settle(node);
        if target == Some(node) {
            break;
        }
        for i in snap.arc_range(node) {
            let next = snap.arc_target(i);
            let link = snap.arc_link(i);
            if scratch.is_settled(next) || !filter.allows(link) {
                continue;
            }
            let nd = d + weight.of(snap, i);
            if nd < scratch.dist(next) {
                scratch.relax(next, nd, Some((node, link)));
                scratch.heap.push(nd, next);
            }
        }
    }
}

/// Entry of the exact pareto label-setting queue (`csp.rs`), ordered
/// ascending by (price, delay) — implemented as a reversed `Ord` so
/// `BinaryHeap`'s max-pop yields the minimum.
#[derive(Debug)]
pub(crate) struct ParetoEntry {
    pub(crate) price: f64,
    pub(crate) delay_us: f64,
    pub(crate) label: usize,
}

impl PartialEq for ParetoEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for ParetoEntry {}
impl PartialOrd for ParetoEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ParetoEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .price
            .total_cmp(&self.price)
            .then_with(|| other.delay_us.total_cmp(&self.delay_us))
    }
}

/// The exact CSP reference's label queue: cheapest (price, delay) first.
#[derive(Debug, Default)]
pub(crate) struct ParetoQueue(BinaryHeap<ParetoEntry>);

impl ParetoQueue {
    #[inline]
    pub(crate) fn push(&mut self, entry: ParetoEntry) {
        self.0.push(entry);
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> Option<ParetoEntry> {
        self.0.pop()
    }
}
