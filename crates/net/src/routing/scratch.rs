//! Reusable, epoch-tagged scratch buffers for routing searches.
//!
//! Every Dijkstra/BFS call used to allocate fresh `dist`/`prev`/
//! `visited` vectors and a fresh priority queue, then drop them —
//! millions of short-lived allocations per sweep. [`RoutingScratch`]
//! keeps those buffers alive and *epoch-stamps* entries instead of
//! clearing them: a slot's `dist`/`prev` value is valid only when its
//! stamp equals the current search epoch, so starting a new search is a
//! single counter bump plus queue `clear()`s — no zeroing, no
//! allocation once the buffers have grown to the network size.
//!
//! One scratch hosts the working state of *all* routing kernels: the
//! bucket-queue kernel's quantized distances and radix buckets
//! ([`super::bucket`]), the binary-heap fallback's queue
//! ([`super::heap_fallback`]), the widest-path rank buckets
//! ([`super::widest`]), and an independent BFS epoch so breadth-first
//! rings may interleave with weighted searches.
//!
//! Long-lived owners ([`crate::OracleSession`], the oracle's tree
//! cache, Yen's spur loop, Steiner rounds) hold an explicit scratch and
//! pass it to the `*_in` routing entry points. Legacy entry points
//! without a scratch parameter borrow a thread-local instance via
//! [`with_thread_scratch`], falling back to a fresh scratch if the
//! thread-local is already borrowed (e.g. a filter closure that
//! recursively routes), so no code path can panic on a double borrow.

use super::bucket::RadixQueue;
use super::heap_fallback::MinHeap;
use super::widest::WideBuckets;
use crate::ids::{LinkId, NodeId};
use crate::path::Path;
use std::cell::RefCell;

/// Sentinel predecessor meaning "search source / no predecessor".
const NO_PREV: u32 = u32::MAX;

/// Reusable search state for the routing kernels.
///
/// See the [module docs](self) for the epoch-stamping scheme. A single
/// scratch serves any number of sequential searches over networks of
/// any size; buffers grow monotonically to the largest network seen.
#[derive(Debug, Default)]
pub struct RoutingScratch {
    /// Current search epoch; `stamp[v] == epoch` marks slot validity.
    epoch: u32,
    stamp: Vec<u32>,
    settled: Vec<u32>,
    dist: Vec<f64>,
    /// Quantized distances mirroring `dist` on the bucket-kernel path;
    /// valid under the same stamp.
    qdist: Vec<u32>,
    /// `(prev_node, via_link)`; `prev_node == NO_PREV` marks the source.
    prev: Vec<(u32, u32)>,
    pub(crate) heap: MinHeap,
    pub(crate) radix: RadixQueue,
    pub(crate) wide: WideBuckets,
    /// Per-query quantization buffer for LARAC `Lagrange(λ)` weights.
    pub(crate) lagrange_qw: Vec<u32>,
    /// Independent epoch/stamp pair for breadth-first searches, so a
    /// BFS may interleave with Dijkstra runs on the same scratch.
    bfs_epoch: u32,
    bfs_stamp: Vec<u32>,
    bfs_hops: Vec<u32>,
    pub(crate) queue: std::collections::VecDeque<NodeId>,
}

impl RoutingScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new weighted search over `n` nodes: bumps the epoch,
    /// grows buffers if needed, clears the heap. O(1) amortized.
    pub(crate) fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.settled.resize(n, 0);
            self.dist.resize(n, f64::INFINITY);
            self.qdist.resize(n, u32::MAX);
            self.prev.resize(n, (NO_PREV, NO_PREV));
        }
        if self.epoch == u32::MAX {
            // Epoch wrap: stale stamps could alias, so hard-reset once
            // every 2^32 searches.
            self.stamp.fill(0);
            self.settled.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.heap.clear();
    }

    /// Tentative distance of `v` in the current search.
    #[inline]
    pub(crate) fn dist(&self, v: NodeId) -> f64 {
        if self.stamp[v.index()] == self.epoch {
            self.dist[v.index()]
        } else {
            f64::INFINITY
        }
    }

    /// Tentative *quantized* distance of `v` in the current search
    /// (bucket-kernel path only).
    #[inline]
    pub(crate) fn qdist(&self, v: NodeId) -> u32 {
        if self.stamp[v.index()] == self.epoch {
            self.qdist[v.index()]
        } else {
            u32::MAX
        }
    }

    /// Tentative bottleneck width of `v` in the current search
    /// (widest-path kernel only; the width rides in the `dist` slot).
    #[inline]
    pub(crate) fn width(&self, v: NodeId) -> f64 {
        if self.stamp[v.index()] == self.epoch {
            self.dist[v.index()]
        } else {
            f64::NEG_INFINITY
        }
    }

    /// Records a relaxation: `v` reached at `d` via `prev`.
    #[inline]
    pub(crate) fn relax(&mut self, v: NodeId, d: f64, prev: Option<(NodeId, LinkId)>) {
        let i = v.index();
        self.stamp[i] = self.epoch;
        self.dist[i] = d;
        self.prev[i] = match prev {
            Some((p, l)) => (p.0, l.0),
            None => (NO_PREV, NO_PREV),
        };
    }

    /// Records a quantized relaxation: `v` reached at integer distance
    /// `q` via `prev`. The `f64` distance is reconstructed exactly —
    /// `scale` is a power of two and `q < 2³² < 2⁵³` — so downstream
    /// consumers see bit-identical values to the heap kernel's sums.
    #[inline]
    pub(crate) fn relax_q(
        &mut self,
        v: NodeId,
        q: u32,
        scale: f64,
        prev: Option<(NodeId, LinkId)>,
    ) {
        let i = v.index();
        self.stamp[i] = self.epoch;
        self.dist[i] = f64::from(q) * scale;
        self.qdist[i] = q;
        self.prev[i] = match prev {
            Some((p, l)) => (p.0, l.0),
            None => (NO_PREV, NO_PREV),
        };
    }

    /// Whether `v` is settled in the current search.
    #[inline]
    pub(crate) fn is_settled(&self, v: NodeId) -> bool {
        self.settled[v.index()] == self.epoch
    }

    /// Marks `v` settled in the current search.
    #[inline]
    pub(crate) fn settle(&mut self, v: NodeId) {
        self.settled[v.index()] = self.epoch;
    }

    /// Predecessor `(node, link)` of `v`, `None` at the source or when
    /// `v` was not reached this search.
    #[inline]
    pub(crate) fn prev_of(&self, v: NodeId) -> Option<(NodeId, LinkId)> {
        if self.stamp[v.index()] != self.epoch {
            return None;
        }
        let (p, l) = self.prev[v.index()];
        (p != NO_PREV).then_some((NodeId(p), LinkId(l)))
    }

    /// Extracts the found path `from -> to` from the predecessor chain
    /// of the current search, or `None` when `to` was not reached.
    pub(crate) fn extract_path(&self, from: NodeId, to: NodeId) -> Option<Path> {
        if !self.dist(to).is_finite() {
            return None;
        }
        let mut nodes = vec![to];
        let mut links = Vec::new();
        let mut cur = to;
        while let Some((p, l)) = self.prev_of(cur) {
            nodes.push(p);
            links.push(l);
            cur = p;
        }
        debug_assert_eq!(cur, from);
        nodes.reverse();
        links.reverse();
        // Contiguity holds by construction of the predecessor chain.
        Some(Path::from_parts_unchecked(nodes, links))
    }

    /// Starts a new breadth-first search over `n` nodes.
    pub(crate) fn bfs_begin(&mut self, n: usize) {
        if self.bfs_stamp.len() < n {
            self.bfs_stamp.resize(n, 0);
            self.bfs_hops.resize(n, 0);
        }
        if self.bfs_epoch == u32::MAX {
            self.bfs_stamp.fill(0);
            self.bfs_epoch = 0;
        }
        self.bfs_epoch += 1;
        self.queue.clear();
    }

    /// Whether `v` has been visited in the current BFS.
    #[inline]
    pub(crate) fn bfs_visited(&self, v: NodeId) -> bool {
        self.bfs_stamp[v.index()] == self.bfs_epoch
    }

    /// Marks `v` visited at `hops` in the current BFS.
    #[inline]
    pub(crate) fn bfs_visit(&mut self, v: NodeId, hops: u32) {
        self.bfs_stamp[v.index()] = self.bfs_epoch;
        self.bfs_hops[v.index()] = hops;
    }

    /// Hop count of `v` in the current BFS, if visited.
    #[inline]
    pub(crate) fn bfs_hops(&self, v: NodeId) -> Option<u32> {
        self.bfs_visited(v).then(|| self.bfs_hops[v.index()])
    }
}

thread_local! {
    static THREAD_SCRATCH: RefCell<RoutingScratch> = RefCell::new(RoutingScratch::new());
}

/// Runs `f` with the calling thread's shared [`RoutingScratch`].
///
/// Legacy scratch-less routing entry points route through here so
/// steady-state searches stay allocation-free without API churn. If the
/// thread-local is already borrowed (a filter that routes recursively),
/// `f` gets a fresh scratch instead of panicking.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut RoutingScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut RoutingScratch::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_invalidates_previous_search() {
        let mut s = RoutingScratch::new();
        s.begin(4);
        s.relax(NodeId(2), 1.5, Some((NodeId(0), LinkId(7))));
        s.settle(NodeId(2));
        assert_eq!(s.dist(NodeId(2)), 1.5);
        assert!(s.is_settled(NodeId(2)));
        assert_eq!(s.prev_of(NodeId(2)), Some((NodeId(0), LinkId(7))));

        s.begin(4);
        assert!(s.dist(NodeId(2)).is_infinite());
        assert!(!s.is_settled(NodeId(2)));
        assert_eq!(s.prev_of(NodeId(2)), None);
    }

    #[test]
    fn grows_to_larger_networks() {
        let mut s = RoutingScratch::new();
        s.begin(2);
        s.relax(NodeId(1), 3.0, None);
        s.begin(10);
        assert!(s.dist(NodeId(9)).is_infinite());
        s.relax(NodeId(9), 0.5, None);
        assert_eq!(s.dist(NodeId(9)), 0.5);
    }

    #[test]
    fn quantized_relaxation_mirrors_float_view() {
        let mut s = RoutingScratch::new();
        s.begin(4);
        assert_eq!(s.qdist(NodeId(3)), u32::MAX);
        s.relax_q(NodeId(3), 12, 0.25, Some((NodeId(1), LinkId(2))));
        assert_eq!(s.qdist(NodeId(3)), 12);
        assert_eq!(s.dist(NodeId(3)), 3.0);
        assert_eq!(s.prev_of(NodeId(3)), Some((NodeId(1), LinkId(2))));
        s.begin(4);
        assert_eq!(s.qdist(NodeId(3)), u32::MAX);
    }

    #[test]
    fn width_view_defaults_to_negative_infinity() {
        let mut s = RoutingScratch::new();
        s.begin(3);
        assert_eq!(s.width(NodeId(1)), f64::NEG_INFINITY);
        s.relax(NodeId(1), 7.5, None);
        assert_eq!(s.width(NodeId(1)), 7.5);
    }

    #[test]
    fn bfs_epochs_independent_of_dijkstra() {
        let mut s = RoutingScratch::new();
        s.begin(4);
        s.relax(NodeId(1), 1.0, None);
        s.bfs_begin(4);
        s.bfs_visit(NodeId(1), 2);
        assert_eq!(s.bfs_hops(NodeId(1)), Some(2));
        assert!(!s.bfs_visited(NodeId(3)));
        // The weighted-search view is untouched by the BFS.
        assert_eq!(s.dist(NodeId(1)), 1.0);
    }

    #[test]
    fn nested_thread_scratch_does_not_panic() {
        with_thread_scratch(|outer| {
            outer.begin(4);
            outer.relax(NodeId(0), 0.0, None);
            with_thread_scratch(|inner| {
                inner.begin(8);
                inner.relax(NodeId(7), 1.0, None);
                assert_eq!(inner.dist(NodeId(7)), 1.0);
            });
            // Outer borrow still valid and unclobbered.
            assert_eq!(outer.dist(NodeId(0)), 0.0);
        });
    }
}
