//! Link-disjoint path pairs (Bhandari's algorithm).
//!
//! Survivable embeddings protect each real-path with a link-disjoint
//! backup so a single link failure cannot sever a meta-path. Picking the
//! backup greedily (shortest path, then shortest path avoiding it) fails
//! on *trap topologies*; Bhandari's algorithm finds the pair with
//! minimum **total** cost when one exists:
//!
//! 1. find a cheapest path `P1` (Dijkstra);
//! 2. in a directed view, remove `P1`'s forward arcs and negate its
//!    reverse arcs;
//! 3. find a cheapest path `P2` in the modified graph (Bellman–Ford —
//!    negative arcs are confined to `P1`'s reversals, no negative
//!    cycles);
//! 4. drop arc pairs used in opposite directions and recombine the rest
//!    into two link-disjoint paths.

use super::{dijkstra::min_cost_path, LinkFilter};
use crate::fxmap::FxHashMap;
use crate::graph::Network;
use crate::ids::{LinkId, NodeId};
use crate::path::Path;

/// A link-disjoint pair of paths with minimal total price.
#[derive(Debug, Clone)]
pub struct DisjointPair {
    /// First path (by construction never pricier than the second).
    pub primary: Path,
    /// Second, link-disjoint path.
    pub backup: Path,
}

impl DisjointPair {
    /// Sum of both paths' prices.
    pub fn total_price(&self, net: &Network) -> f64 {
        self.primary.price(net) + self.backup.price(net)
    }
}

/// Finds the min-total-cost pair of link-disjoint paths `from → to`, or
/// `None` when no such pair exists (a bridge separates the endpoints).
///
/// `from == to` is rejected (no meaningful disjoint pair).
pub fn disjoint_path_pair<F: LinkFilter>(
    net: &Network,
    from: NodeId,
    to: NodeId,
    filter: &F,
) -> Option<DisjointPair> {
    if from == to {
        return None;
    }
    let p1 = min_cost_path(net, from, to, filter)?;

    // Directed arc view: arc = (link, forward?) where forward means
    // a→b with a = link.a. P1's arcs become: forward direction removed,
    // reverse direction negated.
    let mut p1_arcs: FxHashMap<LinkId, bool> = FxHashMap::default(); // link -> traversed a→b?
    {
        let nodes = p1.nodes();
        for (i, &l) in p1.links().iter().enumerate() {
            let link = net.link(l);
            p1_arcs.insert(l, link.a == nodes[i]);
        }
    }

    // Bellman–Ford over the modified arc costs.
    let n = net.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
    dist[from.index()] = 0.0;
    for _ in 0..n {
        let mut changed = false;
        for l in net.link_ids() {
            if !filter.allows(l) {
                continue;
            }
            let link = net.link(l);
            // Each undirected link yields two arcs unless on P1.
            let arcs: [(NodeId, NodeId, f64); 2] = match p1_arcs.get(&l) {
                Some(&forward) => {
                    let (u, v) = if forward {
                        (link.a, link.b)
                    } else {
                        (link.b, link.a)
                    };
                    // forward arc (u→v) removed; reverse arc negated.
                    [(v, u, -link.price), (v, u, -link.price)]
                }
                None => [(link.a, link.b, link.price), (link.b, link.a, link.price)],
            };
            for &(u, v, w) in &arcs {
                if dist[u.index()].is_finite() && dist[u.index()] + w < dist[v.index()] - 1e-12 {
                    dist[v.index()] = dist[u.index()] + w;
                    prev[v.index()] = Some((u, l));
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    if !dist[to.index()].is_finite() {
        return None; // no second path: endpoints share a bridge
    }
    // Reconstruct P2's arc multiset.
    let mut p2_links: Vec<LinkId> = Vec::new();
    {
        let mut cur = to;
        let mut guard = 0;
        while cur != from {
            // lint:allow(expect) — invariant: finite dist implies predecessor
            let (p, l) = prev[cur.index()].expect("finite dist implies predecessor");
            p2_links.push(l);
            cur = p;
            guard += 1;
            if guard > n {
                return None; // defensive: malformed predecessor chain
            }
        }
    }

    // Cancellation: links used by P1 and re-used (reversed) by P2 vanish.
    // A sorted Vec (paths are short) keeps the decomposition below
    // deterministic, unlike the randomly-seeded std HashSet it replaces.
    let mut surviving: Vec<LinkId> = p1.links().to_vec();
    for l in &p2_links {
        if let Some(pos) = surviving.iter().position(|x| x == l) {
            surviving.swap_remove(pos);
        } else {
            surviving.push(*l);
        }
    }
    surviving.sort_unstable();

    // Decompose the surviving link set into two link-disjoint from→to
    // paths by walking adjacency.
    let mut adj: FxHashMap<NodeId, Vec<LinkId>> = FxHashMap::default();
    for &l in &surviving {
        let link = net.link(l);
        adj.entry(link.a).or_default().push(l);
        adj.entry(link.b).or_default().push(l);
    }
    let mut extract = |start: NodeId| -> Option<Path> {
        let mut nodes = vec![start];
        let mut links = Vec::new();
        let mut cur = start;
        let mut guard = 0;
        while cur != to {
            let candidates = adj.get_mut(&cur)?;
            let l = candidates.pop()?;
            let link = net.link(l);
            let nxt = link.other(cur);
            // Remove the mirrored entry.
            if let Some(v) = adj.get_mut(&nxt) {
                if let Some(pos) = v.iter().position(|&x| x == l) {
                    v.swap_remove(pos);
                }
            }
            nodes.push(nxt);
            links.push(l);
            cur = nxt;
            guard += 1;
            if guard > surviving.len() + 1 {
                return None;
            }
        }
        Path::new(net, nodes, links).ok()
    };
    let a = extract(from)?;
    let b = extract(from)?;
    debug_assert!(
        a.links().iter().all(|l| !b.links().contains(l)),
        "paths must be link-disjoint"
    );
    let (primary, backup) = if a.price(net) <= b.price(net) {
        (a, b)
    } else {
        (b, a)
    };
    Some(DisjointPair { primary, backup })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::NoFilter;

    /// The classic trap topology: the global shortest path uses the only
    /// bridge-free crossing in a way that blocks a naive second path,
    /// while a disjoint pair exists.
    ///
    /// ```text
    ///     1 ── 2
    ///   / |     \
    ///  0  |      5
    ///   \ |     /
    ///     3 ── 4
    /// ```
    /// Prices: 0-1=1, 1-2=1, 2-5=1 (top, total 3); 0-3=1, 3-4=4, 4-5=1
    /// (bottom, total 6); trap diagonal 1-3=0.1.
    fn trap() -> Network {
        let mut g = Network::new();
        g.add_nodes(6);
        g.add_link(NodeId(0), NodeId(1), 1.0, 10.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 1.0, 10.0).unwrap();
        g.add_link(NodeId(2), NodeId(5), 1.0, 10.0).unwrap();
        g.add_link(NodeId(0), NodeId(3), 1.0, 10.0).unwrap();
        g.add_link(NodeId(3), NodeId(4), 4.0, 10.0).unwrap();
        g.add_link(NodeId(4), NodeId(5), 1.0, 10.0).unwrap();
        g.add_link(NodeId(1), NodeId(3), 0.1, 10.0).unwrap();
        g
    }

    #[test]
    fn finds_disjoint_pair_in_trap() {
        let g = trap();
        let pair = disjoint_path_pair(&g, NodeId(0), NodeId(5), &NoFilter).unwrap();
        // Disjointness.
        for l in pair.primary.links() {
            assert!(!pair.backup.links().contains(l));
        }
        assert_eq!(pair.primary.source(), NodeId(0));
        assert_eq!(pair.primary.target(), NodeId(5));
        assert_eq!(pair.backup.source(), NodeId(0));
        assert_eq!(pair.backup.target(), NodeId(5));
        // Optimal pair: top (3.0) + bottom (6.0) = 9.0 — the diagonal
        // cannot be in any disjoint pair covering both sides.
        assert!((pair.total_price(&g) - 9.0).abs() < 1e-9);
        assert!(pair.primary.price(&g) <= pair.backup.price(&g));
    }

    #[test]
    fn greedy_would_fail_where_bhandari_succeeds() {
        // Make the trap bite: cheapest single path rides the diagonal,
        // and removing it leaves no second path through node 1 or 3.
        let mut g = Network::new();
        g.add_nodes(4);
        // Chain 0-1-2-3 (1 each) is the unique cheapest path; the
        // chords 0-2 and 1-3 (2.5 each) are pricier.
        g.add_link(NodeId(0), NodeId(1), 1.0, 10.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 1.0, 10.0).unwrap();
        g.add_link(NodeId(2), NodeId(3), 1.0, 10.0).unwrap();
        g.add_link(NodeId(0), NodeId(2), 2.5, 10.0).unwrap();
        g.add_link(NodeId(1), NodeId(3), 2.5, 10.0).unwrap();
        // Cheapest path: 0-1-2-3 (3.0). Excluding its links, the leftover
        // graph 0-2, 1-3 is disconnected from 0→3: greedy fails.
        let p1 = min_cost_path(&g, NodeId(0), NodeId(3), &NoFilter).unwrap();
        let excluded: Vec<LinkId> = p1.links().to_vec();
        let greedy_backup = min_cost_path(&g, NodeId(0), NodeId(3), &move |l: LinkId| {
            !excluded.contains(&l)
        });
        assert!(
            greedy_backup.is_none(),
            "trap must defeat the greedy strategy"
        );
        // Bhandari still finds the pair 0-1-3 (3.5) and 0-2-3 (3.5).
        let pair = disjoint_path_pair(&g, NodeId(0), NodeId(3), &NoFilter).unwrap();
        assert!((pair.total_price(&g) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn bridge_means_no_pair() {
        let mut g = Network::new();
        g.add_nodes(3);
        g.add_link(NodeId(0), NodeId(1), 1.0, 10.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 1.0, 10.0).unwrap();
        assert!(disjoint_path_pair(&g, NodeId(0), NodeId(2), &NoFilter).is_none());
    }

    #[test]
    fn same_endpoint_rejected() {
        let g = trap();
        assert!(disjoint_path_pair(&g, NodeId(1), NodeId(1), &NoFilter).is_none());
    }

    #[test]
    fn respects_filter() {
        let g = trap();
        // Ban the top path's middle link: the only disjoint pair must
        // route around it or fail. Banning 1-2 leaves top unusable, so
        // pair must be (0-1-3-4-5??) — 1-3 diagonal + bottom... the two
        // paths 0-1-3?… Let's just require: if a pair comes back, it is
        // disjoint and avoids the banned link.
        let banned = g.link_between(NodeId(1), NodeId(2)).unwrap();
        if let Some(pair) =
            disjoint_path_pair(&g, NodeId(0), NodeId(5), &move |l: LinkId| l != banned)
        {
            assert!(!pair.primary.links().contains(&banned));
            assert!(!pair.backup.links().contains(&banned));
            for l in pair.primary.links() {
                assert!(!pair.backup.links().contains(l));
            }
        }
    }

    #[test]
    fn pair_total_never_below_twice_shortest() {
        let g = trap();
        let shortest = min_cost_path(&g, NodeId(0), NodeId(5), &NoFilter)
            .unwrap()
            .price(&g);
        let pair = disjoint_path_pair(&g, NodeId(0), NodeId(5), &NoFilter).unwrap();
        assert!(pair.total_price(&g) >= 2.0 * shortest - 1e-9);
    }
}
