//! Heuristic Steiner trees for multicast routing
//! (Takahashi–Matsuyama, 1980).
//!
//! The DAG-SFC cost model charges a layer's inter-layer meta-paths as a
//! *multicast*: a link shared by several of them is paid once. Routing
//! each meta-path independently (even by min-cost paths) does not
//! maximize that sharing; the cheapest shared structure is a Steiner
//! tree over {start} ∪ {parallel VNF nodes} — NP-hard, so we use the
//! classic 2-approximation: grow the tree by repeatedly connecting the
//! closest unconnected terminal via its cheapest path to the current
//! tree.
//!
//! Tree membership and parent pointers are `NodeId`-indexed vectors
//! (not hash structures), and every per-terminal Dijkstra of every
//! round shares one [`RoutingScratch`]; tree members are scanned in
//! insertion order, so distance ties resolve deterministically.
//!
//! This powers the `MBBE-ST` extension solver in `dagsfc-core`.

use super::dijkstra::search_in;
use super::scratch::{with_thread_scratch, RoutingScratch};
use super::LinkFilter;
use crate::graph::Network;
use crate::ids::{LinkId, NodeId};
use crate::path::Path;
use crate::snapshot::NetworkSnapshot;

/// Sentinel for "no parent pointer" in the tree arrays.
const NO_PARENT: u32 = u32::MAX;

/// A multicast routing solution: a tree spanning the root and all
/// terminals, plus the per-terminal root→terminal paths inside it.
#[derive(Debug, Clone)]
pub struct MulticastTree {
    /// Per-terminal path (root → terminal), aligned with the `targets`
    /// argument of [`multicast_tree`].
    pub paths: Vec<Path>,
    /// The distinct links of the tree.
    pub tree_links: Vec<LinkId>,
    /// Total price of the tree links (what the multicast pays).
    pub tree_price: f64,
}

/// Builds a Takahashi–Matsuyama Steiner tree from `root` to every node
/// in `targets`, using only links admitted by `filter`.
///
/// Duplicate targets and targets equal to the root are handled
/// (trivial/shared paths). Returns `None` if any target is unreachable.
pub fn multicast_tree<F: LinkFilter>(
    net: &Network,
    root: NodeId,
    targets: &[NodeId],
    filter: &F,
) -> Option<MulticastTree> {
    with_thread_scratch(|scratch| multicast_tree_in(net, root, targets, filter, scratch))
}

/// Like [`multicast_tree`], but runs every per-terminal search in a
/// caller-provided scratch.
pub fn multicast_tree_in<F: LinkFilter>(
    net: &Network,
    root: NodeId,
    targets: &[NodeId],
    filter: &F,
    scratch: &mut RoutingScratch,
) -> Option<MulticastTree> {
    let snap: &NetworkSnapshot = net.snapshot();
    let n = snap.node_count();
    // Tree state: membership flags, members in insertion order (for
    // deterministic closest-member scans), and parent pointers toward
    // the root so final per-terminal paths are unique tree walks.
    let mut in_tree = vec![false; n];
    in_tree[root.index()] = true;
    let mut tree_nodes: Vec<NodeId> = vec![root];
    let mut parent: Vec<(u32, u32)> = vec![(NO_PARENT, NO_PARENT); n];
    let mut tree_links: Vec<LinkId> = Vec::new();

    let mut remaining: Vec<NodeId> = {
        let mut t: Vec<NodeId> = targets.to_vec();
        t.sort_unstable();
        t.dedup();
        t.retain(|&n| n != root);
        t
    };

    while !remaining.is_empty() {
        // Cheapest connection from any unconnected terminal to the tree:
        // run Dijkstra from each remaining terminal until a tree node is
        // settled. (Terminal count is small — the layer width.)
        let mut best: Option<(f64, usize, Path)> = None;
        for (i, &t) in remaining.iter().enumerate() {
            search_in(snap, t, filter, None, scratch);
            let mut closest: Option<(f64, NodeId)> = None;
            for &m in &tree_nodes {
                let d = scratch.dist(m);
                if d.is_finite() && closest.is_none_or(|(bd, _)| d < bd) {
                    closest = Some((d, m));
                }
            }
            let (d, entry) = closest?; // a terminal can't reach the tree → fail
            if best.as_ref().is_none_or(|(bd, _, _)| d < *bd) {
                // The entry was reached this search, so the path exists.
                let path = scratch.extract_path(t, entry)?;
                best = Some((d, i, path));
            }
        }
        let (_, idx, path_terminal_to_tree) = best?;
        remaining.swap_remove(idx);
        // Path runs terminal → entry; graft it onto the tree, cutting at
        // the first tree node encountered (entry by construction).
        let nodes = path_terminal_to_tree.nodes();
        let links = path_terminal_to_tree.links();
        // Walk from the entry (last node) back toward the terminal,
        // setting parent pointers for newly added nodes.
        for i in (0..links.len()).rev() {
            let child = nodes[i];
            let par = nodes[i + 1];
            if in_tree[child.index()] {
                // The spur re-touches the tree; everything from here to
                // the terminal is already grafted in later iterations.
                continue;
            }
            in_tree[child.index()] = true;
            tree_nodes.push(child);
            parent[child.index()] = (par.0, links[i].0);
            tree_links.push(links[i]);
        }
    }

    // Per-terminal path: walk parent pointers terminal → root, reverse.
    let mut paths = Vec::with_capacity(targets.len());
    for &t in targets {
        let mut nodes = vec![t];
        let mut links = Vec::new();
        let mut cur = t;
        while cur != root {
            let (p, l) = parent[cur.index()];
            debug_assert_ne!(p, NO_PARENT, "terminal is in the tree");
            nodes.push(NodeId(p));
            links.push(LinkId(l));
            cur = NodeId(p);
        }
        nodes.reverse();
        links.reverse();
        paths.push(if links.is_empty() {
            Path::trivial(root)
        } else {
            // lint:allow(expect) — invariant: tree paths are contiguous
            Path::new(net, nodes, links).expect("tree paths are contiguous")
        });
    }

    let tree_price = tree_links.iter().map(|&l| net.link(l).price).sum();
    Some(MulticastTree {
        paths,
        tree_links,
        tree_price,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::NoFilter;
    use std::collections::HashSet;

    /// A "comb": a cheap chain 0—1—2—3 (1.0, 0.5, 0.5) with pricier
    /// direct shortcuts 0—2 and 0—3 (1.3 each). Each terminal's own
    /// shortest path from the root is disjoint from the others (1 via
    /// the chain head, 2 and 3 via their shortcuts), but a Steiner tree
    /// that rides the chain shares almost everything.
    fn comb() -> Network {
        let mut g = Network::new();
        g.add_nodes(4);
        g.add_link(NodeId(0), NodeId(1), 1.0, 10.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 0.5, 10.0).unwrap();
        g.add_link(NodeId(2), NodeId(3), 0.5, 10.0).unwrap();
        g.add_link(NodeId(0), NodeId(2), 1.3, 10.0).unwrap();
        g.add_link(NodeId(0), NodeId(3), 1.3, 10.0).unwrap();
        g
    }

    #[test]
    fn shares_the_chain() {
        let g = comb();
        let targets = [NodeId(1), NodeId(2), NodeId(3)];
        let mt = multicast_tree(&g, NodeId(0), &targets, &NoFilter).unwrap();
        // TM grows: 0→1 (1.0), then 2 joins at 1 (0.5), then 3 joins at
        // 2 (0.5): tree price 2.0.
        assert!((mt.tree_price - 2.0).abs() < 1e-9, "{}", mt.tree_price);
        assert_eq!(mt.tree_links.len(), 3);
        for (p, (&t, hops)) in mt.paths.iter().zip(targets.iter().zip([1usize, 2, 3])) {
            assert_eq!(p.source(), NodeId(0));
            assert_eq!(p.target(), t);
            assert_eq!(p.len(), hops, "path to {t} must ride the chain");
        }
    }

    #[test]
    fn beats_independent_shortest_paths_here() {
        let g = comb();
        let targets = [NodeId(1), NodeId(2), NodeId(3)];
        let mt = multicast_tree(&g, NodeId(0), &targets, &NoFilter).unwrap();
        // Independent shortest paths are disjoint (1.0 + 1.3 + 1.3), so
        // even multicast dedup cannot help them: 3.6 vs the tree's 2.0.
        let independent: f64 = targets
            .iter()
            .map(|&t| {
                super::super::min_cost_path(&g, NodeId(0), t, &NoFilter)
                    .unwrap()
                    .price(&g)
            })
            .sum();
        assert!((independent - 3.6).abs() < 1e-9);
        assert!(mt.tree_price < independent);
    }

    #[test]
    fn single_target_is_shortest_path() {
        let g = comb();
        let mt = multicast_tree(&g, NodeId(0), &[NodeId(2)], &NoFilter).unwrap();
        // Direct shortcut (1.3) beats the chain route (1.5).
        assert!((mt.tree_price - 1.3).abs() < 1e-9);
        assert_eq!(mt.paths[0].len(), 1);
    }

    #[test]
    fn root_and_duplicate_targets() {
        let g = comb();
        let targets = [NodeId(0), NodeId(2), NodeId(2)];
        let mt = multicast_tree(&g, NodeId(0), &targets, &NoFilter).unwrap();
        assert_eq!(mt.paths.len(), 3);
        assert!(mt.paths[0].is_empty()); // root → root
        assert_eq!(mt.paths[1], mt.paths[2]); // duplicates share
    }

    #[test]
    fn unreachable_target_fails() {
        let mut g = comb();
        let isolated = g.add_node();
        assert!(multicast_tree(&g, NodeId(0), &[isolated], &NoFilter).is_none());
    }

    #[test]
    fn respects_filter() {
        let g = comb();
        // Ban the chain head 0—1: node 1 must be reached via 0—2—1.
        let head = g.link_between(NodeId(0), NodeId(1)).unwrap();
        let f = move |l: LinkId| l != head;
        let mt = multicast_tree(&g, NodeId(0), &[NodeId(1), NodeId(2), NodeId(3)], &f).unwrap();
        for p in &mt.paths {
            assert!(!p.links().contains(&head));
        }
        // Tree: 0—2 (1.3) + 2—1 (0.5) + 2—3 (0.5) = 2.3.
        assert!((mt.tree_price - 2.3).abs() < 1e-9, "{}", mt.tree_price);
    }

    #[test]
    fn tree_is_acyclic() {
        let g = comb();
        let mt =
            multicast_tree(&g, NodeId(0), &[NodeId(1), NodeId(2), NodeId(3)], &NoFilter).unwrap();
        // |tree nodes| = |tree links| + 1 for a tree; nodes touched:
        let mut nodes: HashSet<NodeId> = HashSet::new();
        for &l in &mt.tree_links {
            nodes.insert(g.link(l).a);
            nodes.insert(g.link(l).b);
        }
        assert_eq!(nodes.len(), mt.tree_links.len() + 1);
    }

    #[test]
    fn explicit_scratch_matches_thread_local() {
        let g = comb();
        let targets = [NodeId(1), NodeId(2), NodeId(3)];
        let mut scratch = RoutingScratch::new();
        let a = multicast_tree(&g, NodeId(0), &targets, &NoFilter).unwrap();
        let b = multicast_tree_in(&g, NodeId(0), &targets, &NoFilter, &mut scratch).unwrap();
        assert_eq!(a.tree_links, b.tree_links);
        assert_eq!(a.paths.len(), b.paths.len());
        for (pa, pb) in a.paths.iter().zip(&b.paths) {
            assert_eq!(pa.nodes(), pb.nodes());
        }
    }
}
