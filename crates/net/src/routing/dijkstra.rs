//! Min-cost (price-weighted) shortest paths via Dijkstra's algorithm.
//!
//! Link prices are the edge weights; all prices are finite and
//! non-negative by construction ([`crate::Network::add_link`] validates
//! this), so Dijkstra's preconditions hold.
//!
//! The search runs over the network's cached CSR
//! [`NetworkSnapshot`](crate::NetworkSnapshot) — a flat
//! struct-of-arrays adjacency whose arc order matches
//! [`Network::neighbors`] exactly, so results are bit-identical to the
//! historical adjacency-list implementation — and keeps its working
//! state in an epoch-tagged [`RoutingScratch`], making steady-state
//! searches allocation-free. Entry points without a scratch parameter
//! borrow a per-thread scratch transparently.

use super::scratch::{with_thread_scratch, RoutingScratch};
use super::{bucket, heap_fallback, quant, LinkFilter};
use crate::graph::Network;
use crate::ids::{LinkId, NodeId};
use crate::path::Path;
use crate::snapshot::NetworkSnapshot;

/// Which priority-queue kernel a weighted search runs on.
///
/// `Auto` — the default everywhere — takes the monotone bucket queue
/// whenever the active weight axis quantizes losslessly (see
/// [`super::quant`]) and the binary-heap fallback otherwise; the two
/// produce bit-identical trees. `Heap` forces the fallback: it exists
/// for the differential tests and the bench microbench that pin the
/// bucket kernel against the reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingKernel {
    /// Bucket queue when lossless quantization is available, else heap.
    #[default]
    Auto,
    /// Always the binary-heap reference kernel.
    Heap,
}

/// Which per-arc scalar a weighted tree build minimizes.
///
/// `Price` is the classic min-cost search; `Delay` minimizes the summed
/// link propagation delay; `Lagrange(λ)` minimizes the LARAC aggregate
/// `price + λ·delay` used by the delay-constrained oracle mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArcWeight {
    /// Link price `c_e`.
    Price,
    /// Link propagation delay `d_e` (microseconds).
    Delay,
    /// The Lagrangian aggregate `c_e + λ·d_e`.
    Lagrange(f64),
}

impl ArcWeight {
    /// The weight of arc `i` under this criterion.
    #[inline]
    pub(crate) fn of(self, snap: &NetworkSnapshot, i: usize) -> f64 {
        match self {
            ArcWeight::Price => snap.arc_price(i),
            ArcWeight::Delay => snap.arc_delay(i),
            ArcWeight::Lagrange(lambda) => snap.arc_price(i) + lambda * snap.arc_delay(i),
        }
    }

    /// A stable cache key: `Price` and `Delay` are reserved sentinels,
    /// `Lagrange(λ)` keys on the bits of λ.
    #[inline]
    pub fn cache_key(self) -> u64 {
        match self {
            ArcWeight::Price => u64::MAX,
            ArcWeight::Delay => u64::MAX - 1,
            ArcWeight::Lagrange(lambda) => lambda.to_bits(),
        }
    }
}

/// Runs the CSR Dijkstra loop, leaving distances/predecessors in
/// `scratch` under a fresh epoch.
pub(crate) fn search_in<F: LinkFilter>(
    snap: &NetworkSnapshot,
    source: NodeId,
    filter: &F,
    target: Option<NodeId>,
    scratch: &mut RoutingScratch,
) {
    search_weighted_in(snap, source, filter, target, scratch, ArcWeight::Price)
}

/// The weighted CSR Dijkstra search under the default [`RoutingKernel::Auto`]
/// dispatch.
pub(crate) fn search_weighted_in<F: LinkFilter>(
    snap: &NetworkSnapshot,
    source: NodeId,
    filter: &F,
    target: Option<NodeId>,
    scratch: &mut RoutingScratch,
    weight: ArcWeight,
) {
    search_weighted_kernel_in(
        snap,
        source,
        filter,
        target,
        scratch,
        weight,
        RoutingKernel::Auto,
    )
}

/// Kernel dispatch for the weighted CSR Dijkstra search.
///
/// Under `Auto`, `Price`/`Delay` weights ride the quantization plans
/// precomputed at snapshot build time; `Lagrange(λ)` attempts a
/// per-query quantization of the blended weights — gated on both base
/// axes being quantizable so the common non-dyadic case rejects after
/// inspecting a single arc — into a scratch-owned buffer. Whenever no
/// lossless plan exists, the search falls back to the binary-heap
/// reference loop; either way the resulting tree is bit-identical.
pub(crate) fn search_weighted_kernel_in<F: LinkFilter>(
    snap: &NetworkSnapshot,
    source: NodeId,
    filter: &F,
    target: Option<NodeId>,
    scratch: &mut RoutingScratch,
    weight: ArcWeight,
    kernel: RoutingKernel,
) {
    if kernel == RoutingKernel::Auto {
        match weight {
            ArcWeight::Price => {
                if let Some(plan) = snap.price_quant() {
                    return bucket::search_quantized_in(
                        snap,
                        source,
                        filter,
                        target,
                        scratch,
                        &plan.weights,
                        plan.scale,
                    );
                }
            }
            ArcWeight::Delay => {
                if let Some(plan) = snap.delay_quant() {
                    return bucket::search_quantized_in(
                        snap,
                        source,
                        filter,
                        target,
                        scratch,
                        &plan.weights,
                        plan.scale,
                    );
                }
            }
            ArcWeight::Lagrange(lambda) => {
                if snap.price_quant().is_some() && snap.delay_quant().is_some() {
                    let mut qw = std::mem::take(&mut scratch.lagrange_qw);
                    let scale = quant::quantize_into(
                        (0..snap.arc_count())
                            .map(|i| snap.arc_price(i) + lambda * snap.arc_delay(i)),
                        &mut qw,
                    );
                    if let Some(scale) = scale {
                        bucket::search_quantized_in(
                            snap, source, filter, target, scratch, &qw, scale,
                        );
                        scratch.lagrange_qw = qw;
                        return;
                    }
                    scratch.lagrange_qw = qw;
                }
            }
        }
    }
    heap_fallback::search_weighted_heap_in(snap, source, filter, target, scratch, weight)
}

/// Whether an [`RoutingKernel::Auto`] search over `net` under `weight`
/// would run on the bucket kernel. Diagnostic for tests and the bench
/// microbench; the `Lagrange` case performs a full trial quantization.
pub fn bucket_kernel_available(net: &Network, weight: ArcWeight) -> bool {
    let snap: &NetworkSnapshot = net.snapshot();
    match weight {
        ArcWeight::Price => snap.price_quant().is_some(),
        ArcWeight::Delay => snap.delay_quant().is_some(),
        ArcWeight::Lagrange(lambda) => {
            snap.price_quant().is_some()
                && snap.delay_quant().is_some()
                && quant::quantize_into(
                    (0..snap.arc_count()).map(|i| snap.arc_price(i) + lambda * snap.arc_delay(i)),
                    &mut Vec::new(),
                )
                .is_some()
        }
    }
}

/// A single-source shortest-path tree, answering distance and path queries
/// to every reachable node.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    source: NodeId,
    dist: Vec<f64>,
    prev: Vec<Option<(NodeId, LinkId)>>,
}

impl ShortestPathTree {
    /// Runs Dijkstra from `source`, using only links admitted by `filter`.
    ///
    /// With an early `target`, the search stops as soon as the target is
    /// settled (remaining distances stay `f64::INFINITY`).
    pub fn build<F: LinkFilter>(
        net: &Network,
        source: NodeId,
        filter: &F,
        target: Option<NodeId>,
    ) -> Self {
        with_thread_scratch(|scratch| Self::build_in(net, source, filter, target, scratch))
    }

    /// Like [`build`](Self::build), but runs in a caller-provided
    /// scratch so repeated builds (oracle cache fills, Steiner rounds)
    /// reuse one set of working buffers.
    pub fn build_in<F: LinkFilter>(
        net: &Network,
        source: NodeId,
        filter: &F,
        target: Option<NodeId>,
        scratch: &mut RoutingScratch,
    ) -> Self {
        Self::build_weighted_in(net, source, filter, target, scratch, ArcWeight::Price)
    }

    /// Builds the tree under an explicit [`ArcWeight`] criterion. The
    /// LARAC oracle mode uses this with `Delay` and `Lagrange(λ)`
    /// weights; `Price` reproduces [`build_in`](Self::build_in) exactly.
    ///
    /// `dist` values are *weights* under the chosen criterion, not
    /// prices — evaluate returned paths with [`Path::price`] /
    /// [`Path::delay_us`] when both axes matter.
    pub fn build_weighted_in<F: LinkFilter>(
        net: &Network,
        source: NodeId,
        filter: &F,
        target: Option<NodeId>,
        scratch: &mut RoutingScratch,
        weight: ArcWeight,
    ) -> Self {
        Self::build_weighted_kernel_in(
            net,
            source,
            filter,
            target,
            scratch,
            weight,
            RoutingKernel::Auto,
        )
    }

    /// Like [`build_weighted_in`](Self::build_weighted_in) with an
    /// explicit kernel choice. Production callers use `Auto`; `Heap`
    /// pins the reference kernel for differential tests and the bench
    /// microbench.
    pub fn build_weighted_kernel_in<F: LinkFilter>(
        net: &Network,
        source: NodeId,
        filter: &F,
        target: Option<NodeId>,
        scratch: &mut RoutingScratch,
        weight: ArcWeight,
        kernel: RoutingKernel,
    ) -> Self {
        let snap: &NetworkSnapshot = net.snapshot();
        search_weighted_kernel_in(snap, source, filter, target, scratch, weight, kernel);
        let n = snap.node_count();
        let mut dist = Vec::with_capacity(n);
        let mut prev = Vec::with_capacity(n);
        for v in 0..n as u32 {
            dist.push(scratch.dist(NodeId(v)));
            prev.push(scratch.prev_of(NodeId(v)));
        }
        ShortestPathTree { source, dist, prev }
    }

    /// The tree's source node.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Total price of the cheapest path to `node`, if reachable.
    pub fn dist_to(&self, node: NodeId) -> Option<f64> {
        let d = self.dist[node.index()];
        d.is_finite().then_some(d)
    }

    /// The cheapest path from the source to `node`, if reachable.
    pub fn path_to(&self, node: NodeId) -> Option<Path> {
        if !self.dist[node.index()].is_finite() {
            return None;
        }
        let mut nodes = vec![node];
        let mut links = Vec::new();
        let mut cur = node;
        while let Some((p, l)) = self.prev[cur.index()] {
            nodes.push(p);
            links.push(l);
            cur = p;
        }
        debug_assert_eq!(cur, self.source);
        nodes.reverse();
        links.reverse();
        // Contiguity holds by construction of the predecessor chain.
        Some(Path::from_parts_unchecked(nodes, links))
    }
}

/// Cheapest path from `from` to `to` using only links admitted by `filter`.
///
/// Returns `None` when `to` is unreachable. A query with `from == to`
/// yields the zero-length trivial path.
pub fn min_cost_path<F: LinkFilter>(
    net: &Network,
    from: NodeId,
    to: NodeId,
    filter: &F,
) -> Option<Path> {
    with_thread_scratch(|scratch| min_cost_path_in(net, from, to, filter, scratch))
}

/// Like [`min_cost_path`], but runs in a caller-provided scratch: the
/// only allocation in the steady state is the returned [`Path`].
pub fn min_cost_path_in<F: LinkFilter>(
    net: &Network,
    from: NodeId,
    to: NodeId,
    filter: &F,
    scratch: &mut RoutingScratch,
) -> Option<Path> {
    if from == to {
        return Some(Path::trivial(from));
    }
    let snap: &NetworkSnapshot = net.snapshot();
    search_in(snap, from, filter, Some(to), scratch);
    scratch.extract_path(from, to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::NoFilter;
    use crate::routing::RateFilter;
    use crate::state::NetworkState;

    /// Diamond: 0-1 (1.0), 0-2 (0.4), 1-3 (1.0), 2-3 (0.4), 1-2 (0.1).
    fn diamond() -> Network {
        let mut g = Network::new();
        g.add_nodes(4);
        g.add_link(NodeId(0), NodeId(1), 1.0, 10.0).unwrap();
        g.add_link(NodeId(0), NodeId(2), 0.4, 10.0).unwrap();
        g.add_link(NodeId(1), NodeId(3), 1.0, 10.0).unwrap();
        g.add_link(NodeId(2), NodeId(3), 0.4, 1.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 0.1, 10.0).unwrap();
        g
    }

    #[test]
    fn picks_cheapest_not_fewest_hops() {
        let g = diamond();
        let p = min_cost_path(&g, NodeId(0), NodeId(3), &NoFilter).unwrap();
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(2), NodeId(3)]);
        assert!((p.price(&g) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn trivial_query() {
        let g = diamond();
        let p = min_cost_path(&g, NodeId(2), NodeId(2), &NoFilter).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.source(), NodeId(2));
    }

    #[test]
    fn unreachable_returns_none() {
        let mut g = Network::new();
        g.add_nodes(3);
        g.add_link(NodeId(0), NodeId(1), 1.0, 1.0).unwrap();
        assert!(min_cost_path(&g, NodeId(0), NodeId(2), &NoFilter).is_none());
    }

    #[test]
    fn filter_reroutes_around_saturated_link() {
        let g = diamond();
        let mut s = NetworkState::new(&g);
        s.reserve_link(LinkId(3), 1.0).unwrap(); // saturate 2-3
        let f = RateFilter::new(&s, 0.5);
        let p = min_cost_path(&g, NodeId(0), NodeId(3), &f).unwrap();
        // Cheapest remaining: 0-2 (0.4) + 2-1 (0.1) + 1-3 (1.0) = 1.5.
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(2), NodeId(1), NodeId(3)]);
        assert!((p.price(&g) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn filter_can_disconnect() {
        let g = diamond();
        let never = |_l: LinkId| false;
        assert!(min_cost_path(&g, NodeId(0), NodeId(3), &never).is_none());
    }

    #[test]
    fn tree_answers_all_targets() {
        let g = diamond();
        let t = ShortestPathTree::build(&g, NodeId(0), &NoFilter, None);
        assert_eq!(t.source(), NodeId(0));
        assert!((t.dist_to(NodeId(1)).unwrap() - 0.5).abs() < 1e-12); // via 2
        assert!((t.dist_to(NodeId(2)).unwrap() - 0.4).abs() < 1e-12);
        assert!((t.dist_to(NodeId(3)).unwrap() - 0.8).abs() < 1e-12);
        let p1 = t.path_to(NodeId(1)).unwrap();
        assert_eq!(p1.nodes(), &[NodeId(0), NodeId(2), NodeId(1)]);
    }

    #[test]
    fn path_price_matches_tree_distance() {
        let g = diamond();
        let t = ShortestPathTree::build(&g, NodeId(3), &NoFilter, None);
        for n in g.node_ids() {
            let d = t.dist_to(n).unwrap();
            let p = t.path_to(n).unwrap();
            assert!((p.price(&g) - d).abs() < 1e-12);
            assert_eq!(p.source(), NodeId(3));
            assert_eq!(p.target(), n);
            assert!(!p.has_node_cycle());
        }
    }

    #[test]
    fn shared_scratch_reproduces_per_call_results() {
        let g = diamond();
        let mut scratch = RoutingScratch::new();
        for from in g.node_ids() {
            for to in g.node_ids() {
                let fresh = min_cost_path(&g, from, to, &NoFilter);
                let reused = min_cost_path_in(&g, from, to, &NoFilter, &mut scratch);
                match (fresh, reused) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.nodes(), b.nodes());
                        assert_eq!(a.links(), b.links());
                    }
                    (a, b) => assert_eq!(a.is_none(), b.is_none()),
                }
            }
        }
    }
}
