//! Monotone bucket-queue (radix heap) Dijkstra over losslessly
//! quantized `u32` arc costs.
//!
//! Classic Dial/Δ-stepping-family kernel: because Dijkstra extracts
//! keys in non-decreasing order, the priority queue never needs to hold
//! a key smaller than the last extracted one (`last`). A radix heap
//! exploits that monotonicity with 33 buckets — an entry with key `k`
//! lives in bucket `0` when `k == last` and otherwise in bucket
//! `⌊log₂(k ⊕ last)⌋ + 1` — so pushes are O(1) and every entry migrates
//! toward bucket 0 at most 32 times over the whole search: amortized
//! O(1) per operation, no comparison-heap log factor, and the working
//! arrays live in [`RoutingScratch`] so the steady state allocates
//! nothing.
//!
//! **Bit-identical to the heap kernel.** Arc weights arrive from
//! [`super::quant`] as integers `m ≥ 1` under an exact power-of-two
//! scale with `Σ m ≤ u32::MAX`, so every tentative distance the binary
//! heap computes in `f64` is the exact integer `q · scale` this kernel
//! tracks — same relaxations, same strict `<` improvements, same
//! predecessors. Pop order matches too: with strictly positive integer
//! weights, every node whose final distance is `d` is already enqueued
//! at `d` when the first key-`d` entry pops (all cheaper entries have
//! settled, and any relaxation from a key-`d` node produces keys
//! ≥ `d + 1`), so draining bucket 0 in ascending node order reproduces
//! the heap's (distance, node) tie-break exactly.

use super::scratch::RoutingScratch;
use super::LinkFilter;
use crate::ids::NodeId;
use crate::snapshot::NetworkSnapshot;

/// Bucket 0 holds keys equal to `last`; buckets 1..=32 hold keys whose
/// highest differing bit from `last` is bit 0..=31.
const BUCKETS: usize = 33;

#[inline]
fn bucket_index(key: u32, last: u32) -> usize {
    if key == last {
        0
    } else {
        (32 - (key ^ last).leading_zeros()) as usize
    }
}

/// The monotone bucket queue, embedded in [`RoutingScratch`] so its
/// arrays persist across searches.
#[derive(Debug, Default)]
pub(crate) struct RadixQueue {
    /// `(key, node)` entries; bucket 0 is kept sorted ascending by node
    /// id and drained through `cursor`.
    buckets: Vec<Vec<(u32, u32)>>,
    cursor: usize,
    /// The last extracted key (the monotone lower bound).
    last: u32,
}

impl RadixQueue {
    /// Resets the queue for a new search. O(live entries), not O(n).
    pub(crate) fn clear(&mut self) {
        if self.buckets.len() < BUCKETS {
            self.buckets.resize_with(BUCKETS, Vec::new);
        }
        for b in &mut self.buckets {
            b.clear();
        }
        self.cursor = 0;
        self.last = 0;
    }

    /// Pushes an entry. Keys must be ≥ the last popped key (Dijkstra
    /// monotonicity); a key equal to it joins the currently draining
    /// bucket at its node-sorted position.
    pub(crate) fn push(&mut self, key: u32, node: u32) {
        debug_assert!(key >= self.last, "monotonicity violated");
        let i = bucket_index(key, self.last);
        if i == 0 {
            // Keep the un-drained tail of bucket 0 sorted by node so
            // same-key inserts pop in the heap's tie-break order.
            // (Unreachable with strictly positive weights, but the
            // queue stays correct for zero-weight keys regardless.)
            let pos = self.buckets[0][self.cursor..].partition_point(|e| e.1 < node);
            self.buckets[0].insert(self.cursor + pos, (key, node));
        } else {
            self.buckets[i].push((key, node));
        }
    }

    /// Pops the minimum `(key, node)` entry, smallest node id first on
    /// key ties — the heap kernel's exact pop order.
    pub(crate) fn pop(&mut self) -> Option<(u32, u32)> {
        loop {
            if self.cursor < self.buckets[0].len() {
                let e = self.buckets[0][self.cursor];
                self.cursor += 1;
                return Some(e);
            }
            self.buckets[0].clear();
            self.cursor = 0;
            // Refill: redistribute the first nonempty bucket around its
            // minimum key. Each entry lands strictly lower, which is
            // what bounds migrations at 32 per entry.
            let i = (1..BUCKETS).find(|&i| !self.buckets[i].is_empty())?;
            // lint:allow(expect) — invariant: bucket i is nonempty
            let new_last = self.buckets[i].iter().map(|e| e.0).min().expect("nonempty");
            self.last = new_last;
            let mut moved = std::mem::take(&mut self.buckets[i]);
            for &(k, v) in &moved {
                let j = bucket_index(k, new_last);
                debug_assert!(j < i);
                self.buckets[j].push((k, v));
            }
            moved.clear();
            // Hand the emptied vector back so its capacity is reused.
            self.buckets[i] = moved;
            self.buckets[0].sort_unstable_by_key(|e| e.1);
        }
    }
}

/// The quantized CSR Dijkstra loop: identical structure to the heap
/// fallback, with `u32` keys in the radix queue and `f64` distances
/// reconstructed exactly as `key · scale`.
pub(crate) fn search_quantized_in<F: LinkFilter>(
    snap: &NetworkSnapshot,
    source: NodeId,
    filter: &F,
    target: Option<NodeId>,
    scratch: &mut RoutingScratch,
    qw: &[u32],
    scale: f64,
) {
    debug_assert_eq!(qw.len(), snap.arc_count());
    scratch.begin(snap.node_count());
    scratch.radix.clear();
    scratch.relax_q(source, 0, scale, None);
    scratch.radix.push(0, source.index() as u32);
    while let Some((key, v)) = scratch.radix.pop() {
        let node = NodeId(v);
        if scratch.is_settled(node) {
            continue;
        }
        scratch.settle(node);
        if target == Some(node) {
            break;
        }
        for i in snap.arc_range(node) {
            let next = snap.arc_target(i);
            let link = snap.arc_link(i);
            if scratch.is_settled(next) || !filter.allows(link) {
                continue;
            }
            // No overflow: Σ of all quantized arc weights ≤ u32::MAX.
            let nq = key + qw[i];
            if nq < scratch.qdist(next) {
                scratch.relax_q(next, nq, scale, Some((node, link)));
                scratch.radix.push(nq, next.index() as u32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix_pops_in_key_then_node_order() {
        let mut q = RadixQueue::default();
        q.clear();
        for (k, v) in [(5u32, 9u32), (3, 2), (5, 1), (3, 7), (8, 0)] {
            q.push(k, v);
        }
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        assert_eq!(popped, vec![(3, 2), (3, 7), (5, 1), (5, 9), (8, 0)]);
    }

    #[test]
    fn monotone_pushes_interleave_with_pops() {
        let mut q = RadixQueue::default();
        q.clear();
        q.push(0, 4);
        assert_eq!(q.pop(), Some((0, 4)));
        q.push(2, 3);
        q.push(1, 6);
        assert_eq!(q.pop(), Some((1, 6)));
        // Same-key insert while key 1 is current: joins in node order.
        q.push(1, 9);
        q.push(1, 2);
        assert_eq!(q.pop(), Some((1, 2)));
        assert_eq!(q.pop(), Some((1, 9)));
        assert_eq!(q.pop(), Some((2, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn wide_key_spread_survives_redistribution() {
        let mut q = RadixQueue::default();
        q.clear();
        let keys = [1u32, 1 << 30, 17, u32::MAX / 2, 256, 255, 2];
        for (v, &k) in keys.iter().enumerate() {
            q.push(k, v as u32);
        }
        let mut sorted = keys;
        sorted.sort_unstable();
        let mut popped = Vec::new();
        while let Some((k, _)) = q.pop() {
            popped.push(k);
        }
        assert_eq!(popped, sorted.to_vec());
    }

    #[test]
    fn clear_resets_between_searches() {
        let mut q = RadixQueue::default();
        q.clear();
        q.push(7, 1);
        q.push(9, 2);
        assert_eq!(q.pop(), Some((7, 1)));
        q.clear();
        q.push(0, 5);
        assert_eq!(q.pop(), Some((0, 5)));
        assert_eq!(q.pop(), None);
    }
}
