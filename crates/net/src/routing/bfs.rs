//! Breadth-first hop-ring expansion.
//!
//! BBE's forward search grows a node set ring by ring from a layer's start
//! node until the set's VNF inventory covers the layer (§4.2); the backward
//! search does the same from a merger candidate, *restricted to the forward
//! node set* (§4.3). [`RingSearch`] is that primitive: each call to
//! [`RingSearch::next_ring`] returns the nodes at the next hop distance.
//!
//! Both searches walk the network's CSR snapshot (contiguous arc scans
//! instead of nested-`Vec` pointer chasing); [`hop_distances_in`] runs
//! in a caller-provided [`RoutingScratch`] so repeated distance maps
//! reuse one queue and one stamp array.

use super::scratch::{with_thread_scratch, RoutingScratch};
use crate::graph::Network;
use crate::ids::NodeId;
use crate::snapshot::NetworkSnapshot;

/// Incremental BFS producing one hop-ring at a time.
///
/// Ring 0 is the start node itself (the paper's first iteration where
/// `V^{F,l}_{v,1} = {v}`).
pub struct RingSearch<'a, F> {
    snap: &'a NetworkSnapshot,
    node_ok: F,
    visited: Vec<bool>,
    frontier: Vec<NodeId>,
    /// All nodes returned so far, in discovery order.
    discovered: Vec<NodeId>,
    rings_emitted: usize,
}

impl<'a, F: Fn(NodeId) -> bool> RingSearch<'a, F> {
    /// Starts a ring search at `start`; only nodes satisfying `node_ok`
    /// are entered (the start node is always admitted).
    pub fn new(net: &'a Network, start: NodeId, node_ok: F) -> Self {
        let snap: &NetworkSnapshot = net.snapshot();
        let mut visited = vec![false; snap.node_count()];
        visited[start.index()] = true;
        RingSearch {
            snap,
            node_ok,
            visited,
            frontier: vec![start],
            discovered: Vec::new(),
            rings_emitted: 0,
        }
    }

    /// Returns the next hop-ring, or `None` once the reachable set is
    /// exhausted. The first call returns `[start]`.
    pub fn next_ring(&mut self) -> Option<Vec<NodeId>> {
        if self.frontier.is_empty() {
            return None;
        }
        let ring = std::mem::take(&mut self.frontier);
        self.discovered.extend_from_slice(&ring);
        let mut next = Vec::new();
        for &n in &ring {
            for i in self.snap.arc_range(n) {
                let m = self.snap.arc_target(i);
                if !self.visited[m.index()] && (self.node_ok)(m) {
                    self.visited[m.index()] = true;
                    next.push(m);
                }
            }
        }
        next.sort_unstable();
        self.frontier = next;
        self.rings_emitted += 1;
        Some(ring)
    }

    /// All nodes emitted so far (the paper's `V^{F,l}_{v,q}` after `q`
    /// rings), in discovery order.
    #[inline]
    pub fn discovered(&self) -> &[NodeId] {
        &self.discovered
    }

    /// Number of rings emitted so far (the paper's iteration counter `q`).
    #[inline]
    pub fn rings_emitted(&self) -> usize {
        self.rings_emitted
    }

    /// Whether `node` has been emitted or queued.
    #[inline]
    pub fn seen(&self, node: NodeId) -> bool {
        self.visited[node.index()]
    }
}

/// Hop distance from `start` to every node (`None` if unreachable).
pub fn hop_distances(net: &Network, start: NodeId) -> Vec<Option<u32>> {
    with_thread_scratch(|scratch| hop_distances_in(net, start, scratch))
}

/// Like [`hop_distances`], but runs in a caller-provided scratch: the
/// only steady-state allocation is the returned distance vector.
pub fn hop_distances_in(
    net: &Network,
    start: NodeId,
    scratch: &mut RoutingScratch,
) -> Vec<Option<u32>> {
    let snap: &NetworkSnapshot = net.snapshot();
    scratch.bfs_begin(snap.node_count());
    scratch.bfs_visit(start, 0);
    scratch.queue.push_back(start);
    while let Some(n) = scratch.queue.pop_front() {
        // Queued nodes always have a hop count; unwrap_or keeps the
        // loop panic-free if that invariant ever breaks.
        let d = scratch.bfs_hops(n).unwrap_or(0);
        for i in snap.arc_range(n) {
            let m = snap.arc_target(i);
            if !scratch.bfs_visited(m) {
                scratch.bfs_visit(m, d + 1);
                scratch.queue.push_back(m);
            }
        }
    }
    (0..snap.node_count() as u32)
        .map(|v| scratch.bfs_hops(NodeId(v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0-1-2-3 plus a pendant 4 attached to 1.
    fn graph() -> Network {
        let mut g = Network::new();
        g.add_nodes(5);
        g.add_link(NodeId(0), NodeId(1), 1.0, 1.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 1.0, 1.0).unwrap();
        g.add_link(NodeId(2), NodeId(3), 1.0, 1.0).unwrap();
        g.add_link(NodeId(1), NodeId(4), 1.0, 1.0).unwrap();
        g
    }

    #[test]
    fn rings_in_hop_order() {
        let g = graph();
        let mut rs = RingSearch::new(&g, NodeId(0), |_| true);
        assert_eq!(rs.next_ring().unwrap(), vec![NodeId(0)]);
        assert_eq!(rs.next_ring().unwrap(), vec![NodeId(1)]);
        assert_eq!(rs.next_ring().unwrap(), vec![NodeId(2), NodeId(4)]);
        assert_eq!(rs.next_ring().unwrap(), vec![NodeId(3)]);
        assert_eq!(rs.next_ring(), None);
        assert_eq!(rs.rings_emitted(), 4);
        assert_eq!(
            rs.discovered(),
            &[NodeId(0), NodeId(1), NodeId(2), NodeId(4), NodeId(3)]
        );
    }

    #[test]
    fn restriction_prunes_subtrees() {
        let g = graph();
        // Exclude node 1: nothing beyond the start is reachable.
        let mut rs = RingSearch::new(&g, NodeId(0), |n| n != NodeId(1));
        assert_eq!(rs.next_ring().unwrap(), vec![NodeId(0)]);
        assert_eq!(rs.next_ring(), None);
    }

    #[test]
    fn restriction_to_subset() {
        let g = graph();
        let allowed = [NodeId(0), NodeId(1), NodeId(2)];
        let mut rs = RingSearch::new(&g, NodeId(2), move |n| allowed.contains(&n));
        assert_eq!(rs.next_ring().unwrap(), vec![NodeId(2)]);
        assert_eq!(rs.next_ring().unwrap(), vec![NodeId(1)]);
        assert_eq!(rs.next_ring().unwrap(), vec![NodeId(0)]);
        assert_eq!(rs.next_ring(), None);
    }

    #[test]
    fn seen_tracks_queued_nodes() {
        let g = graph();
        let mut rs = RingSearch::new(&g, NodeId(0), |_| true);
        assert!(rs.seen(NodeId(0)));
        assert!(!rs.seen(NodeId(1)));
        rs.next_ring();
        assert!(rs.seen(NodeId(1))); // queued for the next ring
    }

    #[test]
    fn hop_distance_map() {
        let g = graph();
        let d = hop_distances(&g, NodeId(3));
        assert_eq!(d[3], Some(0));
        assert_eq!(d[2], Some(1));
        assert_eq!(d[1], Some(2));
        assert_eq!(d[0], Some(3));
        assert_eq!(d[4], Some(3));
    }

    #[test]
    fn hop_distance_unreachable() {
        let mut g = Network::new();
        g.add_nodes(2);
        let d = hop_distances(&g, NodeId(0));
        assert_eq!(d[0], Some(0));
        assert_eq!(d[1], None);
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let g = graph();
        let mut scratch = RoutingScratch::new();
        for start in g.node_ids() {
            let fresh = hop_distances(&g, start);
            let reused = hop_distances_in(&g, start, &mut scratch);
            assert_eq!(fresh, reused);
        }
    }
}
