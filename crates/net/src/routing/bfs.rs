//! Breadth-first hop-ring expansion.
//!
//! BBE's forward search grows a node set ring by ring from a layer's start
//! node until the set's VNF inventory covers the layer (§4.2); the backward
//! search does the same from a merger candidate, *restricted to the forward
//! node set* (§4.3). [`RingSearch`] is that primitive: each call to
//! [`RingSearch::next_ring`] returns the nodes at the next hop distance.

use crate::graph::Network;
use crate::ids::NodeId;

/// Incremental BFS producing one hop-ring at a time.
///
/// Ring 0 is the start node itself (the paper's first iteration where
/// `V^{F,l}_{v,1} = {v}`).
pub struct RingSearch<'a, F> {
    net: &'a Network,
    node_ok: F,
    visited: Vec<bool>,
    frontier: Vec<NodeId>,
    /// All nodes returned so far, in discovery order.
    discovered: Vec<NodeId>,
    rings_emitted: usize,
}

impl<'a, F: Fn(NodeId) -> bool> RingSearch<'a, F> {
    /// Starts a ring search at `start`; only nodes satisfying `node_ok`
    /// are entered (the start node is always admitted).
    pub fn new(net: &'a Network, start: NodeId, node_ok: F) -> Self {
        let mut visited = vec![false; net.node_count()];
        visited[start.index()] = true;
        RingSearch {
            net,
            node_ok,
            visited,
            frontier: vec![start],
            discovered: Vec::new(),
            rings_emitted: 0,
        }
    }

    /// Returns the next hop-ring, or `None` once the reachable set is
    /// exhausted. The first call returns `[start]`.
    pub fn next_ring(&mut self) -> Option<Vec<NodeId>> {
        if self.frontier.is_empty() {
            return None;
        }
        let ring = std::mem::take(&mut self.frontier);
        self.discovered.extend_from_slice(&ring);
        let mut next = Vec::new();
        for &n in &ring {
            for &(m, _) in self.net.neighbors(n) {
                if !self.visited[m.index()] && (self.node_ok)(m) {
                    self.visited[m.index()] = true;
                    next.push(m);
                }
            }
        }
        next.sort_unstable();
        self.frontier = next;
        self.rings_emitted += 1;
        Some(ring)
    }

    /// All nodes emitted so far (the paper's `V^{F,l}_{v,q}` after `q`
    /// rings), in discovery order.
    #[inline]
    pub fn discovered(&self) -> &[NodeId] {
        &self.discovered
    }

    /// Number of rings emitted so far (the paper's iteration counter `q`).
    #[inline]
    pub fn rings_emitted(&self) -> usize {
        self.rings_emitted
    }

    /// Whether `node` has been emitted or queued.
    #[inline]
    pub fn seen(&self, node: NodeId) -> bool {
        self.visited[node.index()]
    }
}

/// Hop distance from `start` to every node (`None` if unreachable).
pub fn hop_distances(net: &Network, start: NodeId) -> Vec<Option<u32>> {
    let mut dist = vec![None; net.node_count()];
    dist[start.index()] = Some(0);
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(n) = queue.pop_front() {
        // lint:allow(expect) — invariant: queued nodes have distances
        let d = dist[n.index()].expect("queued nodes have distances");
        for &(m, _) in net.neighbors(n) {
            if dist[m.index()].is_none() {
                dist[m.index()] = Some(d + 1);
                queue.push_back(m);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0-1-2-3 plus a pendant 4 attached to 1.
    fn graph() -> Network {
        let mut g = Network::new();
        g.add_nodes(5);
        g.add_link(NodeId(0), NodeId(1), 1.0, 1.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 1.0, 1.0).unwrap();
        g.add_link(NodeId(2), NodeId(3), 1.0, 1.0).unwrap();
        g.add_link(NodeId(1), NodeId(4), 1.0, 1.0).unwrap();
        g
    }

    #[test]
    fn rings_in_hop_order() {
        let g = graph();
        let mut rs = RingSearch::new(&g, NodeId(0), |_| true);
        assert_eq!(rs.next_ring().unwrap(), vec![NodeId(0)]);
        assert_eq!(rs.next_ring().unwrap(), vec![NodeId(1)]);
        assert_eq!(rs.next_ring().unwrap(), vec![NodeId(2), NodeId(4)]);
        assert_eq!(rs.next_ring().unwrap(), vec![NodeId(3)]);
        assert_eq!(rs.next_ring(), None);
        assert_eq!(rs.rings_emitted(), 4);
        assert_eq!(
            rs.discovered(),
            &[NodeId(0), NodeId(1), NodeId(2), NodeId(4), NodeId(3)]
        );
    }

    #[test]
    fn restriction_prunes_subtrees() {
        let g = graph();
        // Exclude node 1: nothing beyond the start is reachable.
        let mut rs = RingSearch::new(&g, NodeId(0), |n| n != NodeId(1));
        assert_eq!(rs.next_ring().unwrap(), vec![NodeId(0)]);
        assert_eq!(rs.next_ring(), None);
    }

    #[test]
    fn restriction_to_subset() {
        let g = graph();
        let allowed = [NodeId(0), NodeId(1), NodeId(2)];
        let mut rs = RingSearch::new(&g, NodeId(2), move |n| allowed.contains(&n));
        assert_eq!(rs.next_ring().unwrap(), vec![NodeId(2)]);
        assert_eq!(rs.next_ring().unwrap(), vec![NodeId(1)]);
        assert_eq!(rs.next_ring().unwrap(), vec![NodeId(0)]);
        assert_eq!(rs.next_ring(), None);
    }

    #[test]
    fn seen_tracks_queued_nodes() {
        let g = graph();
        let mut rs = RingSearch::new(&g, NodeId(0), |_| true);
        assert!(rs.seen(NodeId(0)));
        assert!(!rs.seen(NodeId(1)));
        rs.next_ring();
        assert!(rs.seen(NodeId(1))); // queued for the next ring
    }

    #[test]
    fn hop_distance_map() {
        let g = graph();
        let d = hop_distances(&g, NodeId(3));
        assert_eq!(d[3], Some(0));
        assert_eq!(d[2], Some(1));
        assert_eq!(d[1], Some(2));
        assert_eq!(d[0], Some(3));
        assert_eq!(d[4], Some(3));
    }

    #[test]
    fn hop_distance_unreachable() {
        let mut g = Network::new();
        g.add_nodes(2);
        let d = hop_distances(&g, NodeId(0));
        assert_eq!(d[0], Some(0));
        assert_eq!(d[1], None);
    }
}
