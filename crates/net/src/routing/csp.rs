//! Delay-constrained cheapest paths (CSP).
//!
//! Finds a cheap path whose summed link delay stays within a budget
//! `D_max` — the routing primitive behind QoS-constrained embedding.
//! Two solvers live here:
//!
//! * **LARAC** (Lagrangian Aggregated Cost) — relaxes the delay
//!   constraint into the objective and runs plain Dijkstra on the
//!   aggregate weight `c_e + λ·d_e`, bisecting λ between the pure
//!   min-price path (cheap, possibly late) and the pure min-delay path
//!   (fast, possibly pricey). Polynomial, near-optimal in practice, and
//!   *sound*: every returned path respects the budget, and `None` is
//!   returned only when even the min-delay path is late — a proof of
//!   infeasibility. The gap to optimal is the Lagrangian duality gap.
//! * **Exact pareto label-setting** — multi-criteria Dijkstra keeping
//!   the full (price, delay) pareto frontier per node. Exponential in
//!   the worst case; used as the optimality reference on small
//!   instances (differential tests, `--exact` audits).

use super::dijkstra::ArcWeight;
use super::heap_fallback::{ParetoEntry, ParetoQueue};
use super::scratch::{with_thread_scratch, RoutingScratch};
use super::{LinkFilter, ShortestPathTree};
use crate::graph::Network;
use crate::ids::NodeId;
use crate::path::Path;

/// Hard cap on LARAC λ-iterations. Convergence is geometric and
/// typically takes well under ten rounds; the cap only guards against
/// floating-point stalemates.
pub const LARAC_MAX_ITERS: usize = 32;

/// Slack applied when comparing a path delay against the budget, so
/// accumulation order cannot flip a boundary decision.
pub const DELAY_EPS: f64 = 1e-9;

/// A path annotated with both objective values.
#[derive(Debug, Clone)]
pub struct ConstrainedPath {
    /// The concrete route.
    pub path: Path,
    /// Summed link prices per unit rate.
    pub price: f64,
    /// Summed link propagation delays in microseconds.
    pub delay_us: f64,
}

impl ConstrainedPath {
    /// Annotates `path` with its price and delay under `net`.
    pub fn evaluate(net: &Network, path: Path) -> Self {
        let price = path.price(net);
        let delay_us = path.delay_us(net);
        ConstrainedPath {
            path,
            price,
            delay_us,
        }
    }
}

/// The LARAC driver, generic over the λ-subproblem solver so the
/// [`PathOracle`](crate::PathOracle) can plug in its cached weighted
/// trees while the standalone entry points below solve directly.
///
/// `cheapest(w)` must return the weight-minimal `from → to` path under
/// criterion `w` (or `None` if unreachable). The driver guarantees any
/// returned path satisfies `delay_us <= max_delay_us + DELAY_EPS`, and
/// returns `None` only when no admitted path can.
pub(crate) fn larac_core(
    mut cheapest: impl FnMut(ArcWeight) -> Option<ConstrainedPath>,
    max_delay_us: f64,
) -> Option<ConstrainedPath> {
    if max_delay_us.is_nan() || max_delay_us < 0.0 {
        return None;
    }
    let p_cost = cheapest(ArcWeight::Price)?;
    if p_cost.delay_us <= max_delay_us + DELAY_EPS {
        // The unconstrained optimum already meets the deadline.
        return Some(p_cost);
    }
    let p_delay = cheapest(ArcWeight::Delay)?;
    if p_delay.delay_us > max_delay_us + DELAY_EPS {
        // Even the fastest admitted path is late: provably infeasible.
        return None;
    }
    // Bracket: `lo` is cheap-but-late, `hi` is feasible-but-pricey.
    let mut lo = p_cost;
    let mut hi = p_delay;
    for _ in 0..LARAC_MAX_ITERS {
        let denom = lo.delay_us - hi.delay_us;
        if denom <= DELAY_EPS {
            break;
        }
        let lambda = (hi.price - lo.price) / denom;
        if !lambda.is_finite() || lambda <= 0.0 {
            break;
        }
        let r = cheapest(ArcWeight::Lagrange(lambda))?;
        let aggr_r = r.price + lambda * r.delay_us;
        let aggr_lo = lo.price + lambda * lo.delay_us;
        // λ was chosen so lo and hi tie in aggregate weight; if the new
        // minimizer ties too, λ* is optimal and `hi` is LARAC's answer.
        if (aggr_lo - aggr_r).abs() <= 1e-9 * aggr_lo.abs().max(1.0) {
            break;
        }
        if r.delay_us <= max_delay_us + DELAY_EPS {
            hi = r;
        } else {
            lo = r;
        }
    }
    Some(hi)
}

/// LARAC delay-constrained cheapest path, with per-call scratch.
pub fn constrained_path<F: LinkFilter>(
    net: &Network,
    from: NodeId,
    to: NodeId,
    filter: &F,
    max_delay_us: f64,
) -> Option<ConstrainedPath> {
    with_thread_scratch(|scratch| constrained_path_in(net, from, to, filter, max_delay_us, scratch))
}

/// Like [`constrained_path`], but runs in a caller-provided scratch.
pub fn constrained_path_in<F: LinkFilter>(
    net: &Network,
    from: NodeId,
    to: NodeId,
    filter: &F,
    max_delay_us: f64,
    scratch: &mut RoutingScratch,
) -> Option<ConstrainedPath> {
    if max_delay_us.is_nan() || max_delay_us < 0.0 {
        return None;
    }
    if from == to {
        return Some(ConstrainedPath::evaluate(net, Path::trivial(from)));
    }
    larac_core(
        |w| {
            let tree = ShortestPathTree::build_weighted_in(net, from, filter, Some(to), scratch, w);
            tree.path_to(to).map(|p| ConstrainedPath::evaluate(net, p))
        },
        max_delay_us,
    )
}

/// Convenience wrapper returning just the route.
pub fn constrained_min_cost_path<F: LinkFilter>(
    net: &Network,
    from: NodeId,
    to: NodeId,
    filter: &F,
    max_delay_us: f64,
) -> Option<Path> {
    constrained_path(net, from, to, filter, max_delay_us).map(|c| c.path)
}

/// A pareto label in the exact search. The (price, delay) pair rides in
/// the heap entry; the label itself only records what path
/// reconstruction needs.
struct Label {
    node: NodeId,
    /// Index of the predecessor label (`usize::MAX` for the root) and
    /// the link traversed to get here.
    parent: usize,
    via: Option<crate::ids::LinkId>,
}

/// Exact delay-constrained cheapest path by pareto label-setting.
///
/// Labels pop in price order, so the first label settled on `to` is the
/// cheapest feasible path. A popped label is discarded if some already
/// settled label at its node weakly dominates it (price and delay both
/// no worse) — this also kills zero-weight cycles. Worst-case
/// exponential label count: reserve this for small instances (it is the
/// optimality reference for LARAC differentials, not a production
/// routine).
pub fn constrained_min_cost_path_exact<F: LinkFilter>(
    net: &Network,
    from: NodeId,
    to: NodeId,
    filter: &F,
    max_delay_us: f64,
) -> Option<ConstrainedPath> {
    if max_delay_us.is_nan() || max_delay_us < 0.0 {
        return None;
    }
    if from == to {
        return Some(ConstrainedPath::evaluate(net, Path::trivial(from)));
    }
    let snap = net.snapshot();
    let mut labels: Vec<Label> = vec![Label {
        node: from,
        parent: usize::MAX,
        via: None,
    }];
    // Settled (price, delay) pairs per node; entries arrive in
    // non-decreasing price order.
    let mut settled: Vec<Vec<(f64, f64)>> = vec![Vec::new(); snap.node_count()];
    let mut heap = ParetoQueue::default();
    heap.push(ParetoEntry {
        price: 0.0,
        delay_us: 0.0,
        label: 0,
    });
    while let Some(ParetoEntry {
        price,
        delay_us,
        label,
    }) = heap.pop()
    {
        let node = labels[label].node;
        if settled[node.index()]
            .iter()
            .any(|&(_, d)| d <= delay_us + DELAY_EPS)
        {
            continue; // weakly dominated by a settled label
        }
        settled[node.index()].push((price, delay_us));
        if node == to {
            // Cheapest feasible: walk the parent chain back to the root.
            let mut nodes = Vec::new();
            let mut links = Vec::new();
            let mut cur = label;
            loop {
                let l = &labels[cur];
                nodes.push(l.node);
                match l.via {
                    Some(link) => links.push(link),
                    None => break,
                }
                cur = l.parent;
            }
            nodes.reverse();
            links.reverse();
            let path = Path::from_parts_unchecked(nodes, links);
            return Some(ConstrainedPath {
                path,
                price,
                delay_us,
            });
        }
        for i in snap.arc_range(node) {
            let link = snap.arc_link(i);
            if !filter.allows(link) {
                continue;
            }
            let nd = delay_us + snap.arc_delay(i);
            if nd > max_delay_us + DELAY_EPS {
                continue; // budget prune: delays only grow
            }
            let np = price + snap.arc_price(i);
            let next = snap.arc_target(i);
            if settled[next.index()]
                .iter()
                .any(|&(p, d)| p <= np + DELAY_EPS && d <= nd + DELAY_EPS)
            {
                continue;
            }
            labels.push(Label {
                node: next,
                parent: label,
                via: Some(link),
            });
            heap.push(ParetoEntry {
                price: np,
                delay_us: nd,
                label: labels.len() - 1,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, NetGenConfig};
    use crate::ids::LinkId;
    use crate::routing::NoFilter;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two-route square with a price/delay trade-off:
    /// top 0-1-3 is cheap (price 2) but slow (delay 100),
    /// bottom 0-2-3 is pricey (price 10) but fast (delay 10).
    fn tradeoff() -> Network {
        let mut g = Network::new();
        g.add_nodes(4);
        g.add_link_with_delay(NodeId(0), NodeId(1), 1.0, 10.0, 50.0)
            .unwrap();
        g.add_link_with_delay(NodeId(1), NodeId(3), 1.0, 10.0, 50.0)
            .unwrap();
        g.add_link_with_delay(NodeId(0), NodeId(2), 5.0, 10.0, 5.0)
            .unwrap();
        g.add_link_with_delay(NodeId(2), NodeId(3), 5.0, 10.0, 5.0)
            .unwrap();
        g
    }

    #[test]
    fn loose_budget_returns_min_cost_path() {
        let g = tradeoff();
        let c = constrained_path(&g, NodeId(0), NodeId(3), &NoFilter, 500.0).unwrap();
        assert_eq!(c.path.nodes(), &[NodeId(0), NodeId(1), NodeId(3)]);
        assert!((c.price - 2.0).abs() < 1e-12);
        assert!((c.delay_us - 100.0).abs() < 1e-12);
    }

    #[test]
    fn tight_budget_switches_to_fast_route() {
        let g = tradeoff();
        let c = constrained_path(&g, NodeId(0), NodeId(3), &NoFilter, 50.0).unwrap();
        assert_eq!(c.path.nodes(), &[NodeId(0), NodeId(2), NodeId(3)]);
        assert!((c.price - 10.0).abs() < 1e-12);
        assert!(c.delay_us <= 50.0 + DELAY_EPS);
    }

    #[test]
    fn impossible_budget_is_infeasible() {
        let g = tradeoff();
        assert!(constrained_path(&g, NodeId(0), NodeId(3), &NoFilter, 5.0).is_none());
        assert!(constrained_path(&g, NodeId(0), NodeId(3), &NoFilter, -1.0).is_none());
        assert!(
            constrained_min_cost_path_exact(&g, NodeId(0), NodeId(3), &NoFilter, 5.0).is_none()
        );
    }

    #[test]
    fn trivial_query_is_free_and_instant() {
        let g = tradeoff();
        let c = constrained_path(&g, NodeId(2), NodeId(2), &NoFilter, 0.0).unwrap();
        assert!(c.path.is_empty());
        assert_eq!(c.delay_us, 0.0);
        let e = constrained_min_cost_path_exact(&g, NodeId(2), NodeId(2), &NoFilter, 0.0).unwrap();
        assert!(e.path.is_empty());
    }

    #[test]
    fn filter_is_respected() {
        let g = tradeoff();
        // Block the fast bottom route: a tight budget becomes infeasible.
        let no_fast = |l: LinkId| l != LinkId(2) && l != LinkId(3);
        assert!(constrained_path(&g, NodeId(0), NodeId(3), &no_fast, 50.0).is_none());
        assert!(
            constrained_min_cost_path_exact(&g, NodeId(0), NodeId(3), &no_fast, 50.0).is_none()
        );
    }

    #[test]
    fn exact_matches_hand_computed_optimum() {
        let g = tradeoff();
        let e = constrained_min_cost_path_exact(&g, NodeId(0), NodeId(3), &NoFilter, 50.0).unwrap();
        assert_eq!(e.path.nodes(), &[NodeId(0), NodeId(2), NodeId(3)]);
        assert!((e.price - 10.0).abs() < 1e-12);
        let loose =
            constrained_min_cost_path_exact(&g, NodeId(0), NodeId(3), &NoFilter, 500.0).unwrap();
        assert!((loose.price - 2.0).abs() < 1e-12);
    }

    /// The acceptance-criteria differential: on a batch of random small
    /// instances, LARAC must (a) agree with the exact reference on
    /// feasibility, (b) never return a path over the budget, and
    /// (c) never beat the exact optimum.
    #[test]
    fn larac_vs_exact_differential() {
        let mut checked = 0usize;
        for seed in 0..12u64 {
            let cfg = NetGenConfig {
                nodes: 12,
                avg_degree: 3.0,
                avg_link_delay_us: 20.0,
                link_delay_fluctuation: 0.6,
                link_price_fluctuation: 0.5,
                ..NetGenConfig::default()
            };
            let g = generate(&cfg, &mut StdRng::seed_from_u64(7_000 + seed)).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..20 {
                let from = NodeId(rng.gen_range(0..g.node_count() as u32));
                let to = NodeId(rng.gen_range(0..g.node_count() as u32));
                let budget = rng.gen_range(0.0..160.0);
                let larac = constrained_path(&g, from, to, &NoFilter, budget);
                let exact = constrained_min_cost_path_exact(&g, from, to, &NoFilter, budget);
                assert_eq!(
                    larac.is_some(),
                    exact.is_some(),
                    "feasibility must agree (seed {seed}, {from} → {to}, budget {budget})"
                );
                if let (Some(l), Some(e)) = (larac, exact) {
                    assert!(
                        l.delay_us <= budget + DELAY_EPS,
                        "LARAC path violates the budget: {} > {budget}",
                        l.delay_us
                    );
                    assert!(e.delay_us <= budget + DELAY_EPS);
                    assert!(
                        l.price >= e.price - 1e-9,
                        "LARAC ({}) beats the exact optimum ({})",
                        l.price,
                        e.price
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 50, "differential exercised too few instances");
    }
}
