//! Routing algorithms over the priced network.
//!
//! * [`dijkstra`] — min-*cost* (price) paths, the paper's "minimum cost
//!   path" primitive used by MBBE, RANV, MINV and the final hop of BBE.
//! * [`bfs`] — hop-ring expansion, the primitive behind BBE's forward and
//!   backward searches.
//! * [`ksp`] — Yen's k-shortest (cheapest) loopless paths, used by the
//!   exact solver and by path enumeration diagnostics.
//! * [`steiner`] — Takahashi–Matsuyama multicast trees, powering the
//!   `MBBE-ST` extension solver's shared inter-layer routing.
//! * [`disjoint`] — Bhandari link-disjoint path pairs, powering the
//!   1+1 protection extension in `dagsfc-core`.
//! * [`widest`] — maximum-bottleneck paths over residual capacities,
//!   for admission-oriented routing under pressure.
//! * [`csp`] — delay-constrained cheapest paths: the LARAC Lagrangian
//!   relaxation plus an exact pareto-label reference, powering the
//!   QoS-constrained oracle mode.
//!
//! The weighted kernels run on a monotone bucket queue ([`bucket`])
//! whenever the active weight axis quantizes losslessly onto `u32`
//! ([`quant`]), and on the binary-heap reference kept in
//! [`heap_fallback`] — the one module here allowed to name
//! `BinaryHeap` — otherwise. Both produce bit-identical trees.

pub mod bfs;
pub(crate) mod bucket;
pub mod csp;
pub mod dijkstra;
pub mod disjoint;
pub(crate) mod heap_fallback;
pub mod ksp;
pub mod quant;
pub mod scratch;
pub mod steiner;
pub mod widest;

pub use bfs::{hop_distances, RingSearch};
pub use csp::{
    constrained_min_cost_path, constrained_min_cost_path_exact, constrained_path,
    constrained_path_in, ConstrainedPath,
};
pub use dijkstra::{
    bucket_kernel_available, min_cost_path, min_cost_path_in, ArcWeight, RoutingKernel,
    ShortestPathTree,
};
pub use disjoint::{disjoint_path_pair, DisjointPair};
pub use ksp::k_shortest_paths;
pub use quant::QuantPlan;
pub use scratch::{with_thread_scratch, RoutingScratch};
pub use steiner::{multicast_tree, MulticastTree};
pub use widest::{widest_path, widest_path_in, widest_residual_path};

use crate::ids::LinkId;
use crate::state::NetworkState;

/// Predicate deciding whether a link may be used by a routing query.
///
/// Blanket-implemented for closures; [`RateFilter`] adapts a residual
/// [`NetworkState`] and a flow rate into a filter.
pub trait LinkFilter {
    /// Whether `link` is usable.
    fn allows(&self, link: LinkId) -> bool;
}

impl<F: Fn(LinkId) -> bool> LinkFilter for F {
    #[inline]
    fn allows(&self, link: LinkId) -> bool {
        self(link)
    }
}

/// Allows every link.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFilter;

impl LinkFilter for NoFilter {
    #[inline]
    fn allows(&self, _link: LinkId) -> bool {
        true
    }
}

/// Allows links whose residual bandwidth fits a flow of `rate`.
#[derive(Clone, Copy)]
pub struct RateFilter<'a, 's> {
    state: &'s NetworkState<'a>,
    rate: f64,
}

impl<'a, 's> RateFilter<'a, 's> {
    /// Builds a filter admitting links with at least `rate` residual
    /// bandwidth in `state`.
    pub fn new(state: &'s NetworkState<'a>, rate: f64) -> Self {
        RateFilter { state, rate }
    }
}

impl LinkFilter for RateFilter<'_, '_> {
    #[inline]
    fn allows(&self, link: LinkId) -> bool {
        self.state.link_fits(link, self.rate)
    }
}
