//! Structured topology generators.
//!
//! The paper evaluates on uniform random graphs (§5.1, reproduced in
//! [`crate::generator`]). NFV-embedding studies routinely sanity-check
//! results on structured substrates too; this module provides the usual
//! suspects — data-center fat-trees, rings, 2-D grids/tori, Waxman
//! random graphs, and Barabási–Albert scale-free graphs — all priced
//! and VNF-populated with the same §5.1 conventions so they drop
//! straight into the simulation harness.

use crate::error::{NetError, NetResult};
use crate::generator::NetGenConfig;
use crate::graph::Network;
use crate::ids::{NodeId, VnfTypeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Which structured topology to build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Topology {
    /// A cycle of `n` nodes.
    Ring {
        /// Node count (≥ 3).
        n: usize,
    },
    /// A `rows × cols` 2-D mesh, optionally wrapped into a torus.
    Grid {
        /// Grid rows (≥ 2).
        rows: usize,
        /// Grid columns (≥ 2).
        cols: usize,
        /// Wrap edges around (torus).
        wrap: bool,
    },
    /// A k-ary fat-tree (k even): `k` pods, `(k/2)²` core switches,
    /// `k²/2` aggregation + `k²/2` edge switches — the standard
    /// data-center fabric. Total nodes: `(k/2)² + k²`.
    FatTree {
        /// Arity (even, ≥ 2).
        k: usize,
    },
    /// Waxman random graph: nodes at random points of the unit square,
    /// edge probability `alpha · exp(-dist / (beta · √2))`.
    Waxman {
        /// Node count.
        n: usize,
        /// Overall edge density (0, 1].
        alpha: f64,
        /// Distance decay (0, 1].
        beta: f64,
    },
    /// Barabási–Albert preferential attachment: each new node attaches
    /// `m` edges to existing nodes with probability ∝ degree.
    BarabasiAlbert {
        /// Node count (≥ m + 1).
        n: usize,
        /// Edges per new node (≥ 1).
        m: usize,
    },
}

impl Topology {
    /// The number of nodes this topology will produce.
    pub fn node_count(&self) -> usize {
        match *self {
            Topology::Ring { n } => n,
            Topology::Grid { rows, cols, .. } => rows * cols,
            Topology::FatTree { k } => (k / 2) * (k / 2) + k * k,
            Topology::Waxman { n, .. } => n,
            Topology::BarabasiAlbert { n, .. } => n,
        }
    }
}

/// Builds a structured topology, then deploys VNFs and prices everything
/// with the §5.1 conventions taken from `config` (whose `nodes` and
/// `avg_degree` fields are ignored — the topology dictates both).
pub fn build<R: Rng + ?Sized>(
    topology: Topology,
    config: &NetGenConfig,
    rng: &mut R,
) -> NetResult<Network> {
    config.validate()?;
    let edges = topology_edges(topology, rng)?;
    let n = topology.node_count();

    let mut net = Network::new();
    net.add_nodes(n);

    // VNF deployment identical to the random generator's step 3.
    for kind in 0..config.vnf_kinds {
        let vnf = VnfTypeId(kind as u16);
        let mut deployed_any = false;
        for node in 0..n as u32 {
            if rng.gen_bool(config.deploy_ratio) {
                let price = fluctuated(rng, config.avg_vnf_price, config.vnf_price_fluctuation);
                net.deploy_vnf(NodeId(node), vnf, price, config.vnf_capacity)?;
                deployed_any = true;
            }
        }
        if !deployed_any && config.ensure_full_coverage && config.deploy_ratio > 0.0 {
            let node = NodeId(rng.gen_range(0..n as u32));
            let price = fluctuated(rng, config.avg_vnf_price, config.vnf_price_fluctuation);
            net.deploy_vnf(node, vnf, price, config.vnf_capacity)?;
        }
    }

    let avg_link = config.avg_link_price();
    for (a, b) in edges {
        let price = fluctuated(rng, avg_link, config.link_price_fluctuation);
        net.add_link(NodeId(a), NodeId(b), price, config.link_capacity)?;
    }
    // Propagation delays in a dedicated trailing pass, mirroring the
    // §5.1 generator: pre-delay seeds keep their topology and prices.
    for l in 0..net.link_count() as u32 {
        let delay = fluctuated(rng, config.avg_link_delay_us, config.link_delay_fluctuation);
        net.set_link_delay(crate::ids::LinkId(l), delay)?;
    }
    Ok(net)
}

fn fluctuated<R: Rng + ?Sized>(rng: &mut R, avg: f64, fluct: f64) -> f64 {
    if fluct == 0.0 || avg == 0.0 {
        avg
    } else {
        rng.gen_range(avg * (1.0 - fluct)..=avg * (1.0 + fluct))
    }
}

fn topology_edges<R: Rng + ?Sized>(topology: Topology, rng: &mut R) -> NetResult<Vec<(u32, u32)>> {
    match topology {
        Topology::Ring { n } => {
            if n < 3 {
                return Err(NetError::InvalidParameter("ring needs ≥ 3 nodes"));
            }
            Ok((0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect())
        }
        Topology::Grid { rows, cols, wrap } => {
            if rows < 2 || cols < 2 {
                return Err(NetError::InvalidParameter("grid needs ≥ 2×2"));
            }
            let id = |r: usize, c: usize| (r * cols + c) as u32;
            let mut edges = Vec::new();
            for r in 0..rows {
                for c in 0..cols {
                    if c + 1 < cols {
                        edges.push((id(r, c), id(r, c + 1)));
                    } else if wrap && cols > 2 {
                        edges.push((id(r, c), id(r, 0)));
                    }
                    if r + 1 < rows {
                        edges.push((id(r, c), id(r + 1, c)));
                    } else if wrap && rows > 2 {
                        edges.push((id(r, c), id(0, c)));
                    }
                }
            }
            Ok(edges)
        }
        Topology::FatTree { k } => {
            if k < 2 || k % 2 != 0 {
                return Err(NetError::InvalidParameter(
                    "fat-tree arity must be even ≥ 2",
                ));
            }
            let half = k / 2;
            let cores = half * half;
            // Layout: [0, cores) core, then per pod: half aggregation,
            // then half edge switches.
            let agg = |pod: usize, i: usize| (cores + pod * k + i) as u32;
            let edge = |pod: usize, i: usize| (cores + pod * k + half + i) as u32;
            let mut edges = Vec::new();
            for pod in 0..k {
                for a in 0..half {
                    // Aggregation ↔ every edge switch in the pod.
                    for e in 0..half {
                        edges.push((agg(pod, a), edge(pod, e)));
                    }
                    // Aggregation a connects to cores [a·half, (a+1)·half).
                    for c in 0..half {
                        edges.push(((a * half + c) as u32, agg(pod, a)));
                    }
                }
            }
            Ok(edges)
        }
        Topology::Waxman { n, alpha, beta } => {
            if n < 2 {
                return Err(NetError::InvalidParameter("waxman needs ≥ 2 nodes"));
            }
            if !(0.0 < alpha && alpha <= 1.0 && 0.0 < beta && beta <= 1.0) {
                return Err(NetError::InvalidParameter(
                    "waxman alpha/beta must be in (0,1]",
                ));
            }
            let points: Vec<(f64, f64)> = (0..n)
                .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
                .collect();
            let max_dist = std::f64::consts::SQRT_2;
            let mut edges = Vec::new();
            for a in 0..n {
                for b in (a + 1)..n {
                    let d = ((points[a].0 - points[b].0).powi(2)
                        + (points[a].1 - points[b].1).powi(2))
                    .sqrt();
                    if rng.gen_bool((alpha * (-d / (beta * max_dist)).exp()).clamp(0.0, 1.0)) {
                        edges.push((a as u32, b as u32));
                    }
                }
            }
            // Waxman graphs can be disconnected; stitch components with
            // a random spanning tree over a shuffled order (the same
            // guarantee the §5.1 generator provides).
            let mut order: Vec<u32> = (0..n as u32).collect();
            order.shuffle(rng);
            let mut have: std::collections::HashSet<(u32, u32)> = edges.iter().copied().collect();
            for i in 1..n {
                let a = order[i];
                let b = order[rng.gen_range(0..i)];
                let key = (a.min(b), a.max(b));
                if have.insert(key) {
                    edges.push(key);
                }
            }
            Ok(edges)
        }
        Topology::BarabasiAlbert { n, m } => {
            if m == 0 || n <= m {
                return Err(NetError::InvalidParameter("BA needs n > m ≥ 1"));
            }
            // Seed clique of m+1 nodes, then preferential attachment via
            // the repeated-endpoint trick.
            let mut edges: Vec<(u32, u32)> = Vec::new();
            let mut endpoints: Vec<u32> = Vec::new();
            for a in 0..=m as u32 {
                for b in (a + 1)..=m as u32 {
                    edges.push((a, b));
                    endpoints.push(a);
                    endpoints.push(b);
                }
            }
            for v in (m as u32 + 1)..n as u32 {
                let mut chosen: Vec<u32> = Vec::with_capacity(m);
                while chosen.len() < m {
                    let t = endpoints[rng.gen_range(0..endpoints.len())];
                    if t != v && !chosen.contains(&t) {
                        chosen.push(t);
                    }
                }
                for t in chosen {
                    edges.push((v.min(t), v.max(t)));
                    endpoints.push(v);
                    endpoints.push(t);
                }
            }
            Ok(edges)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> NetGenConfig {
        NetGenConfig {
            vnf_kinds: 5,
            deploy_ratio: 0.5,
            ..NetGenConfig::default()
        }
    }

    #[test]
    fn ring_shape() {
        let t = Topology::Ring { n: 8 };
        let net = build(t, &cfg(), &mut StdRng::seed_from_u64(1)).unwrap();
        assert_eq!(net.node_count(), 8);
        assert_eq!(net.link_count(), 8);
        assert!(net.is_connected());
        for v in net.node_ids() {
            assert_eq!(net.degree(v), 2);
        }
        // Delays follow the configured fluctuation band.
        let c = cfg();
        for l in net.link_ids() {
            let d = net.link(l).delay_us;
            let lo = c.avg_link_delay_us * (1.0 - c.link_delay_fluctuation);
            let hi = c.avg_link_delay_us * (1.0 + c.link_delay_fluctuation);
            assert!(d >= lo - 1e-12 && d <= hi + 1e-12, "delay off: {d}");
        }
    }

    #[test]
    fn grid_and_torus() {
        let mesh = build(
            Topology::Grid {
                rows: 3,
                cols: 4,
                wrap: false,
            },
            &cfg(),
            &mut StdRng::seed_from_u64(2),
        )
        .unwrap();
        assert_eq!(mesh.node_count(), 12);
        // Mesh edges: 3·3 horizontal + 2·4 vertical = 17.
        assert_eq!(mesh.link_count(), 17);
        assert!(mesh.is_connected());

        let torus = build(
            Topology::Grid {
                rows: 3,
                cols: 4,
                wrap: true,
            },
            &cfg(),
            &mut StdRng::seed_from_u64(2),
        )
        .unwrap();
        // Torus: every node has degree 4 → 24 edges.
        assert_eq!(torus.link_count(), 24);
        for v in torus.node_ids() {
            assert_eq!(torus.degree(v), 4);
        }
    }

    #[test]
    fn fat_tree_shape() {
        let k = 4;
        let t = Topology::FatTree { k };
        let net = build(t, &cfg(), &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(net.node_count(), t.node_count());
        assert_eq!(net.node_count(), 4 + 16); // 4 cores + 16 pod switches
        assert!(net.is_connected());
        // k-ary fat-tree link count: k pods × (half² agg-edge + half²
        // agg-core) = k·(k/2)²·2 = 4·4·2 = 32.
        assert_eq!(net.link_count(), 32);
        // Core switches connect to exactly one aggregation per pod.
        for c in 0..4u32 {
            assert_eq!(net.degree(NodeId(c)), k);
        }
    }

    #[test]
    fn waxman_connected_and_seeded() {
        let t = Topology::Waxman {
            n: 40,
            alpha: 0.6,
            beta: 0.3,
        };
        let a = build(t, &cfg(), &mut StdRng::seed_from_u64(4)).unwrap();
        let b = build(t, &cfg(), &mut StdRng::seed_from_u64(4)).unwrap();
        assert!(a.is_connected());
        assert_eq!(a.link_count(), b.link_count());
        assert!(a.link_count() >= 39); // at least the stitching tree
    }

    #[test]
    fn barabasi_albert_hubs() {
        let t = Topology::BarabasiAlbert { n: 60, m: 2 };
        let net = build(t, &cfg(), &mut StdRng::seed_from_u64(5)).unwrap();
        assert!(net.is_connected());
        // Clique(3) + 57 nodes × 2 edges = 3 + 114.
        assert_eq!(net.link_count(), 117);
        // Scale-free: the max degree should far exceed the mean.
        let max_deg = net.node_ids().map(|v| net.degree(v)).max().unwrap();
        assert!(
            max_deg as f64 > 2.5 * net.avg_degree(),
            "expected a hub, max degree {max_deg} vs avg {:.1}",
            net.avg_degree()
        );
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(build(Topology::Ring { n: 2 }, &cfg(), &mut rng).is_err());
        assert!(build(
            Topology::Grid {
                rows: 1,
                cols: 5,
                wrap: false
            },
            &cfg(),
            &mut rng
        )
        .is_err());
        assert!(build(Topology::FatTree { k: 3 }, &cfg(), &mut rng).is_err());
        assert!(build(
            Topology::Waxman {
                n: 10,
                alpha: 0.0,
                beta: 0.5
            },
            &cfg(),
            &mut rng
        )
        .is_err());
        assert!(build(Topology::BarabasiAlbert { n: 3, m: 3 }, &cfg(), &mut rng).is_err());
    }

    #[test]
    fn vnfs_deployed_on_structured_topologies() {
        let net = build(
            Topology::Grid {
                rows: 5,
                cols: 5,
                wrap: false,
            },
            &cfg(),
            &mut StdRng::seed_from_u64(6),
        )
        .unwrap();
        let total: usize = net.node_ids().map(|v| net.node(v).instances().len()).sum();
        assert!(total > 0);
        for kind in 0..5u16 {
            assert!(
                !net.hosts_of(VnfTypeId(kind)).is_empty(),
                "kind {kind} missing"
            );
        }
    }

    #[test]
    fn embedding_works_on_fat_tree() {
        // Structured topologies drop into the normal solve path.
        let net = build(
            Topology::FatTree { k: 4 },
            &cfg(),
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
        // Just routing here (solvers live in dagsfc-core): cheapest path
        // between two edge switches crosses the fabric.
        let p = crate::routing::min_cost_path(
            &net,
            NodeId(6),
            NodeId(net.node_count() as u32 - 1),
            &crate::routing::NoFilter,
        )
        .unwrap();
        assert!(p.len() >= 2);
    }
}
