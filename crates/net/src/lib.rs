//! # dagsfc-net — priced cloud-network substrate
//!
//! The target-network model of the DAG-SFC paper (§3.2): a connected graph
//! of cloud nodes joined by bi-directional links, where
//!
//! * every **link** `e` has a price `c_e` per unit of traffic rate and a
//!   bandwidth capacity `r_e`;
//! * every **node** `v` hosts VNF instances `f_v(i)`, each with a rental
//!   price `c_{v,f(i)}` per rate unit and a processing capability
//!   `r_{v,f(i)}`.
//!
//! On top of the immutable [`Network`] the crate provides:
//!
//! * [`NetworkState`] — residual capacities with O(1) checkpoint/rollback,
//!   the workhorse of backtracking embedders;
//! * [`routing`] — min-cost paths (Dijkstra), hop-ring BFS expansion
//!   (the primitive behind BBE's forward/backward searches), and Yen's
//!   k-cheapest paths;
//! * [`generator`] — the paper's §5.1 random network generator, fully
//!   seeded and deterministic.
//!
//! ```
//! use dagsfc_net::{generator, NetGenConfig, NetworkState, routing, NodeId};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let cfg = NetGenConfig { nodes: 50, ..NetGenConfig::default() };
//! let net = generator::generate(&cfg, &mut StdRng::seed_from_u64(42)).unwrap();
//! assert!(net.is_connected());
//!
//! let state = NetworkState::new(&net);
//! let path = routing::min_cost_path(
//!     &net,
//!     NodeId(0),
//!     NodeId(49),
//!     &routing::RateFilter::new(&state, 1.0),
//! )
//! .unwrap();
//! assert_eq!(path.source(), NodeId(0));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod error;
pub mod export;
pub mod fault;
pub mod fxmap;
pub mod generator;
pub mod graph;
pub mod ids;
pub mod ledger;
pub mod oracle;
pub mod path;
pub mod routing;
pub mod snapshot;
pub mod state;
pub mod topologies;

pub use analysis::{analyze, GraphMetrics};
pub use error::{NetError, NetResult};
pub use export::{to_dot, DotOptions};
pub use fault::FaultEvent;
pub use fxmap::{FxBuildHasher, FxHashMap, FxHashSet};
pub use generator::NetGenConfig;
pub use graph::{Link, Network, NetworkStats, Node, VnfInstance};
pub use ids::{LinkId, NodeId, VnfTypeId};
pub use ledger::{CommitLedger, LeaseId};
pub use oracle::{OracleSession, OracleStats, PathOracle};
pub use path::Path;
pub use snapshot::{Arc32, NetworkSnapshot};
pub use state::{Checkpoint, NetworkState, CAP_EPS};
pub use topologies::Topology;
