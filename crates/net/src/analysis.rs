//! Graph analysis: structural metrics of generated networks.
//!
//! Used by the topology-robustness experiments to characterize the
//! substrates results are reported on (hop diameter, clustering,
//! degree distribution), and by tests to sanity-check generators.

use crate::graph::Network;
use crate::ids::NodeId;
use crate::routing::hop_distances;
use serde::Serialize;

/// Structural metrics of a network.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GraphMetrics {
    /// Hop diameter (longest shortest path); `None` if disconnected.
    pub diameter: Option<u32>,
    /// Mean shortest-path hop count over connected pairs.
    pub avg_hop_distance: f64,
    /// Global clustering coefficient (3·triangles / open triads).
    pub clustering: f64,
    /// Minimum node degree.
    pub min_degree: usize,
    /// Maximum node degree.
    pub max_degree: usize,
    /// Average node degree.
    pub avg_degree: f64,
}

/// Computes all metrics. O(V·E) for the distance part — intended for
/// analysis-time use, not inner loops.
pub fn analyze(net: &Network) -> GraphMetrics {
    let n = net.node_count();
    let mut diameter: Option<u32> = Some(0);
    let mut dist_sum = 0u64;
    let mut pair_count = 0u64;
    for v in net.node_ids() {
        let d = hop_distances(net, v);
        for (u, entry) in d.iter().enumerate() {
            if u == v.index() {
                continue;
            }
            match entry {
                Some(h) => {
                    dist_sum += *h as u64;
                    pair_count += 1;
                    if let Some(cur) = diameter {
                        if *h > cur {
                            diameter = Some(*h);
                        }
                    }
                }
                None => diameter = None,
            }
        }
    }

    // Clustering: count closed and open triads.
    let mut triangles = 0u64;
    let mut triads = 0u64;
    for v in net.node_ids() {
        let neigh: Vec<NodeId> = net.neighbors(v).iter().map(|&(m, _)| m).collect();
        let k = neigh.len() as u64;
        triads += k.saturating_sub(1) * k / 2;
        for (i, &a) in neigh.iter().enumerate() {
            for &b in &neigh[i + 1..] {
                if net.link_between(a, b).is_some() {
                    triangles += 1;
                }
            }
        }
    }

    let degrees: Vec<usize> = net.node_ids().map(|v| net.degree(v)).collect();
    GraphMetrics {
        diameter,
        avg_hop_distance: if pair_count == 0 {
            0.0
        } else {
            dist_sum as f64 / pair_count as f64
        },
        clustering: if triads == 0 {
            0.0
        } else {
            // Each triangle closes three triads; `triangles` here counts
            // one closure per centre node, so the sum over centres
            // already equals 3·(distinct triangles).
            triangles as f64 / triads as f64
        },
        min_degree: degrees.iter().copied().min().unwrap_or(0),
        max_degree: degrees.iter().copied().max().unwrap_or(0),
        avg_degree: if n == 0 {
            0.0
        } else {
            degrees.iter().sum::<usize>() as f64 / n as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::NetGenConfig;
    use crate::topologies::{build, Topology};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn triangle() -> Network {
        let mut g = Network::new();
        g.add_nodes(3);
        g.add_link(NodeId(0), NodeId(1), 1.0, 1.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 1.0, 1.0).unwrap();
        g.add_link(NodeId(0), NodeId(2), 1.0, 1.0).unwrap();
        g
    }

    #[test]
    fn triangle_metrics() {
        let m = analyze(&triangle());
        assert_eq!(m.diameter, Some(1));
        assert!((m.avg_hop_distance - 1.0).abs() < 1e-12);
        assert!((m.clustering - 1.0).abs() < 1e-12);
        assert_eq!(m.min_degree, 2);
        assert_eq!(m.max_degree, 2);
    }

    #[test]
    fn path_graph_metrics() {
        let mut g = Network::new();
        g.add_nodes(4);
        for i in 0..3u32 {
            g.add_link(NodeId(i), NodeId(i + 1), 1.0, 1.0).unwrap();
        }
        let m = analyze(&g);
        assert_eq!(m.diameter, Some(3));
        assert_eq!(m.clustering, 0.0);
        assert_eq!(m.min_degree, 1);
        assert_eq!(m.max_degree, 2);
        // Pair hop sum (ordered): 2·(1+2+3 + 1+2 + 1) = 20; pairs 12.
        assert!((m.avg_hop_distance - 20.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_graph_has_no_diameter() {
        let mut g = Network::new();
        g.add_nodes(3);
        g.add_link(NodeId(0), NodeId(1), 1.0, 1.0).unwrap();
        let m = analyze(&g);
        assert_eq!(m.diameter, None);
        assert_eq!(m.min_degree, 0);
    }

    #[test]
    fn ring_diameter() {
        let cfg = NetGenConfig {
            vnf_kinds: 2,
            deploy_ratio: 0.5,
            ..NetGenConfig::default()
        };
        let net = build(
            Topology::Ring { n: 10 },
            &cfg,
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap();
        let m = analyze(&net);
        assert_eq!(m.diameter, Some(5));
        assert_eq!(m.clustering, 0.0);
        assert_eq!((m.avg_degree * 10.0).round() as i64, 20);
    }

    #[test]
    fn empty_network() {
        let m = analyze(&Network::new());
        assert_eq!(m.diameter, Some(0));
        assert_eq!(m.avg_degree, 0.0);
    }
}
