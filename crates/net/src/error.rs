//! Error types for the network substrate.

use crate::ids::{LinkId, NodeId, VnfTypeId};
use std::fmt;

/// Errors produced by network construction, mutation, and routing.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// A node id referenced a node that does not exist.
    UnknownNode(NodeId),
    /// A link id referenced a link that does not exist.
    UnknownLink(LinkId),
    /// Attempted to create a self-loop link.
    SelfLoop(NodeId),
    /// Attempted to create a duplicate link between the same node pair.
    DuplicateLink(NodeId, NodeId),
    /// A VNF type is not deployed on the given node.
    VnfNotDeployed {
        /// Node that was expected to host the VNF.
        node: NodeId,
        /// The missing VNF type.
        vnf: VnfTypeId,
    },
    /// Capacity would become negative after the requested reservation.
    InsufficientVnfCapacity {
        /// Node hosting the instance.
        node: NodeId,
        /// Overloaded VNF type.
        vnf: VnfTypeId,
        /// Rate that was requested.
        requested: f64,
        /// Rate still available.
        available: f64,
    },
    /// Link bandwidth would become negative after the requested reservation.
    InsufficientBandwidth {
        /// Overloaded link.
        link: LinkId,
        /// Rate that was requested.
        requested: f64,
        /// Rate still available.
        available: f64,
    },
    /// No path satisfying the constraints exists between the endpoints.
    NoPath {
        /// Path source.
        from: NodeId,
        /// Path target.
        to: NodeId,
    },
    /// A price or capacity parameter was negative or non-finite.
    InvalidParameter(&'static str),
    /// A ledger lease id was never issued or has already been released.
    UnknownLease(u64),
    /// The link is out of service after a fault event.
    LinkUnavailable(LinkId),
    /// The node is out of service after a fault event.
    NodeUnavailable(NodeId),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetError::UnknownLink(l) => write!(f, "unknown link {l}"),
            NetError::SelfLoop(n) => write!(f, "self-loop link at {n}"),
            NetError::DuplicateLink(a, b) => write!(f, "duplicate link between {a} and {b}"),
            NetError::VnfNotDeployed { node, vnf } => {
                write!(f, "VNF {vnf} is not deployed on node {node}")
            }
            NetError::InsufficientVnfCapacity {
                node,
                vnf,
                requested,
                available,
            } => write!(
                f,
                "insufficient capacity for {vnf} on {node}: requested {requested}, available {available}"
            ),
            NetError::InsufficientBandwidth {
                link,
                requested,
                available,
            } => write!(
                f,
                "insufficient bandwidth on {link}: requested {requested}, available {available}"
            ),
            NetError::NoPath { from, to } => write!(f, "no feasible path from {from} to {to}"),
            NetError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            NetError::UnknownLease(id) => {
                write!(f, "unknown or already released lease#{id}")
            }
            NetError::LinkUnavailable(l) => write!(f, "link {l} is out of service"),
            NetError::NodeUnavailable(n) => write!(f, "node {n} is out of service"),
        }
    }
}

impl std::error::Error for NetError {}

/// Convenience result alias for this crate.
pub type NetResult<T> = Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetError::InsufficientBandwidth {
            link: LinkId(3),
            requested: 2.0,
            available: 1.0,
        };
        let s = e.to_string();
        assert!(s.contains("e3"));
        assert!(s.contains("requested 2"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(NetError::UnknownNode(NodeId(1)));
        assert!(e.to_string().contains("v1"));
    }
}
