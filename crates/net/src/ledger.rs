//! Commit/release ledger: leased resource commitments over a
//! [`NetworkState`].
//!
//! An online embedding service admits a request, commits its VNF and
//! link loads, and hands the caller back a **lease**. When the request
//! departs (a client disconnects, a trace event fires), the lease is
//! released and exactly the committed resources return to the pool. The
//! [`CommitLedger`] packages that lifecycle:
//!
//! * [`CommitLedger::commit`] reserves a whole load set **atomically** —
//!   if any single reservation fails, everything already reserved for
//!   the lease is rolled back and the state is untouched;
//! * [`CommitLedger::release`] returns a lease's resources and rejects
//!   unknown or double releases with [`NetError::UnknownLease`];
//! * every successful commit/release bumps an **epoch** counter, so
//!   residual-network caches (e.g. a daemon's shared solve context) know
//!   exactly when their snapshot went stale.
//!
//! The ledger is the serving-path twin of the solver-facing
//! checkpoint/rollback API on [`NetworkState`]: solvers backtrack within
//! one request, the ledger tracks commitments *across* requests.

use crate::error::{NetError, NetResult};
use crate::fault::FaultEvent;
use crate::fxmap::FxHashMap;
use crate::graph::Network;
use crate::ids::{LinkId, NodeId, VnfTypeId};
use crate::state::NetworkState;

/// Opaque handle to one committed load set (monotonically increasing,
/// never reused within a ledger's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LeaseId(pub u64);

impl std::fmt::Display for LeaseId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lease#{}", self.0)
    }
}

/// The loads one lease committed (kept verbatim so release restores
/// exactly what was reserved).
#[derive(Debug, Clone)]
struct LeaseRecord {
    vnf: Vec<(NodeId, VnfTypeId, f64)>,
    links: Vec<(LinkId, f64)>,
    /// The client session that committed this lease, when known. Leases
    /// whose owner disappears without releasing are *orphans*, found by
    /// [`CommitLedger::leases_owned_by`] and freed in bulk by
    /// [`CommitLedger::reclaim_owner`].
    owner: Option<u64>,
}

/// Lease-tracked resource commitments over a residual [`NetworkState`].
#[derive(Debug)]
pub struct CommitLedger<'a> {
    state: NetworkState<'a>,
    /// Active leases keyed by id: O(1) release/liveness checks with the
    /// deterministic in-repo [`FxHashMap`] (ordered views sort the ids).
    active: FxHashMap<u64, LeaseRecord>,
    next_lease: u64,
    epoch: u64,
    total_committed: u64,
    total_released: u64,
    /// Owner tag stamped onto subsequent commits (serving-path sessions
    /// set this around each request; simulation paths leave it `None`).
    default_owner: Option<u64>,
    faults_applied: u64,
    orphans_reclaimed: u64,
}

impl<'a> CommitLedger<'a> {
    /// A fresh ledger over `net` with all capacities available.
    pub fn new(net: &'a Network) -> Self {
        CommitLedger {
            state: NetworkState::new(net),
            active: FxHashMap::default(),
            next_lease: 0,
            epoch: 0,
            total_committed: 0,
            total_released: 0,
            default_owner: None,
            faults_applied: 0,
            orphans_reclaimed: 0,
        }
    }

    /// The underlying immutable network.
    #[inline]
    pub fn network(&self) -> &'a Network {
        self.state.network()
    }

    /// Read access to the residual state (remaining capacities).
    #[inline]
    pub fn state(&self) -> &NetworkState<'a> {
        &self.state
    }

    /// The change epoch: bumped by every successful commit or release.
    /// Caches of the residual network are valid exactly while the epoch
    /// they were built at is still current.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of currently outstanding leases.
    #[inline]
    pub fn active_leases(&self) -> usize {
        self.active.len()
    }

    /// Total leases ever committed.
    #[inline]
    pub fn committed_total(&self) -> u64 {
        self.total_committed
    }

    /// Total leases ever released.
    #[inline]
    pub fn released_total(&self) -> u64 {
        self.total_released
    }

    /// Materializes the current residual capacities as a fresh
    /// [`Network`] (topology and prices unchanged).
    pub fn residual(&self) -> Network {
        self.state.to_residual_network()
    }

    /// Committed-but-unreleased load across all resources — a leak
    /// detector once every lease has been released (must be ~0).
    pub fn outstanding_load(&self) -> f64 {
        self.state.total_link_load() + self.state.total_vnf_load()
    }

    /// Atomically reserves a whole load set and opens a lease for it.
    ///
    /// `vnf_loads` are `(node, kind, rate)` triples; `link_loads` are
    /// `(link, rate)` pairs (zero-rate entries are skipped). On any
    /// individual failure the partial reservation is rolled back, the
    /// state is left untouched, and the error is returned.
    pub fn commit<V, L>(&mut self, vnf_loads: V, link_loads: L) -> NetResult<LeaseId>
    where
        V: IntoIterator<Item = (NodeId, VnfTypeId, f64)>,
        L: IntoIterator<Item = (LinkId, f64)>,
    {
        let cp = self.state.checkpoint();
        let mut record = LeaseRecord {
            vnf: Vec::new(),
            links: Vec::new(),
            owner: None,
        };
        for (node, kind, rate) in vnf_loads {
            if rate <= 0.0 {
                continue;
            }
            if let Err(e) = self.state.reserve_vnf(node, kind, rate) {
                self.state.rollback(cp);
                return Err(e);
            }
            record.vnf.push((node, kind, rate));
        }
        for (link, rate) in link_loads {
            if rate <= 0.0 {
                continue;
            }
            if let Err(e) = self.state.reserve_link(link, rate) {
                self.state.rollback(cp);
                return Err(e);
            }
            record.links.push((link, rate));
        }
        record.owner = self.default_owner;
        let id = LeaseId(self.next_lease);
        self.next_lease += 1;
        self.epoch += 1;
        self.total_committed += 1;
        self.active.insert(id.0, record);
        Ok(id)
    }

    /// Releases every resource `lease` committed. Unknown ids — never
    /// issued, or already released — fail with
    /// [`NetError::UnknownLease`] and leave the state untouched.
    pub fn release(&mut self, lease: LeaseId) -> NetResult<()> {
        let record = self
            .active
            .remove(&lease.0)
            .ok_or(NetError::UnknownLease(lease.0))?;
        for &(node, kind, rate) in &record.vnf {
            self.state
                .release_vnf(node, kind, rate)
                // lint:allow(expect) — invariant: release mirrors a recorded reservation
                .expect("release mirrors a recorded reservation");
        }
        for &(link, rate) in &record.links {
            self.state
                .release_link(link, rate)
                // lint:allow(expect) — invariant: release mirrors a recorded reservation
                .expect("release mirrors a recorded reservation");
        }
        self.epoch += 1;
        self.total_released += 1;
        Ok(())
    }

    /// Whether `lease` is currently outstanding.
    pub fn is_active(&self, lease: LeaseId) -> bool {
        self.active.contains_key(&lease.0)
    }

    /// The ids of all outstanding leases, in commit order (ids are
    /// issued monotonically, so sorted order *is* commit order).
    pub fn active_lease_ids(&self) -> Vec<LeaseId> {
        let mut ids: Vec<LeaseId> = self.active.keys().map(|&id| LeaseId(id)).collect();
        ids.sort_unstable();
        ids
    }

    /// Sets the owner tag stamped onto every subsequent commit (`None`
    /// clears it). The serving path wraps each request's commit with the
    /// client session's id so the leases of a vanished client can be
    /// found and reclaimed; simulation paths never set an owner.
    pub fn set_default_owner(&mut self, owner: Option<u64>) {
        self.default_owner = owner;
    }

    /// The outstanding leases committed under `owner`, in commit order.
    pub fn leases_owned_by(&self, owner: u64) -> Vec<LeaseId> {
        let mut ids: Vec<LeaseId> = self
            .active
            .iter()
            .filter(|(_, r)| r.owner == Some(owner))
            .map(|(&id, _)| LeaseId(id))
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Releases every outstanding lease committed under `owner` (orphan
    /// reclaim after a client disconnect or dropped release). Returns
    /// the reclaimed ids in commit order; empty when the owner holds
    /// nothing — that is not an error.
    pub fn reclaim_owner(&mut self, owner: u64) -> Vec<LeaseId> {
        let ids = self.leases_owned_by(owner);
        for &id in &ids {
            self.release(id)
                // lint:allow(expect) — invariant: id came from the live lease set
                .expect("reclaimed lease is active");
            self.orphans_reclaimed += 1;
        }
        ids
    }

    /// Applies one substrate [`FaultEvent`] to the residual state,
    /// bumping the epoch when the state actually changed so residual
    /// caches rebuild. Returns whether the state changed.
    pub fn apply_fault(&mut self, event: &FaultEvent) -> NetResult<bool> {
        let changed = self.state.apply_fault(event)?;
        if changed {
            self.epoch += 1;
            self.faults_applied += 1;
        }
        Ok(changed)
    }

    /// Total fault events that changed the substrate state.
    #[inline]
    pub fn faults_applied(&self) -> u64 {
        self.faults_applied
    }

    /// Total leases released through [`Self::reclaim_owner`].
    #[inline]
    pub fn orphans_reclaimed(&self) -> u64 {
        self.orphans_reclaimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        let mut g = Network::new();
        g.add_nodes(3);
        g.add_link(NodeId(0), NodeId(1), 1.0, 2.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 1.0, 2.0).unwrap();
        g.deploy_vnf(NodeId(0), VnfTypeId(0), 1.0, 3.0).unwrap();
        g.deploy_vnf(NodeId(1), VnfTypeId(1), 1.0, 3.0).unwrap();
        g
    }

    #[test]
    fn commit_then_release_round_trips() {
        let g = net();
        let mut ledger = CommitLedger::new(&g);
        let lease = ledger
            .commit(
                [(NodeId(0), VnfTypeId(0), 2.0)],
                [(LinkId(0), 1.5), (LinkId(1), 0.0)],
            )
            .unwrap();
        assert_eq!(ledger.active_leases(), 1);
        assert!(ledger.is_active(lease));
        assert_eq!(ledger.epoch(), 1);
        assert!(ledger.outstanding_load() > 0.0);
        let residual = ledger.residual();
        assert_eq!(residual.link(LinkId(0)).capacity, 0.5);

        ledger.release(lease).unwrap();
        assert_eq!(ledger.active_leases(), 0);
        assert!(!ledger.is_active(lease));
        assert_eq!(ledger.epoch(), 2);
        assert!(ledger.outstanding_load().abs() < 1e-12);
        assert_eq!(ledger.committed_total(), 1);
        assert_eq!(ledger.released_total(), 1);
    }

    #[test]
    fn commit_is_atomic_on_failure() {
        let g = net();
        let mut ledger = CommitLedger::new(&g);
        // Second reservation exceeds link 0's bandwidth: the first VNF
        // reservation must be rolled back.
        let err = ledger
            .commit([(NodeId(0), VnfTypeId(0), 1.0)], [(LinkId(0), 5.0)])
            .unwrap_err();
        assert!(matches!(err, NetError::InsufficientBandwidth { .. }));
        assert_eq!(ledger.active_leases(), 0);
        assert_eq!(ledger.epoch(), 0, "failed commit must not bump the epoch");
        assert!(ledger.outstanding_load().abs() < 1e-12);
    }

    #[test]
    fn vnf_failure_also_rolls_back() {
        let g = net();
        let mut ledger = CommitLedger::new(&g);
        let err = ledger
            .commit(
                [
                    (NodeId(0), VnfTypeId(0), 1.0),
                    (NodeId(2), VnfTypeId(0), 1.0),
                ],
                [],
            )
            .unwrap_err();
        assert!(matches!(err, NetError::VnfNotDeployed { .. }));
        assert!(ledger.outstanding_load().abs() < 1e-12);
    }

    #[test]
    fn double_release_rejected() {
        let g = net();
        let mut ledger = CommitLedger::new(&g);
        let lease = ledger.commit([(NodeId(0), VnfTypeId(0), 1.0)], []).unwrap();
        ledger.release(lease).unwrap();
        assert_eq!(ledger.release(lease), Err(NetError::UnknownLease(lease.0)));
        assert_eq!(
            ledger.release(LeaseId(999)),
            Err(NetError::UnknownLease(999))
        );
    }

    #[test]
    fn lease_ids_are_unique_and_ordered() {
        let g = net();
        let mut ledger = CommitLedger::new(&g);
        let a = ledger.commit([(NodeId(0), VnfTypeId(0), 0.5)], []).unwrap();
        let b = ledger.commit([(NodeId(1), VnfTypeId(1), 0.5)], []).unwrap();
        assert!(a < b);
        assert_eq!(ledger.active_lease_ids(), vec![a, b]);
        ledger.release(a).unwrap();
        // Ids are never reused, even after a release.
        let c = ledger.commit([(NodeId(1), VnfTypeId(1), 0.5)], []).unwrap();
        assert!(b < c);
        assert_eq!(ledger.active_lease_ids(), vec![b, c]);
    }

    #[test]
    fn interleaved_commits_and_releases_track_capacity() {
        let g = net();
        let mut ledger = CommitLedger::new(&g);
        let a = ledger.commit([], [(LinkId(0), 1.0)]).unwrap();
        let _b = ledger.commit([], [(LinkId(0), 1.0)]).unwrap();
        // Link 0 is full: a third unit must be refused.
        assert!(ledger.commit([], [(LinkId(0), 1.0)]).is_err());
        ledger.release(a).unwrap();
        // ...and admitted again after a release frees the bandwidth.
        assert!(ledger.commit([], [(LinkId(0), 1.0)]).is_ok());
        assert_eq!(ledger.active_leases(), 2);
    }

    #[test]
    fn owner_tagging_and_reclaim() {
        let g = net();
        let mut ledger = CommitLedger::new(&g);
        ledger.set_default_owner(Some(7));
        let a = ledger.commit([], [(LinkId(0), 0.5)]).unwrap();
        let b = ledger.commit([], [(LinkId(1), 0.5)]).unwrap();
        ledger.set_default_owner(Some(8));
        let c = ledger.commit([], [(LinkId(0), 0.5)]).unwrap();
        ledger.set_default_owner(None);
        let d = ledger.commit([], [(LinkId(1), 0.5)]).unwrap();

        assert_eq!(ledger.leases_owned_by(7), vec![a, b]);
        assert_eq!(ledger.leases_owned_by(9), vec![]);

        let epoch_before = ledger.epoch();
        let reclaimed = ledger.reclaim_owner(7);
        assert_eq!(reclaimed, vec![a, b]);
        assert_eq!(ledger.orphans_reclaimed(), 2);
        // Each reclaim is a real release: epoch moved, leases are gone,
        // untagged and other-owner leases survive.
        assert_eq!(ledger.epoch(), epoch_before + 2);
        assert!(!ledger.is_active(a));
        assert!(ledger.is_active(c));
        assert!(ledger.is_active(d));
        // Reclaiming again is a clean no-op.
        assert!(ledger.reclaim_owner(7).is_empty());
        assert_eq!(ledger.orphans_reclaimed(), 2);
    }

    #[test]
    fn fault_bumps_epoch_only_on_change() {
        let g = net();
        let mut ledger = CommitLedger::new(&g);
        let e0 = ledger.epoch();
        assert!(ledger
            .apply_fault(&FaultEvent::LinkDown { link: LinkId(0) })
            .unwrap());
        assert_eq!(ledger.epoch(), e0 + 1);
        assert_eq!(ledger.faults_applied(), 1);
        // No-op repeat: epoch must NOT move, so caches stay warm.
        assert!(!ledger
            .apply_fault(&FaultEvent::LinkDown { link: LinkId(0) })
            .unwrap());
        assert_eq!(ledger.epoch(), e0 + 1);
        assert_eq!(ledger.faults_applied(), 1);
        // Residual view reflects the down link.
        assert_eq!(ledger.residual().link(LinkId(0)).capacity, 0.0);
        // Unknown target surfaces the NetError and changes nothing.
        assert!(ledger
            .apply_fault(&FaultEvent::LinkDown { link: LinkId(42) })
            .is_err());
        assert_eq!(ledger.epoch(), e0 + 1);
    }

    #[test]
    fn commit_fails_onto_down_resources_and_recovers() {
        let g = net();
        let mut ledger = CommitLedger::new(&g);
        ledger
            .apply_fault(&FaultEvent::NodeDown { node: NodeId(0) })
            .unwrap();
        let err = ledger
            .commit([(NodeId(0), VnfTypeId(0), 1.0)], [])
            .unwrap_err();
        assert_eq!(err, NetError::NodeUnavailable(NodeId(0)));
        assert!(ledger.outstanding_load().abs() < 1e-12);
        ledger
            .apply_fault(&FaultEvent::NodeUp { node: NodeId(0) })
            .unwrap();
        assert!(ledger.commit([(NodeId(0), VnfTypeId(0), 1.0)], []).is_ok());
    }

    #[test]
    fn churn_then_release_leaves_no_leak() {
        let g = net();
        let mut ledger = CommitLedger::new(&g);
        let lease = ledger.commit([], [(LinkId(0), 1.5)]).unwrap();
        ledger
            .apply_fault(&FaultEvent::LinkCapacity {
                link: LinkId(0),
                factor: 0.5,
            })
            .unwrap();
        // Outstanding load still reports the committed 1.5.
        assert!((ledger.outstanding_load() - 1.5).abs() < 1e-12);
        ledger.release(lease).unwrap();
        assert!(ledger.outstanding_load().abs() < 1e-12);
    }
}
