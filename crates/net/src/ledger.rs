//! Commit/release ledger: leased resource commitments over a
//! [`NetworkState`].
//!
//! An online embedding service admits a request, commits its VNF and
//! link loads, and hands the caller back a **lease**. When the request
//! departs (a client disconnects, a trace event fires), the lease is
//! released and exactly the committed resources return to the pool. The
//! [`CommitLedger`] packages that lifecycle:
//!
//! * [`CommitLedger::commit`] reserves a whole load set **atomically** —
//!   if any single reservation fails, everything already reserved for
//!   the lease is rolled back and the state is untouched;
//! * [`CommitLedger::release`] returns a lease's resources and rejects
//!   unknown or double releases with [`NetError::UnknownLease`];
//! * every successful commit/release bumps an **epoch** counter, so
//!   residual-network caches (e.g. a daemon's shared solve context) know
//!   exactly when their snapshot went stale.
//!
//! The ledger is the serving-path twin of the solver-facing
//! checkpoint/rollback API on [`NetworkState`]: solvers backtrack within
//! one request, the ledger tracks commitments *across* requests.

use crate::error::{NetError, NetResult};
use crate::fxmap::FxHashMap;
use crate::graph::Network;
use crate::ids::{LinkId, NodeId, VnfTypeId};
use crate::state::NetworkState;

/// Opaque handle to one committed load set (monotonically increasing,
/// never reused within a ledger's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LeaseId(pub u64);

impl std::fmt::Display for LeaseId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lease#{}", self.0)
    }
}

/// The loads one lease committed (kept verbatim so release restores
/// exactly what was reserved).
#[derive(Debug, Clone)]
struct LeaseRecord {
    vnf: Vec<(NodeId, VnfTypeId, f64)>,
    links: Vec<(LinkId, f64)>,
}

/// Lease-tracked resource commitments over a residual [`NetworkState`].
#[derive(Debug)]
pub struct CommitLedger<'a> {
    state: NetworkState<'a>,
    /// Active leases keyed by id: O(1) release/liveness checks with the
    /// deterministic in-repo [`FxHashMap`] (ordered views sort the ids).
    active: FxHashMap<u64, LeaseRecord>,
    next_lease: u64,
    epoch: u64,
    total_committed: u64,
    total_released: u64,
}

impl<'a> CommitLedger<'a> {
    /// A fresh ledger over `net` with all capacities available.
    pub fn new(net: &'a Network) -> Self {
        CommitLedger {
            state: NetworkState::new(net),
            active: FxHashMap::default(),
            next_lease: 0,
            epoch: 0,
            total_committed: 0,
            total_released: 0,
        }
    }

    /// The underlying immutable network.
    #[inline]
    pub fn network(&self) -> &'a Network {
        self.state.network()
    }

    /// Read access to the residual state (remaining capacities).
    #[inline]
    pub fn state(&self) -> &NetworkState<'a> {
        &self.state
    }

    /// The change epoch: bumped by every successful commit or release.
    /// Caches of the residual network are valid exactly while the epoch
    /// they were built at is still current.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of currently outstanding leases.
    #[inline]
    pub fn active_leases(&self) -> usize {
        self.active.len()
    }

    /// Total leases ever committed.
    #[inline]
    pub fn committed_total(&self) -> u64 {
        self.total_committed
    }

    /// Total leases ever released.
    #[inline]
    pub fn released_total(&self) -> u64 {
        self.total_released
    }

    /// Materializes the current residual capacities as a fresh
    /// [`Network`] (topology and prices unchanged).
    pub fn residual(&self) -> Network {
        self.state.to_residual_network()
    }

    /// Committed-but-unreleased load across all resources — a leak
    /// detector once every lease has been released (must be ~0).
    pub fn outstanding_load(&self) -> f64 {
        self.state.total_link_load() + self.state.total_vnf_load()
    }

    /// Atomically reserves a whole load set and opens a lease for it.
    ///
    /// `vnf_loads` are `(node, kind, rate)` triples; `link_loads` are
    /// `(link, rate)` pairs (zero-rate entries are skipped). On any
    /// individual failure the partial reservation is rolled back, the
    /// state is left untouched, and the error is returned.
    pub fn commit<V, L>(&mut self, vnf_loads: V, link_loads: L) -> NetResult<LeaseId>
    where
        V: IntoIterator<Item = (NodeId, VnfTypeId, f64)>,
        L: IntoIterator<Item = (LinkId, f64)>,
    {
        let cp = self.state.checkpoint();
        let mut record = LeaseRecord {
            vnf: Vec::new(),
            links: Vec::new(),
        };
        for (node, kind, rate) in vnf_loads {
            if rate <= 0.0 {
                continue;
            }
            if let Err(e) = self.state.reserve_vnf(node, kind, rate) {
                self.state.rollback(cp);
                return Err(e);
            }
            record.vnf.push((node, kind, rate));
        }
        for (link, rate) in link_loads {
            if rate <= 0.0 {
                continue;
            }
            if let Err(e) = self.state.reserve_link(link, rate) {
                self.state.rollback(cp);
                return Err(e);
            }
            record.links.push((link, rate));
        }
        let id = LeaseId(self.next_lease);
        self.next_lease += 1;
        self.epoch += 1;
        self.total_committed += 1;
        self.active.insert(id.0, record);
        Ok(id)
    }

    /// Releases every resource `lease` committed. Unknown ids — never
    /// issued, or already released — fail with
    /// [`NetError::UnknownLease`] and leave the state untouched.
    pub fn release(&mut self, lease: LeaseId) -> NetResult<()> {
        let record = self
            .active
            .remove(&lease.0)
            .ok_or(NetError::UnknownLease(lease.0))?;
        for &(node, kind, rate) in &record.vnf {
            self.state
                .release_vnf(node, kind, rate)
                // lint:allow(expect) — invariant: release mirrors a recorded reservation
                .expect("release mirrors a recorded reservation");
        }
        for &(link, rate) in &record.links {
            self.state
                .release_link(link, rate)
                // lint:allow(expect) — invariant: release mirrors a recorded reservation
                .expect("release mirrors a recorded reservation");
        }
        self.epoch += 1;
        self.total_released += 1;
        Ok(())
    }

    /// Whether `lease` is currently outstanding.
    pub fn is_active(&self, lease: LeaseId) -> bool {
        self.active.contains_key(&lease.0)
    }

    /// The ids of all outstanding leases, in commit order (ids are
    /// issued monotonically, so sorted order *is* commit order).
    pub fn active_lease_ids(&self) -> Vec<LeaseId> {
        let mut ids: Vec<LeaseId> = self.active.keys().map(|&id| LeaseId(id)).collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        let mut g = Network::new();
        g.add_nodes(3);
        g.add_link(NodeId(0), NodeId(1), 1.0, 2.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 1.0, 2.0).unwrap();
        g.deploy_vnf(NodeId(0), VnfTypeId(0), 1.0, 3.0).unwrap();
        g.deploy_vnf(NodeId(1), VnfTypeId(1), 1.0, 3.0).unwrap();
        g
    }

    #[test]
    fn commit_then_release_round_trips() {
        let g = net();
        let mut ledger = CommitLedger::new(&g);
        let lease = ledger
            .commit(
                [(NodeId(0), VnfTypeId(0), 2.0)],
                [(LinkId(0), 1.5), (LinkId(1), 0.0)],
            )
            .unwrap();
        assert_eq!(ledger.active_leases(), 1);
        assert!(ledger.is_active(lease));
        assert_eq!(ledger.epoch(), 1);
        assert!(ledger.outstanding_load() > 0.0);
        let residual = ledger.residual();
        assert_eq!(residual.link(LinkId(0)).capacity, 0.5);

        ledger.release(lease).unwrap();
        assert_eq!(ledger.active_leases(), 0);
        assert!(!ledger.is_active(lease));
        assert_eq!(ledger.epoch(), 2);
        assert!(ledger.outstanding_load().abs() < 1e-12);
        assert_eq!(ledger.committed_total(), 1);
        assert_eq!(ledger.released_total(), 1);
    }

    #[test]
    fn commit_is_atomic_on_failure() {
        let g = net();
        let mut ledger = CommitLedger::new(&g);
        // Second reservation exceeds link 0's bandwidth: the first VNF
        // reservation must be rolled back.
        let err = ledger
            .commit([(NodeId(0), VnfTypeId(0), 1.0)], [(LinkId(0), 5.0)])
            .unwrap_err();
        assert!(matches!(err, NetError::InsufficientBandwidth { .. }));
        assert_eq!(ledger.active_leases(), 0);
        assert_eq!(ledger.epoch(), 0, "failed commit must not bump the epoch");
        assert!(ledger.outstanding_load().abs() < 1e-12);
    }

    #[test]
    fn vnf_failure_also_rolls_back() {
        let g = net();
        let mut ledger = CommitLedger::new(&g);
        let err = ledger
            .commit(
                [
                    (NodeId(0), VnfTypeId(0), 1.0),
                    (NodeId(2), VnfTypeId(0), 1.0),
                ],
                [],
            )
            .unwrap_err();
        assert!(matches!(err, NetError::VnfNotDeployed { .. }));
        assert!(ledger.outstanding_load().abs() < 1e-12);
    }

    #[test]
    fn double_release_rejected() {
        let g = net();
        let mut ledger = CommitLedger::new(&g);
        let lease = ledger.commit([(NodeId(0), VnfTypeId(0), 1.0)], []).unwrap();
        ledger.release(lease).unwrap();
        assert_eq!(ledger.release(lease), Err(NetError::UnknownLease(lease.0)));
        assert_eq!(
            ledger.release(LeaseId(999)),
            Err(NetError::UnknownLease(999))
        );
    }

    #[test]
    fn lease_ids_are_unique_and_ordered() {
        let g = net();
        let mut ledger = CommitLedger::new(&g);
        let a = ledger.commit([(NodeId(0), VnfTypeId(0), 0.5)], []).unwrap();
        let b = ledger.commit([(NodeId(1), VnfTypeId(1), 0.5)], []).unwrap();
        assert!(a < b);
        assert_eq!(ledger.active_lease_ids(), vec![a, b]);
        ledger.release(a).unwrap();
        // Ids are never reused, even after a release.
        let c = ledger.commit([(NodeId(1), VnfTypeId(1), 0.5)], []).unwrap();
        assert!(b < c);
        assert_eq!(ledger.active_lease_ids(), vec![b, c]);
    }

    #[test]
    fn interleaved_commits_and_releases_track_capacity() {
        let g = net();
        let mut ledger = CommitLedger::new(&g);
        let a = ledger.commit([], [(LinkId(0), 1.0)]).unwrap();
        let _b = ledger.commit([], [(LinkId(0), 1.0)]).unwrap();
        // Link 0 is full: a third unit must be refused.
        assert!(ledger.commit([], [(LinkId(0), 1.0)]).is_err());
        ledger.release(a).unwrap();
        // ...and admitted again after a release frees the bandwidth.
        assert!(ledger.commit([], [(LinkId(0), 1.0)]).is_ok());
        assert_eq!(ledger.active_leases(), 2);
    }
}
