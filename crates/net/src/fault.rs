//! Substrate fault events: link/node failures, recoveries, and
//! capacity churn.
//!
//! A [`FaultEvent`] describes one change to the substrate that the
//! embedding layers must survive: a link or node going down (and coming
//! back), or the effective capacity of a resource being rescaled while
//! leases are outstanding. Events are plain serializable data so a
//! chaos scenario can be frozen to JSON and replayed bit-for-bit; the
//! stateful application lives in [`crate::state::NetworkState`] (and is
//! surfaced with epoch bumping through
//! [`crate::ledger::CommitLedger::apply_fault`]).

use crate::ids::{LinkId, NodeId, VnfTypeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One substrate fault (or recovery) event.
///
/// Capacity factors are multipliers on the *base* capacity: `1.0`
/// restores the original capacity, `0.5` halves it, `1.5` grows it.
/// Rescaling never cancels existing reservations — the remaining
/// capacity absorbs the delta and may go negative (overcommitted) until
/// enough leases release, which is exactly the transient the auditor
/// and admission control are exercised against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Take a link out of service: no new reservations route over it.
    LinkDown {
        /// The failed link.
        link: LinkId,
    },
    /// Return a failed link to service at its current effective capacity.
    LinkUp {
        /// The recovered link.
        link: LinkId,
    },
    /// Take a node out of service: its VNF instances stop accepting new
    /// load and every incident link becomes unroutable.
    NodeDown {
        /// The failed node.
        node: NodeId,
    },
    /// Return a failed node (and its incident links) to service.
    NodeUp {
        /// The recovered node.
        node: NodeId,
    },
    /// Rescale a link's effective bandwidth to `factor x` base capacity.
    LinkCapacity {
        /// The churned link.
        link: LinkId,
        /// Multiplier on the base capacity (finite, `>= 0`).
        factor: f64,
    },
    /// Rescale one VNF instance's effective processing capacity to
    /// `factor x` base capacity.
    VnfCapacity {
        /// Node hosting the instance.
        node: NodeId,
        /// VNF type of the instance.
        vnf: VnfTypeId,
        /// Multiplier on the base capacity (finite, `>= 0`).
        factor: f64,
    },
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::LinkDown { link } => write!(f, "link {link} down"),
            FaultEvent::LinkUp { link } => write!(f, "link {link} up"),
            FaultEvent::NodeDown { node } => write!(f, "node {node} down"),
            FaultEvent::NodeUp { node } => write!(f, "node {node} up"),
            FaultEvent::LinkCapacity { link, factor } => {
                write!(f, "link {link} capacity x{factor}")
            }
            FaultEvent::VnfCapacity { node, vnf, factor } => {
                write!(f, "vnf {vnf} on {node} capacity x{factor}")
            }
        }
    }
}

impl FaultEvent {
    /// Whether this event can change routing reachability (and therefore
    /// must flush any cached shortest-path trees).
    pub fn affects_reachability(&self) -> bool {
        matches!(
            self,
            FaultEvent::LinkDown { .. }
                | FaultEvent::LinkUp { .. }
                | FaultEvent::NodeDown { .. }
                | FaultEvent::NodeUp { .. }
        )
    }

    /// The inverse event, when one exists: `LinkDown <-> LinkUp`,
    /// `NodeDown <-> NodeUp`. Capacity churn inverts to restoring factor
    /// `1.0` (the base capacity), which is only the true inverse when
    /// the previous factor was `1.0`.
    pub fn inverse(&self) -> FaultEvent {
        match *self {
            FaultEvent::LinkDown { link } => FaultEvent::LinkUp { link },
            FaultEvent::LinkUp { link } => FaultEvent::LinkDown { link },
            FaultEvent::NodeDown { node } => FaultEvent::NodeUp { node },
            FaultEvent::NodeUp { node } => FaultEvent::NodeDown { node },
            FaultEvent::LinkCapacity { link, .. } => FaultEvent::LinkCapacity { link, factor: 1.0 },
            FaultEvent::VnfCapacity { node, vnf, .. } => FaultEvent::VnfCapacity {
                node,
                vnf,
                factor: 1.0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_json() {
        let events = vec![
            FaultEvent::LinkDown { link: LinkId(3) },
            FaultEvent::NodeUp { node: NodeId(7) },
            FaultEvent::LinkCapacity {
                link: LinkId(0),
                factor: 0.5,
            },
            FaultEvent::VnfCapacity {
                node: NodeId(2),
                vnf: VnfTypeId(1),
                factor: 1.25,
            },
        ];
        for e in events {
            let s = serde_json::to_string(&e).unwrap();
            let back: FaultEvent = serde_json::from_str(&s).unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn reachability_classification() {
        assert!(FaultEvent::LinkDown { link: LinkId(0) }.affects_reachability());
        assert!(FaultEvent::NodeUp { node: NodeId(0) }.affects_reachability());
        assert!(!FaultEvent::LinkCapacity {
            link: LinkId(0),
            factor: 0.5
        }
        .affects_reachability());
    }

    #[test]
    fn inverse_pairs() {
        let down = FaultEvent::NodeDown { node: NodeId(4) };
        assert_eq!(down.inverse().inverse(), down);
        let churn = FaultEvent::LinkCapacity {
            link: LinkId(1),
            factor: 0.25,
        };
        assert_eq!(
            churn.inverse(),
            FaultEvent::LinkCapacity {
                link: LinkId(1),
                factor: 1.0
            }
        );
    }

    #[test]
    fn display_names_the_resource() {
        let e = FaultEvent::LinkDown { link: LinkId(9) };
        assert!(e.to_string().contains("e9"));
    }
}
