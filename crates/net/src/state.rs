//! Residual-capacity view of a [`Network`] with checkpoint/rollback.
//!
//! Embedding algorithms explore many candidate sub-solutions and must
//! tentatively reserve VNF processing capacity and link bandwidth, then
//! back out of dead ends. `NetworkState` keeps the *remaining* capacity of
//! every VNF instance and link, and records every reservation in an undo
//! log so that backtracking is O(#operations undone), not O(network size).

use crate::error::{NetError, NetResult};
use crate::fault::FaultEvent;
use crate::graph::Network;
use crate::ids::{LinkId, NodeId, VnfTypeId};
use crate::path::Path;

/// Tolerance used for all capacity comparisons.
pub const CAP_EPS: f64 = 1e-9;

/// A position in the undo log; rolling back to a checkpoint undoes every
/// reservation made after it was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint(usize);

#[derive(Debug, Clone, Copy)]
enum UndoEntry {
    Vnf { slot: usize, amount: f64 },
    Link { link: LinkId, amount: f64 },
}

/// Mutable residual capacities layered over an immutable [`Network`],
/// plus a fault overlay (down flags and effective capacities) applied
/// through [`Self::apply_fault`].
///
/// The fault overlay is deliberately *not* part of the undo log:
/// faults come from the substrate, not from solver exploration, and are
/// only applied between solves — never while a checkpoint is live.
#[derive(Debug, Clone)]
pub struct NetworkState<'a> {
    net: &'a Network,
    /// Remaining capacity per VNF instance, indexed by flat slot id.
    /// May transiently go negative after a downward capacity churn
    /// (overcommitted); recovers as leases release.
    vnf_remaining: Vec<f64>,
    /// First slot id of each node's instances.
    node_slot_base: Vec<usize>,
    /// Remaining bandwidth per link (may go negative under churn).
    link_remaining: Vec<f64>,
    /// Effective capacity per VNF instance (base capacity until churned).
    vnf_eff: Vec<f64>,
    /// Effective bandwidth per link (base capacity until churned).
    link_eff: Vec<f64>,
    /// Links currently out of service.
    link_down: Vec<bool>,
    /// Nodes currently out of service (implies incident links down).
    node_down: Vec<bool>,
    undo: Vec<UndoEntry>,
}

impl<'a> NetworkState<'a> {
    /// Creates a fresh state with all capacities at their maxima.
    pub fn new(net: &'a Network) -> Self {
        let mut node_slot_base = Vec::with_capacity(net.node_count() + 1);
        let mut vnf_remaining = Vec::new();
        let mut base = 0usize;
        for n in net.node_ids() {
            node_slot_base.push(base);
            for inst in net.node(n).instances() {
                vnf_remaining.push(inst.capacity);
            }
            base += net.node(n).instances().len();
        }
        node_slot_base.push(base);
        let link_remaining: Vec<f64> = net.link_ids().map(|l| net.link(l).capacity).collect();
        let vnf_eff = vnf_remaining.clone();
        let link_eff = link_remaining.clone();
        NetworkState {
            net,
            vnf_remaining,
            node_slot_base,
            link_remaining,
            vnf_eff,
            link_eff,
            link_down: vec![false; net.link_count()],
            node_down: vec![false; net.node_count()],
            undo: Vec::new(),
        }
    }

    /// The underlying immutable network.
    #[inline]
    pub fn network(&self) -> &'a Network {
        self.net
    }

    fn slot(&self, node: NodeId, vnf: VnfTypeId) -> NetResult<usize> {
        let instances = self.net.try_node(node)?.instances();
        let idx = instances
            .binary_search_by_key(&vnf, |i| i.vnf)
            .map_err(|_| NetError::VnfNotDeployed { node, vnf })?;
        Ok(self.node_slot_base[node.index()] + idx)
    }

    /// Remaining processing capability of `vnf` on `node`.
    pub fn vnf_remaining(&self, node: NodeId, vnf: VnfTypeId) -> NetResult<f64> {
        Ok(self.vnf_remaining[self.slot(node, vnf)?])
    }

    /// Remaining bandwidth of `link`.
    pub fn link_remaining(&self, link: LinkId) -> NetResult<f64> {
        self.link_remaining
            .get(link.index())
            .copied()
            .ok_or(NetError::UnknownLink(link))
    }

    /// Whether `node` is currently in service.
    #[inline]
    pub fn node_available(&self, node: NodeId) -> bool {
        !self.node_down.get(node.index()).copied().unwrap_or(true)
    }

    /// Whether `link` is currently in service (the link itself up and
    /// both endpoints up).
    #[inline]
    pub fn link_available(&self, link: LinkId) -> bool {
        if self.link_down.get(link.index()).copied().unwrap_or(true) {
            return false;
        }
        let l = self.net.link(link);
        self.node_available(l.a) && self.node_available(l.b)
    }

    /// Whether `vnf` on `node` can absorb `rate` more traffic.
    pub fn vnf_fits(&self, node: NodeId, vnf: VnfTypeId, rate: f64) -> bool {
        self.node_available(node)
            && self
                .slot(node, vnf)
                .map(|s| self.vnf_remaining[s] + CAP_EPS >= rate)
                .unwrap_or(false)
    }

    /// Whether `link` can absorb `rate` more traffic.
    pub fn link_fits(&self, link: LinkId, rate: f64) -> bool {
        link.index() < self.link_remaining.len()
            && self.link_available(link)
            && self.link_remaining[link.index()] + CAP_EPS >= rate
    }

    /// Reserves `rate` units of processing on `vnf@node`.
    pub fn reserve_vnf(&mut self, node: NodeId, vnf: VnfTypeId, rate: f64) -> NetResult<()> {
        let slot = self.slot(node, vnf)?;
        if !self.node_available(node) {
            return Err(NetError::NodeUnavailable(node));
        }
        let avail = self.vnf_remaining[slot];
        if avail + CAP_EPS < rate {
            return Err(NetError::InsufficientVnfCapacity {
                node,
                vnf,
                requested: rate,
                available: avail,
            });
        }
        self.vnf_remaining[slot] = avail - rate;
        self.undo.push(UndoEntry::Vnf { slot, amount: rate });
        Ok(())
    }

    /// Reserves `rate` units of bandwidth on `link`.
    pub fn reserve_link(&mut self, link: LinkId, rate: f64) -> NetResult<()> {
        let avail = self.link_remaining(link)?;
        if !self.link_available(link) {
            return Err(NetError::LinkUnavailable(link));
        }
        if avail + CAP_EPS < rate {
            return Err(NetError::InsufficientBandwidth {
                link,
                requested: rate,
                available: avail,
            });
        }
        self.link_remaining[link.index()] = avail - rate;
        self.undo.push(UndoEntry::Link { link, amount: rate });
        Ok(())
    }

    /// Reserves `rate` on every link of `path`. On failure the partial
    /// reservation is rolled back, leaving the state unchanged.
    pub fn reserve_path(&mut self, path: &Path, rate: f64) -> NetResult<()> {
        let cp = self.checkpoint();
        for &l in path.links() {
            if let Err(e) = self.reserve_link(l, rate) {
                self.rollback(cp);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Releases `rate` units of processing on `vnf@node` (the inverse of
    /// [`Self::reserve_vnf`], e.g. when an embedded request departs).
    ///
    /// Fails if the release would exceed the instance's total capacity —
    /// that always indicates a double-release bug in the caller.
    pub fn release_vnf(&mut self, node: NodeId, vnf: VnfTypeId, rate: f64) -> NetResult<()> {
        let slot = self.slot(node, vnf)?;
        // Compare against the *effective* capacity: the invariant
        // `remaining + total_reserved == effective` holds under churn, so
        // an over-release is still exactly a double-free.
        let capacity = self.vnf_eff[slot];
        if self.vnf_remaining[slot] + rate > capacity + CAP_EPS {
            return Err(NetError::InvalidParameter(
                "VNF release exceeds reserved amount",
            ));
        }
        self.vnf_remaining[slot] += rate;
        self.undo.push(UndoEntry::Vnf {
            slot,
            amount: -rate,
        });
        Ok(())
    }

    /// Releases `rate` units of bandwidth on `link` (the inverse of
    /// [`Self::reserve_link`]).
    pub fn release_link(&mut self, link: LinkId, rate: f64) -> NetResult<()> {
        self.net.try_link(link)?;
        let capacity = self.link_eff[link.index()];
        let remaining = self.link_remaining[link.index()];
        if remaining + rate > capacity + CAP_EPS {
            return Err(NetError::InvalidParameter(
                "link release exceeds reserved amount",
            ));
        }
        self.link_remaining[link.index()] = remaining + rate;
        self.undo.push(UndoEntry::Link {
            link,
            amount: -rate,
        });
        Ok(())
    }

    /// Takes a checkpoint; pass it to [`Self::rollback`] to undo everything
    /// reserved since.
    #[inline]
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint(self.undo.len())
    }

    /// Rolls back all reservations made after `cp` was taken.
    ///
    /// # Panics
    /// Panics if `cp` comes from a different state or a later epoch.
    pub fn rollback(&mut self, cp: Checkpoint) {
        assert!(
            cp.0 <= self.undo.len(),
            "rollback to a checkpoint from the future"
        );
        while self.undo.len() > cp.0 {
            // lint:allow(expect) — invariant: undo log entry
            match self.undo.pop().expect("undo log entry") {
                UndoEntry::Vnf { slot, amount } => self.vnf_remaining[slot] += amount,
                UndoEntry::Link { link, amount } => self.link_remaining[link.index()] += amount,
            }
        }
    }

    /// Number of reservations currently recorded.
    #[inline]
    pub fn reservation_count(&self) -> usize {
        self.undo.len()
    }

    /// Materializes the residual capacities as a fresh immutable
    /// [`Network`] (same topology and prices, capacities = remaining).
    ///
    /// Online simulations embed each arriving request against this
    /// residual network, then commit the accepted embedding's loads back
    /// into the state.
    pub fn to_residual_network(&self) -> Network {
        self.net.map_capacities(
            |node, vnf, _| {
                if !self.node_available(node) {
                    return 0.0;
                }
                self.vnf_remaining(node, vnf)
                    // lint:allow(expect) — invariant: instance exists in source network
                    .expect("instance exists in source network")
                    .max(0.0)
            },
            |link, _| {
                if !self.link_available(link) {
                    return 0.0;
                }
                self.link_remaining(link)
                    // lint:allow(expect) — invariant: link exists in source network
                    .expect("link exists in source network")
                    .max(0.0)
            },
        )
    }

    /// Applies one substrate [`FaultEvent`]. Returns `true` when the
    /// state actually changed (e.g. `LinkDown` on an already-down link
    /// returns `false`).
    ///
    /// Down/up events toggle availability flags; capacity churn moves
    /// the effective capacity to `factor x` base and shifts the
    /// remaining capacity by the same delta, so outstanding
    /// reservations are preserved exactly (remaining may transiently go
    /// negative when shrinking below the committed load).
    pub fn apply_fault(&mut self, event: &FaultEvent) -> NetResult<bool> {
        match *event {
            FaultEvent::LinkDown { link } => {
                self.net.try_link(link)?;
                Ok(!std::mem::replace(&mut self.link_down[link.index()], true))
            }
            FaultEvent::LinkUp { link } => {
                self.net.try_link(link)?;
                Ok(std::mem::replace(&mut self.link_down[link.index()], false))
            }
            FaultEvent::NodeDown { node } => {
                self.net.try_node(node)?;
                Ok(!std::mem::replace(&mut self.node_down[node.index()], true))
            }
            FaultEvent::NodeUp { node } => {
                self.net.try_node(node)?;
                Ok(std::mem::replace(&mut self.node_down[node.index()], false))
            }
            FaultEvent::LinkCapacity { link, factor } => {
                if !(factor.is_finite() && factor >= 0.0) {
                    return Err(NetError::InvalidParameter(
                        "capacity factor must be finite and non-negative",
                    ));
                }
                let base = self.net.try_link(link)?.capacity;
                let new_eff = base * factor;
                let delta = new_eff - self.link_eff[link.index()];
                if delta == 0.0 {
                    return Ok(false);
                }
                self.link_eff[link.index()] = new_eff;
                self.link_remaining[link.index()] += delta;
                Ok(true)
            }
            FaultEvent::VnfCapacity { node, vnf, factor } => {
                if !(factor.is_finite() && factor >= 0.0) {
                    return Err(NetError::InvalidParameter(
                        "capacity factor must be finite and non-negative",
                    ));
                }
                let slot = self.slot(node, vnf)?;
                let base = self
                    .net
                    .instance(node, vnf)
                    // lint:allow(expect) — invariant: slot implies instance
                    .expect("slot implies instance")
                    .capacity;
                let new_eff = base * factor;
                let delta = new_eff - self.vnf_eff[slot];
                if delta == 0.0 {
                    return Ok(false);
                }
                self.vnf_eff[slot] = new_eff;
                self.vnf_remaining[slot] += delta;
                Ok(true)
            }
        }
    }

    /// Effective bandwidth of `link` (base capacity after any churn).
    pub fn effective_link_capacity(&self, link: LinkId) -> NetResult<f64> {
        self.net.try_link(link)?;
        Ok(self.link_eff[link.index()])
    }

    /// Effective capacity of `vnf@node` (base capacity after any churn).
    pub fn effective_vnf_capacity(&self, node: NodeId, vnf: VnfTypeId) -> NetResult<f64> {
        Ok(self.vnf_eff[self.slot(node, vnf)?])
    }

    /// Number of links currently out of service (directly or via a down
    /// endpoint).
    pub fn links_down(&self) -> usize {
        self.net
            .link_ids()
            .filter(|&l| !self.link_available(l))
            .count()
    }

    /// Total reserved bandwidth across all links (diagnostics).
    ///
    /// Load is measured against the *effective* capacity so the figure
    /// tracks actual reservations, not churn deltas.
    pub fn total_link_load(&self) -> f64 {
        self.net
            .link_ids()
            .map(|l| self.link_eff[l.index()] - self.link_remaining[l.index()])
            .sum()
    }

    /// Total reserved VNF processing across all instances (diagnostics).
    pub fn total_vnf_load(&self) -> f64 {
        self.vnf_eff
            .iter()
            .zip(&self.vnf_remaining)
            .map(|(eff, rem)| eff - rem)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        let mut g = Network::new();
        g.add_nodes(3);
        g.add_link(NodeId(0), NodeId(1), 1.0, 2.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 1.0, 2.0).unwrap();
        g.deploy_vnf(NodeId(0), VnfTypeId(0), 1.0, 3.0).unwrap();
        g.deploy_vnf(NodeId(1), VnfTypeId(0), 1.0, 3.0).unwrap();
        g.deploy_vnf(NodeId(1), VnfTypeId(1), 1.0, 3.0).unwrap();
        g
    }

    #[test]
    fn fresh_state_has_full_capacity() {
        let g = net();
        let s = NetworkState::new(&g);
        assert_eq!(s.vnf_remaining(NodeId(0), VnfTypeId(0)).unwrap(), 3.0);
        assert_eq!(s.link_remaining(LinkId(0)).unwrap(), 2.0);
        assert_eq!(s.total_link_load(), 0.0);
        assert_eq!(s.total_vnf_load(), 0.0);
    }

    #[test]
    fn reserve_and_exhaust_vnf() {
        let g = net();
        let mut s = NetworkState::new(&g);
        s.reserve_vnf(NodeId(1), VnfTypeId(1), 2.0).unwrap();
        assert_eq!(s.vnf_remaining(NodeId(1), VnfTypeId(1)).unwrap(), 1.0);
        assert!(s.vnf_fits(NodeId(1), VnfTypeId(1), 1.0));
        assert!(!s.vnf_fits(NodeId(1), VnfTypeId(1), 1.5));
        assert!(s.reserve_vnf(NodeId(1), VnfTypeId(1), 1.5).is_err());
        // failed reservation must not change state
        assert_eq!(s.vnf_remaining(NodeId(1), VnfTypeId(1)).unwrap(), 1.0);
    }

    #[test]
    fn reserve_missing_vnf_fails() {
        let g = net();
        let mut s = NetworkState::new(&g);
        assert!(matches!(
            s.reserve_vnf(NodeId(2), VnfTypeId(0), 1.0),
            Err(NetError::VnfNotDeployed { .. })
        ));
        assert!(!s.vnf_fits(NodeId(2), VnfTypeId(0), 1.0));
    }

    #[test]
    fn reserve_and_exhaust_link() {
        let g = net();
        let mut s = NetworkState::new(&g);
        s.reserve_link(LinkId(0), 2.0).unwrap();
        assert!(!s.link_fits(LinkId(0), 0.1));
        assert!(s.reserve_link(LinkId(0), 0.1).is_err());
        assert_eq!(s.link_remaining(LinkId(0)).unwrap(), 0.0);
    }

    #[test]
    fn checkpoint_rollback_restores_everything() {
        let g = net();
        let mut s = NetworkState::new(&g);
        s.reserve_vnf(NodeId(0), VnfTypeId(0), 1.0).unwrap();
        let cp = s.checkpoint();
        s.reserve_vnf(NodeId(1), VnfTypeId(0), 2.0).unwrap();
        s.reserve_link(LinkId(1), 1.5).unwrap();
        s.rollback(cp);
        assert_eq!(s.vnf_remaining(NodeId(0), VnfTypeId(0)).unwrap(), 2.0);
        assert_eq!(s.vnf_remaining(NodeId(1), VnfTypeId(0)).unwrap(), 3.0);
        assert_eq!(s.link_remaining(LinkId(1)).unwrap(), 2.0);
        assert_eq!(s.reservation_count(), 1);
    }

    #[test]
    fn reserve_path_is_atomic() {
        let g = net();
        let mut s = NetworkState::new(&g);
        // Drain the second link so the path reservation must fail midway.
        s.reserve_link(LinkId(1), 2.0).unwrap();
        let before = s.link_remaining(LinkId(0)).unwrap();
        let p = Path::from_nodes(&g, vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        assert!(s.reserve_path(&p, 1.0).is_err());
        assert_eq!(s.link_remaining(LinkId(0)).unwrap(), before);
    }

    #[test]
    fn reserve_path_success() {
        let g = net();
        let mut s = NetworkState::new(&g);
        let p = Path::from_nodes(&g, vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        s.reserve_path(&p, 1.5).unwrap();
        assert_eq!(s.link_remaining(LinkId(0)).unwrap(), 0.5);
        assert_eq!(s.link_remaining(LinkId(1)).unwrap(), 0.5);
        assert!((s.total_link_load() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "future")]
    fn rollback_to_future_panics() {
        let g = net();
        let mut s = NetworkState::new(&g);
        s.reserve_link(LinkId(0), 1.0).unwrap();
        let cp = s.checkpoint();
        s.rollback(Checkpoint(0));
        s.rollback(cp); // cp now points past the truncated log
    }

    #[test]
    fn release_restores_capacity() {
        let g = net();
        let mut s = NetworkState::new(&g);
        s.reserve_vnf(NodeId(0), VnfTypeId(0), 2.0).unwrap();
        s.reserve_link(LinkId(0), 1.5).unwrap();
        s.release_vnf(NodeId(0), VnfTypeId(0), 2.0).unwrap();
        s.release_link(LinkId(0), 1.5).unwrap();
        assert_eq!(s.vnf_remaining(NodeId(0), VnfTypeId(0)).unwrap(), 3.0);
        assert_eq!(s.link_remaining(LinkId(0)).unwrap(), 2.0);
    }

    #[test]
    fn double_release_rejected() {
        let g = net();
        let mut s = NetworkState::new(&g);
        s.reserve_vnf(NodeId(0), VnfTypeId(0), 1.0).unwrap();
        s.release_vnf(NodeId(0), VnfTypeId(0), 1.0).unwrap();
        assert!(s.release_vnf(NodeId(0), VnfTypeId(0), 0.5).is_err());
        assert!(s.release_link(LinkId(0), 0.1).is_err());
    }

    #[test]
    fn rollback_undoes_releases_too() {
        let g = net();
        let mut s = NetworkState::new(&g);
        s.reserve_link(LinkId(0), 2.0).unwrap();
        let cp = s.checkpoint();
        s.release_link(LinkId(0), 1.0).unwrap();
        assert_eq!(s.link_remaining(LinkId(0)).unwrap(), 1.0);
        s.rollback(cp);
        assert_eq!(s.link_remaining(LinkId(0)).unwrap(), 0.0);
    }

    #[test]
    fn residual_network_reflects_reservations() {
        let g = net();
        let mut s = NetworkState::new(&g);
        s.reserve_vnf(NodeId(0), VnfTypeId(0), 1.0).unwrap();
        s.reserve_link(LinkId(1), 0.5).unwrap();
        let reduced = s.to_residual_network();
        assert_eq!(
            reduced.instance(NodeId(0), VnfTypeId(0)).unwrap().capacity,
            2.0
        );
        assert_eq!(reduced.link(LinkId(1)).capacity, 1.5);
        // Untouched resources keep full capacity; prices unchanged.
        assert_eq!(reduced.link(LinkId(0)).capacity, 2.0);
        assert_eq!(reduced.link(LinkId(0)).price, g.link(LinkId(0)).price);
        assert_eq!(reduced.node_count(), g.node_count());
    }

    #[test]
    fn trivial_path_reservation_is_noop() {
        let g = net();
        let mut s = NetworkState::new(&g);
        s.reserve_path(&Path::trivial(NodeId(0)), 5.0).unwrap();
        assert_eq!(s.reservation_count(), 0);
    }

    #[test]
    fn link_down_blocks_reservation_until_recovery() {
        let g = net();
        let mut s = NetworkState::new(&g);
        assert!(s
            .apply_fault(&FaultEvent::LinkDown { link: LinkId(0) })
            .unwrap());
        // Idempotent: second down is a no-op.
        assert!(!s
            .apply_fault(&FaultEvent::LinkDown { link: LinkId(0) })
            .unwrap());
        assert!(!s.link_available(LinkId(0)));
        assert!(!s.link_fits(LinkId(0), 0.1));
        assert_eq!(
            s.reserve_link(LinkId(0), 0.1),
            Err(NetError::LinkUnavailable(LinkId(0)))
        );
        assert_eq!(s.links_down(), 1);
        assert!(s
            .apply_fault(&FaultEvent::LinkUp { link: LinkId(0) })
            .unwrap());
        assert!(s.reserve_link(LinkId(0), 0.1).is_ok());
    }

    #[test]
    fn node_down_blocks_vnf_and_incident_links() {
        let g = net();
        let mut s = NetworkState::new(&g);
        s.apply_fault(&FaultEvent::NodeDown { node: NodeId(1) })
            .unwrap();
        assert!(!s.vnf_fits(NodeId(1), VnfTypeId(0), 0.1));
        assert_eq!(
            s.reserve_vnf(NodeId(1), VnfTypeId(0), 0.1),
            Err(NetError::NodeUnavailable(NodeId(1)))
        );
        // Both links touch node 1, so both become unroutable.
        assert_eq!(s.links_down(), 2);
        assert!(s.reserve_link(LinkId(0), 0.1).is_err());
        s.apply_fault(&FaultEvent::NodeUp { node: NodeId(1) })
            .unwrap();
        assert_eq!(s.links_down(), 0);
        assert!(s.reserve_vnf(NodeId(1), VnfTypeId(0), 0.1).is_ok());
    }

    #[test]
    fn release_still_works_while_resource_is_down() {
        let g = net();
        let mut s = NetworkState::new(&g);
        s.reserve_link(LinkId(0), 1.5).unwrap();
        s.reserve_vnf(NodeId(0), VnfTypeId(0), 2.0).unwrap();
        s.apply_fault(&FaultEvent::LinkDown { link: LinkId(0) })
            .unwrap();
        s.apply_fault(&FaultEvent::NodeDown { node: NodeId(0) })
            .unwrap();
        // Departing requests must still credit their capacity back.
        s.release_link(LinkId(0), 1.5).unwrap();
        s.release_vnf(NodeId(0), VnfTypeId(0), 2.0).unwrap();
        assert_eq!(s.link_remaining(LinkId(0)).unwrap(), 2.0);
        assert_eq!(s.total_link_load(), 0.0);
        assert_eq!(s.total_vnf_load(), 0.0);
    }

    #[test]
    fn capacity_churn_preserves_reservations() {
        let g = net();
        let mut s = NetworkState::new(&g);
        s.reserve_link(LinkId(0), 1.5).unwrap();
        // Shrink to half capacity: 2.0 -> 1.0 effective, remaining 0.5 -> -0.5.
        s.apply_fault(&FaultEvent::LinkCapacity {
            link: LinkId(0),
            factor: 0.5,
        })
        .unwrap();
        assert_eq!(s.effective_link_capacity(LinkId(0)).unwrap(), 1.0);
        assert_eq!(s.link_remaining(LinkId(0)).unwrap(), -0.5);
        assert!(!s.link_fits(LinkId(0), 0.1));
        // Load accounting still reports the 1.5 actually reserved.
        assert!((s.total_link_load() - 1.5).abs() < 1e-12);
        // The overcommitted release is legal and restores balance.
        s.release_link(LinkId(0), 1.5).unwrap();
        assert_eq!(s.link_remaining(LinkId(0)).unwrap(), 1.0);
        assert_eq!(s.total_link_load(), 0.0);
        // Restoring factor 1.0 returns to base capacity.
        s.apply_fault(&FaultEvent::LinkCapacity {
            link: LinkId(0),
            factor: 1.0,
        })
        .unwrap();
        assert_eq!(s.link_remaining(LinkId(0)).unwrap(), 2.0);
    }

    #[test]
    fn vnf_capacity_churn_and_release_check_use_effective() {
        let g = net();
        let mut s = NetworkState::new(&g);
        s.reserve_vnf(NodeId(0), VnfTypeId(0), 1.0).unwrap();
        // Grow 3.0 -> 4.5; the release check must allow exactly the 1.0
        // reserved and reject anything beyond.
        s.apply_fault(&FaultEvent::VnfCapacity {
            node: NodeId(0),
            vnf: VnfTypeId(0),
            factor: 1.5,
        })
        .unwrap();
        assert_eq!(
            s.effective_vnf_capacity(NodeId(0), VnfTypeId(0)).unwrap(),
            4.5
        );
        assert_eq!(s.vnf_remaining(NodeId(0), VnfTypeId(0)).unwrap(), 3.5);
        assert!(s.release_vnf(NodeId(0), VnfTypeId(0), 1.5).is_err());
        s.release_vnf(NodeId(0), VnfTypeId(0), 1.0).unwrap();
        assert!((s.total_vnf_load()).abs() < 1e-12);
    }

    #[test]
    fn invalid_fault_targets_and_factors_rejected() {
        let g = net();
        let mut s = NetworkState::new(&g);
        assert!(s
            .apply_fault(&FaultEvent::LinkDown { link: LinkId(99) })
            .is_err());
        assert!(s
            .apply_fault(&FaultEvent::NodeUp { node: NodeId(99) })
            .is_err());
        assert!(s
            .apply_fault(&FaultEvent::LinkCapacity {
                link: LinkId(0),
                factor: f64::NAN,
            })
            .is_err());
        assert!(s
            .apply_fault(&FaultEvent::VnfCapacity {
                node: NodeId(0),
                vnf: VnfTypeId(0),
                factor: -1.0,
            })
            .is_err());
    }

    #[test]
    fn residual_network_zeroes_down_resources() {
        let g = net();
        let mut s = NetworkState::new(&g);
        s.apply_fault(&FaultEvent::NodeDown { node: NodeId(0) })
            .unwrap();
        s.apply_fault(&FaultEvent::LinkCapacity {
            link: LinkId(1),
            factor: 0.25,
        })
        .unwrap();
        let r = s.to_residual_network();
        // Down node: its instance and incident link read as empty.
        assert_eq!(r.instance(NodeId(0), VnfTypeId(0)).unwrap().capacity, 0.0);
        assert_eq!(r.link(LinkId(0)).capacity, 0.0);
        // Churned link reflects the shrunken effective capacity.
        assert_eq!(r.link(LinkId(1)).capacity, 0.5);
        // Recovery restores the full residual view.
        s.apply_fault(&FaultEvent::NodeUp { node: NodeId(0) })
            .unwrap();
        let r2 = s.to_residual_network();
        assert_eq!(r2.link(LinkId(0)).capacity, 2.0);
    }
}
