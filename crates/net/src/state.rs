//! Residual-capacity view of a [`Network`] with checkpoint/rollback.
//!
//! Embedding algorithms explore many candidate sub-solutions and must
//! tentatively reserve VNF processing capacity and link bandwidth, then
//! back out of dead ends. `NetworkState` keeps the *remaining* capacity of
//! every VNF instance and link, and records every reservation in an undo
//! log so that backtracking is O(#operations undone), not O(network size).

use crate::error::{NetError, NetResult};
use crate::graph::Network;
use crate::ids::{LinkId, NodeId, VnfTypeId};
use crate::path::Path;

/// Tolerance used for all capacity comparisons.
pub const CAP_EPS: f64 = 1e-9;

/// A position in the undo log; rolling back to a checkpoint undoes every
/// reservation made after it was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint(usize);

#[derive(Debug, Clone, Copy)]
enum UndoEntry {
    Vnf { slot: usize, amount: f64 },
    Link { link: LinkId, amount: f64 },
}

/// Mutable residual capacities layered over an immutable [`Network`].
#[derive(Debug, Clone)]
pub struct NetworkState<'a> {
    net: &'a Network,
    /// Remaining capacity per VNF instance, indexed by flat slot id.
    vnf_remaining: Vec<f64>,
    /// First slot id of each node's instances.
    node_slot_base: Vec<usize>,
    /// Remaining bandwidth per link.
    link_remaining: Vec<f64>,
    undo: Vec<UndoEntry>,
}

impl<'a> NetworkState<'a> {
    /// Creates a fresh state with all capacities at their maxima.
    pub fn new(net: &'a Network) -> Self {
        let mut node_slot_base = Vec::with_capacity(net.node_count() + 1);
        let mut vnf_remaining = Vec::new();
        let mut base = 0usize;
        for n in net.node_ids() {
            node_slot_base.push(base);
            for inst in net.node(n).instances() {
                vnf_remaining.push(inst.capacity);
            }
            base += net.node(n).instances().len();
        }
        node_slot_base.push(base);
        let link_remaining = net.link_ids().map(|l| net.link(l).capacity).collect();
        NetworkState {
            net,
            vnf_remaining,
            node_slot_base,
            link_remaining,
            undo: Vec::new(),
        }
    }

    /// The underlying immutable network.
    #[inline]
    pub fn network(&self) -> &'a Network {
        self.net
    }

    fn slot(&self, node: NodeId, vnf: VnfTypeId) -> NetResult<usize> {
        let instances = self.net.try_node(node)?.instances();
        let idx = instances
            .binary_search_by_key(&vnf, |i| i.vnf)
            .map_err(|_| NetError::VnfNotDeployed { node, vnf })?;
        Ok(self.node_slot_base[node.index()] + idx)
    }

    /// Remaining processing capability of `vnf` on `node`.
    pub fn vnf_remaining(&self, node: NodeId, vnf: VnfTypeId) -> NetResult<f64> {
        Ok(self.vnf_remaining[self.slot(node, vnf)?])
    }

    /// Remaining bandwidth of `link`.
    pub fn link_remaining(&self, link: LinkId) -> NetResult<f64> {
        self.link_remaining
            .get(link.index())
            .copied()
            .ok_or(NetError::UnknownLink(link))
    }

    /// Whether `vnf` on `node` can absorb `rate` more traffic.
    pub fn vnf_fits(&self, node: NodeId, vnf: VnfTypeId, rate: f64) -> bool {
        self.slot(node, vnf)
            .map(|s| self.vnf_remaining[s] + CAP_EPS >= rate)
            .unwrap_or(false)
    }

    /// Whether `link` can absorb `rate` more traffic.
    pub fn link_fits(&self, link: LinkId, rate: f64) -> bool {
        self.link_remaining
            .get(link.index())
            .map(|&r| r + CAP_EPS >= rate)
            .unwrap_or(false)
    }

    /// Reserves `rate` units of processing on `vnf@node`.
    pub fn reserve_vnf(&mut self, node: NodeId, vnf: VnfTypeId, rate: f64) -> NetResult<()> {
        let slot = self.slot(node, vnf)?;
        let avail = self.vnf_remaining[slot];
        if avail + CAP_EPS < rate {
            return Err(NetError::InsufficientVnfCapacity {
                node,
                vnf,
                requested: rate,
                available: avail,
            });
        }
        self.vnf_remaining[slot] = avail - rate;
        self.undo.push(UndoEntry::Vnf { slot, amount: rate });
        Ok(())
    }

    /// Reserves `rate` units of bandwidth on `link`.
    pub fn reserve_link(&mut self, link: LinkId, rate: f64) -> NetResult<()> {
        let avail = self.link_remaining(link)?;
        if avail + CAP_EPS < rate {
            return Err(NetError::InsufficientBandwidth {
                link,
                requested: rate,
                available: avail,
            });
        }
        self.link_remaining[link.index()] = avail - rate;
        self.undo.push(UndoEntry::Link { link, amount: rate });
        Ok(())
    }

    /// Reserves `rate` on every link of `path`. On failure the partial
    /// reservation is rolled back, leaving the state unchanged.
    pub fn reserve_path(&mut self, path: &Path, rate: f64) -> NetResult<()> {
        let cp = self.checkpoint();
        for &l in path.links() {
            if let Err(e) = self.reserve_link(l, rate) {
                self.rollback(cp);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Releases `rate` units of processing on `vnf@node` (the inverse of
    /// [`Self::reserve_vnf`], e.g. when an embedded request departs).
    ///
    /// Fails if the release would exceed the instance's total capacity —
    /// that always indicates a double-release bug in the caller.
    pub fn release_vnf(&mut self, node: NodeId, vnf: VnfTypeId, rate: f64) -> NetResult<()> {
        let slot = self.slot(node, vnf)?;
        let capacity = self
            .net
            .instance(node, vnf)
            // lint:allow(expect) — invariant: slot implies instance
            .expect("slot implies instance")
            .capacity;
        if self.vnf_remaining[slot] + rate > capacity + CAP_EPS {
            return Err(NetError::InvalidParameter(
                "VNF release exceeds reserved amount",
            ));
        }
        self.vnf_remaining[slot] += rate;
        self.undo.push(UndoEntry::Vnf {
            slot,
            amount: -rate,
        });
        Ok(())
    }

    /// Releases `rate` units of bandwidth on `link` (the inverse of
    /// [`Self::reserve_link`]).
    pub fn release_link(&mut self, link: LinkId, rate: f64) -> NetResult<()> {
        let capacity = self.net.try_link(link)?.capacity;
        let remaining = self.link_remaining[link.index()];
        if remaining + rate > capacity + CAP_EPS {
            return Err(NetError::InvalidParameter(
                "link release exceeds reserved amount",
            ));
        }
        self.link_remaining[link.index()] = remaining + rate;
        self.undo.push(UndoEntry::Link {
            link,
            amount: -rate,
        });
        Ok(())
    }

    /// Takes a checkpoint; pass it to [`Self::rollback`] to undo everything
    /// reserved since.
    #[inline]
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint(self.undo.len())
    }

    /// Rolls back all reservations made after `cp` was taken.
    ///
    /// # Panics
    /// Panics if `cp` comes from a different state or a later epoch.
    pub fn rollback(&mut self, cp: Checkpoint) {
        assert!(
            cp.0 <= self.undo.len(),
            "rollback to a checkpoint from the future"
        );
        while self.undo.len() > cp.0 {
            // lint:allow(expect) — invariant: undo log entry
            match self.undo.pop().expect("undo log entry") {
                UndoEntry::Vnf { slot, amount } => self.vnf_remaining[slot] += amount,
                UndoEntry::Link { link, amount } => self.link_remaining[link.index()] += amount,
            }
        }
    }

    /// Number of reservations currently recorded.
    #[inline]
    pub fn reservation_count(&self) -> usize {
        self.undo.len()
    }

    /// Materializes the residual capacities as a fresh immutable
    /// [`Network`] (same topology and prices, capacities = remaining).
    ///
    /// Online simulations embed each arriving request against this
    /// residual network, then commit the accepted embedding's loads back
    /// into the state.
    pub fn to_residual_network(&self) -> Network {
        self.net.map_capacities(
            |node, vnf, _| {
                self.vnf_remaining(node, vnf)
                    // lint:allow(expect) — invariant: instance exists in source network
                    .expect("instance exists in source network")
            },
            |link, _| {
                self.link_remaining(link)
                    // lint:allow(expect) — invariant: link exists in source network
                    .expect("link exists in source network")
            },
        )
    }

    /// Total reserved bandwidth across all links (diagnostics).
    pub fn total_link_load(&self) -> f64 {
        self.net
            .link_ids()
            .map(|l| self.net.link(l).capacity - self.link_remaining[l.index()])
            .sum()
    }

    /// Total reserved VNF processing across all instances (diagnostics).
    pub fn total_vnf_load(&self) -> f64 {
        let mut total = 0.0;
        let mut slot = 0usize;
        for n in self.net.node_ids() {
            for inst in self.net.node(n).instances() {
                total += inst.capacity - self.vnf_remaining[slot];
                slot += 1;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        let mut g = Network::new();
        g.add_nodes(3);
        g.add_link(NodeId(0), NodeId(1), 1.0, 2.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 1.0, 2.0).unwrap();
        g.deploy_vnf(NodeId(0), VnfTypeId(0), 1.0, 3.0).unwrap();
        g.deploy_vnf(NodeId(1), VnfTypeId(0), 1.0, 3.0).unwrap();
        g.deploy_vnf(NodeId(1), VnfTypeId(1), 1.0, 3.0).unwrap();
        g
    }

    #[test]
    fn fresh_state_has_full_capacity() {
        let g = net();
        let s = NetworkState::new(&g);
        assert_eq!(s.vnf_remaining(NodeId(0), VnfTypeId(0)).unwrap(), 3.0);
        assert_eq!(s.link_remaining(LinkId(0)).unwrap(), 2.0);
        assert_eq!(s.total_link_load(), 0.0);
        assert_eq!(s.total_vnf_load(), 0.0);
    }

    #[test]
    fn reserve_and_exhaust_vnf() {
        let g = net();
        let mut s = NetworkState::new(&g);
        s.reserve_vnf(NodeId(1), VnfTypeId(1), 2.0).unwrap();
        assert_eq!(s.vnf_remaining(NodeId(1), VnfTypeId(1)).unwrap(), 1.0);
        assert!(s.vnf_fits(NodeId(1), VnfTypeId(1), 1.0));
        assert!(!s.vnf_fits(NodeId(1), VnfTypeId(1), 1.5));
        assert!(s.reserve_vnf(NodeId(1), VnfTypeId(1), 1.5).is_err());
        // failed reservation must not change state
        assert_eq!(s.vnf_remaining(NodeId(1), VnfTypeId(1)).unwrap(), 1.0);
    }

    #[test]
    fn reserve_missing_vnf_fails() {
        let g = net();
        let mut s = NetworkState::new(&g);
        assert!(matches!(
            s.reserve_vnf(NodeId(2), VnfTypeId(0), 1.0),
            Err(NetError::VnfNotDeployed { .. })
        ));
        assert!(!s.vnf_fits(NodeId(2), VnfTypeId(0), 1.0));
    }

    #[test]
    fn reserve_and_exhaust_link() {
        let g = net();
        let mut s = NetworkState::new(&g);
        s.reserve_link(LinkId(0), 2.0).unwrap();
        assert!(!s.link_fits(LinkId(0), 0.1));
        assert!(s.reserve_link(LinkId(0), 0.1).is_err());
        assert_eq!(s.link_remaining(LinkId(0)).unwrap(), 0.0);
    }

    #[test]
    fn checkpoint_rollback_restores_everything() {
        let g = net();
        let mut s = NetworkState::new(&g);
        s.reserve_vnf(NodeId(0), VnfTypeId(0), 1.0).unwrap();
        let cp = s.checkpoint();
        s.reserve_vnf(NodeId(1), VnfTypeId(0), 2.0).unwrap();
        s.reserve_link(LinkId(1), 1.5).unwrap();
        s.rollback(cp);
        assert_eq!(s.vnf_remaining(NodeId(0), VnfTypeId(0)).unwrap(), 2.0);
        assert_eq!(s.vnf_remaining(NodeId(1), VnfTypeId(0)).unwrap(), 3.0);
        assert_eq!(s.link_remaining(LinkId(1)).unwrap(), 2.0);
        assert_eq!(s.reservation_count(), 1);
    }

    #[test]
    fn reserve_path_is_atomic() {
        let g = net();
        let mut s = NetworkState::new(&g);
        // Drain the second link so the path reservation must fail midway.
        s.reserve_link(LinkId(1), 2.0).unwrap();
        let before = s.link_remaining(LinkId(0)).unwrap();
        let p = Path::from_nodes(&g, vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        assert!(s.reserve_path(&p, 1.0).is_err());
        assert_eq!(s.link_remaining(LinkId(0)).unwrap(), before);
    }

    #[test]
    fn reserve_path_success() {
        let g = net();
        let mut s = NetworkState::new(&g);
        let p = Path::from_nodes(&g, vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        s.reserve_path(&p, 1.5).unwrap();
        assert_eq!(s.link_remaining(LinkId(0)).unwrap(), 0.5);
        assert_eq!(s.link_remaining(LinkId(1)).unwrap(), 0.5);
        assert!((s.total_link_load() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "future")]
    fn rollback_to_future_panics() {
        let g = net();
        let mut s = NetworkState::new(&g);
        s.reserve_link(LinkId(0), 1.0).unwrap();
        let cp = s.checkpoint();
        s.rollback(Checkpoint(0));
        s.rollback(cp); // cp now points past the truncated log
    }

    #[test]
    fn release_restores_capacity() {
        let g = net();
        let mut s = NetworkState::new(&g);
        s.reserve_vnf(NodeId(0), VnfTypeId(0), 2.0).unwrap();
        s.reserve_link(LinkId(0), 1.5).unwrap();
        s.release_vnf(NodeId(0), VnfTypeId(0), 2.0).unwrap();
        s.release_link(LinkId(0), 1.5).unwrap();
        assert_eq!(s.vnf_remaining(NodeId(0), VnfTypeId(0)).unwrap(), 3.0);
        assert_eq!(s.link_remaining(LinkId(0)).unwrap(), 2.0);
    }

    #[test]
    fn double_release_rejected() {
        let g = net();
        let mut s = NetworkState::new(&g);
        s.reserve_vnf(NodeId(0), VnfTypeId(0), 1.0).unwrap();
        s.release_vnf(NodeId(0), VnfTypeId(0), 1.0).unwrap();
        assert!(s.release_vnf(NodeId(0), VnfTypeId(0), 0.5).is_err());
        assert!(s.release_link(LinkId(0), 0.1).is_err());
    }

    #[test]
    fn rollback_undoes_releases_too() {
        let g = net();
        let mut s = NetworkState::new(&g);
        s.reserve_link(LinkId(0), 2.0).unwrap();
        let cp = s.checkpoint();
        s.release_link(LinkId(0), 1.0).unwrap();
        assert_eq!(s.link_remaining(LinkId(0)).unwrap(), 1.0);
        s.rollback(cp);
        assert_eq!(s.link_remaining(LinkId(0)).unwrap(), 0.0);
    }

    #[test]
    fn residual_network_reflects_reservations() {
        let g = net();
        let mut s = NetworkState::new(&g);
        s.reserve_vnf(NodeId(0), VnfTypeId(0), 1.0).unwrap();
        s.reserve_link(LinkId(1), 0.5).unwrap();
        let reduced = s.to_residual_network();
        assert_eq!(
            reduced.instance(NodeId(0), VnfTypeId(0)).unwrap().capacity,
            2.0
        );
        assert_eq!(reduced.link(LinkId(1)).capacity, 1.5);
        // Untouched resources keep full capacity; prices unchanged.
        assert_eq!(reduced.link(LinkId(0)).capacity, 2.0);
        assert_eq!(reduced.link(LinkId(0)).price, g.link(LinkId(0)).price);
        assert_eq!(reduced.node_count(), g.node_count());
    }

    #[test]
    fn trivial_path_reservation_is_noop() {
        let g = net();
        let mut s = NetworkState::new(&g);
        s.reserve_path(&Path::trivial(NodeId(0)), 5.0).unwrap();
        assert_eq!(s.reservation_count(), 0);
    }
}
