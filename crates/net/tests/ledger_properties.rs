//! Property-based tests for [`CommitLedger`]: arbitrary interleavings
//! of commits, releases, owner reclaims, and fault events never
//! double-free a lease, never leak outstanding load, and keep
//! `outstanding_load` equal to the sum of live leases' loads at every
//! step.

use dagsfc_net::{CommitLedger, FaultEvent, LeaseId, LinkId, Network, NodeId, VnfTypeId};
use proptest::prelude::*;

/// A fixed 4-node substrate with generous capacities so that most
/// commits succeed; churn and failures drive it into scarcity.
fn substrate() -> Network {
    let mut g = Network::new();
    g.add_nodes(4);
    // lint:allow(unwrap) — test fixture
    g.add_link(NodeId(0), NodeId(1), 1.0, 50.0).unwrap();
    g.add_link(NodeId(1), NodeId(2), 1.0, 50.0).unwrap();
    g.add_link(NodeId(2), NodeId(3), 1.0, 50.0).unwrap();
    g.add_link(NodeId(0), NodeId(2), 1.0, 50.0).unwrap();
    for n in 0..4 {
        g.deploy_vnf(NodeId(n), VnfTypeId(0), 1.0, 50.0).unwrap();
    }
    g
}

/// One scripted operation against the ledger.
///
/// `kind` selects the op; the remaining fields parameterize it (indices
/// are taken modulo the relevant population so every draw is valid).
type Op = (u8, usize, f64, f64);

/// Model record for one issued lease.
struct Issued {
    id: LeaseId,
    load: f64,
    owner: u64,
    live: bool,
}

fn model_outstanding(issued: &[Issued]) -> f64 {
    issued.iter().filter(|r| r.live).map(|r| r.load).sum()
}

fn run_script(ops: &[Op]) {
    let net = substrate();
    let mut ledger = CommitLedger::new(&net);
    let mut issued: Vec<Issued> = Vec::new();

    for &(kind, idx, rate, factor) in ops {
        match kind {
            // Commit a VNF + link load under owner `idx % 2`.
            0 => {
                let owner = (idx % 2) as u64;
                let node = NodeId((idx % 4) as u32);
                let link = LinkId((idx % 4) as u32);
                ledger.set_default_owner(Some(owner));
                let before = ledger.outstanding_load();
                match ledger.commit([(node, VnfTypeId(0), rate)], [(link, rate)]) {
                    Ok(id) => issued.push(Issued {
                        id,
                        load: 2.0 * rate,
                        owner,
                        live: true,
                    }),
                    Err(_) => {
                        // Failed commits must be fully rolled back.
                        let after = ledger.outstanding_load();
                        assert!((after - before).abs() < 1e-9, "partial commit leaked");
                    }
                }
                ledger.set_default_owner(None);
            }
            // Release some issued lease (possibly already released).
            1 => {
                if issued.is_empty() {
                    continue;
                }
                let pick = idx % issued.len();
                let r = &mut issued[pick];
                let result = ledger.release(r.id);
                if r.live {
                    assert!(result.is_ok(), "live release failed: {result:?}");
                    r.live = false;
                } else {
                    // Double release must be rejected and change nothing.
                    assert!(result.is_err(), "double release accepted");
                }
            }
            // Capacity churn on a link (epoch interleaving).
            2 => {
                ledger
                    .apply_fault(&FaultEvent::LinkCapacity {
                        link: LinkId((idx % 4) as u32),
                        factor,
                    })
                    // lint:allow(expect) — valid link and finite factor by construction
                    .expect("valid churn event");
            }
            // Node down/up toggle: commits may fail while down, but
            // accounting must stay exact.
            3 => {
                let node = NodeId((idx % 4) as u32);
                let event = if idx % 2 == 0 {
                    FaultEvent::NodeDown { node }
                } else {
                    FaultEvent::NodeUp { node }
                };
                // lint:allow(expect) — valid node by construction
                ledger.apply_fault(&event).expect("valid node event");
            }
            // Reclaim every lease of one owner.
            _ => {
                let owner = (idx % 2) as u64;
                let reclaimed = ledger.reclaim_owner(owner);
                let expected: Vec<LeaseId> = issued
                    .iter()
                    .filter(|r| r.live && r.owner == owner)
                    .map(|r| r.id)
                    .collect();
                assert_eq!(reclaimed, expected, "reclaim set mismatch");
                for r in issued.iter_mut() {
                    if r.live && r.owner == owner {
                        r.live = false;
                    }
                }
            }
        }

        // Core invariants, re-checked after every single op.
        let live = issued.iter().filter(|r| r.live).count();
        assert_eq!(ledger.active_leases(), live, "live-lease count diverged");
        let expect = model_outstanding(&issued);
        let got = ledger.outstanding_load();
        assert!(
            (got - expect).abs() < 1e-6,
            "outstanding load {got} != sum of live leases {expect}"
        );
        for r in &issued {
            assert_eq!(ledger.is_active(r.id), r.live, "liveness diverged");
        }
    }

    // Drain: release everything still live; the pool must balance to
    // zero outstanding load (no leak), and every id must now be dead.
    let still_live: Vec<LeaseId> = issued.iter().filter(|r| r.live).map(|r| r.id).collect();
    for id in still_live {
        // lint:allow(expect) — model says the lease is live
        ledger.release(id).expect("draining a live lease");
    }
    assert_eq!(ledger.active_leases(), 0);
    assert!(
        ledger.outstanding_load().abs() < 1e-6,
        "leak after full drain: {}",
        ledger.outstanding_load()
    );
    assert_eq!(
        ledger.committed_total(),
        ledger.released_total(),
        "every committed lease must be released exactly once"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interleavings_never_double_free_or_leak(
        ops in prop::collection::vec(
            (0u8..5, 0usize..64, 0.1f64..4.0, 0.25f64..1.75),
            1..60,
        )
    ) {
        run_script(&ops);
    }

    #[test]
    fn commit_heavy_scripts_balance(
        ops in prop::collection::vec(
            // Bias toward commits and releases only: the pure
            // lease-lifecycle algebra without faults.
            (0u8..2, 0usize..64, 0.1f64..4.0, 1.0f64..1.0000001),
            1..80,
        )
    ) {
        run_script(&ops);
    }
}
