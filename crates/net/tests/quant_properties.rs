//! Property tests for the lossless arc-weight quantizer.
//!
//! The contract behind the bucket kernel's correctness proof is strict:
//! [`QuantPlan::build`] either produces a `u32` scaling under which
//! *every* input weight round-trips to its exact `f64` bit pattern, or
//! it returns `None`. It must never silently round — a single ULP of
//! drift would let the bucket and heap kernels disagree on a tie-break
//! and silently reorder figure CSVs.

use dagsfc_net::routing::QuantPlan;
use proptest::prelude::*;

/// A weight that is exactly `m · 2⁻ᵏ` for the given shift.
fn dyadic(m: u32, k: u32) -> f64 {
    // 2⁻ᵏ is exact for small k; m stays well inside f64's 53-bit
    // integer range, so the product is the exact dyadic rational.
    f64::from(m) * 2f64.powi(-(k as i32))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any all-dyadic input under the shift cap with a bounded sum must
    /// be accepted, and every weight must reconstruct bit-exactly.
    #[test]
    fn dyadic_inputs_round_trip(
        k in 0u32..=12,
        ms in prop::collection::vec(1u32..=50_000, 1..48),
    ) {
        let ws: Vec<f64> = ms.iter().map(|&m| dyadic(m, k)).collect();
        let plan = QuantPlan::build(&ws).expect("dyadic grid must quantize");
        prop_assert_eq!(plan.weights.len(), ws.len());
        for (q, w) in plan.weights.iter().zip(&ws) {
            let back = f64::from(*q) * plan.scale;
            prop_assert_eq!(back.to_bits(), w.to_bits(), "round-trip must be exact");
            prop_assert!(*q >= 1, "quantized weights stay strictly positive");
        }
    }

    /// Whatever the input, acceptance implies exact reconstruction and
    /// a path-sum bound: Σq ≤ u32::MAX keeps every bucket key exact.
    #[test]
    fn never_silently_rounds(
        ws in prop::collection::vec(
            prop_oneof![
                // Dyadic grid values (accept candidates).
                (1u32..=4096, 0u32..=8).prop_map(|(m, k)| dyadic(m, k)),
                // Continuous draws (reject candidates).
                0.001f64..1.0e6,
                // Degenerate values (must force rejection).
                Just(0.0),
                Just(-1.5),
                Just(f64::NAN),
                Just(f64::INFINITY),
            ],
            1..48,
        ),
    ) {
        match QuantPlan::build(&ws) {
            Some(plan) => {
                let mut sum: u64 = 0;
                for (q, w) in plan.weights.iter().zip(&ws) {
                    let back = f64::from(*q) * plan.scale;
                    prop_assert_eq!(
                        back.to_bits(),
                        w.to_bits(),
                        "accepted plans must round-trip exactly"
                    );
                    sum += u64::from(*q);
                }
                prop_assert!(sum <= u64::from(u32::MAX), "path sums must fit u32");
            }
            None => {
                // Rejection is always allowed; the properties above only
                // constrain acceptance. Degenerate members *must* reject.
            }
        }
    }

    /// Non-positive or non-finite members force rejection outright.
    #[test]
    fn degenerate_members_force_rejection(
        prefix in prop::collection::vec(1u32..=100, 0..8),
        bad in prop_oneof![
            Just(0.0f64),
            Just(-2.5f64),
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
        ],
    ) {
        let mut ws: Vec<f64> = prefix.iter().map(|&m| f64::from(m)).collect();
        ws.push(bad);
        prop_assert!(QuantPlan::build(&ws).is_none());
    }

    /// Scaling a dyadic grid by an irrational-ish factor (1/3) breaks
    /// dyadicity and must reject — no hidden epsilon acceptance.
    #[test]
    fn non_dyadic_grids_reject(ms in prop::collection::vec(1u32..=1000, 1..32)) {
        let ws: Vec<f64> = ms.iter().map(|&m| f64::from(m) / 3.0).collect();
        // m/3 is dyadic only if the division lands exactly on a binary
        // fraction, which a 1/3 factor never does for m not ≡ 0 (mod 3)…
        // and even m = 3j gives j exactly, which *is* dyadic. Mixed
        // vectors with at least one non-multiple must reject.
        if ms.iter().any(|m| m % 3 != 0) {
            prop_assert!(QuantPlan::build(&ws).is_none());
        } else {
            // All-multiples collapse to integers: must accept exactly.
            let plan = QuantPlan::build(&ws).expect("integer grid");
            for (q, w) in plan.weights.iter().zip(&ws) {
                prop_assert_eq!((f64::from(*q) * plan.scale).to_bits(), w.to_bits());
            }
        }
    }
}
