//! Steady-state allocation audit for the scratch-backed routing kernels.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after
//! warming the CSR snapshot and the reusable [`RoutingScratch`], repeated
//! `min_cost_path_in` queries must allocate only the returned `Path`
//! (two small `Vec`s, plus occasional growth reallocations) — never
//! per-search working buffers. A naive Dijkstra that rebuilds its heap
//! and distance maps would blow the budget by two orders of magnitude,
//! so this test pins the scratch-reuse contract down hard.
//!
//! The whole audit lives in a single `#[test]` so no sibling test's
//! allocations bleed into the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dagsfc_net::routing::{
    bucket_kernel_available, min_cost_path_in, ArcWeight, NoFilter, RoutingScratch,
    ShortestPathTree,
};
use dagsfc_net::{Network, NodeId};

/// Counts every allocation (and growth reallocation) made through the
/// global allocator. Deallocations are free; we only budget acquisitions.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A deterministic 120-node test substrate: a ring with chords, prices
/// varied by a small arithmetic formula so shortest paths are non-trivial.
fn build_net(n: u32) -> Network {
    let mut g = Network::new();
    g.add_nodes(n as usize);
    for i in 0..n {
        let j = (i + 1) % n;
        let price = 0.5 + ((i * 7) % 13) as f64 * 0.1;
        g.add_link(NodeId(i), NodeId(j), price, 100.0).unwrap();
    }
    for i in 0..n {
        let j = (i + 7) % n;
        let price = 1.0 + ((i * 3) % 11) as f64 * 0.2;
        g.add_link(NodeId(i), NodeId(j), price, 100.0).unwrap();
    }
    g
}

/// Same shape, but prices on a dyadic 2⁻⁴ grid so the lossless
/// quantizer accepts and queries run on the bucket kernel instead of
/// the heap fallback.
fn build_dyadic_net(n: u32) -> Network {
    let mut g = Network::new();
    g.add_nodes(n as usize);
    for i in 0..n {
        let j = (i + 1) % n;
        let price = 0.5 + ((i * 7) % 13) as f64 * 0.0625;
        g.add_link(NodeId(i), NodeId(j), price, 100.0).unwrap();
    }
    for i in 0..n {
        let j = (i + 7) % n;
        let price = 1.0 + ((i * 3) % 11) as f64 * 0.125;
        g.add_link(NodeId(i), NodeId(j), price, 100.0).unwrap();
    }
    g
}

#[test]
fn steady_state_queries_allocate_only_the_result_path() {
    const N: u32 = 120;
    const QUERIES: u64 = 200;
    // Budget: the returned `Path` is two Vecs built by repeated push, so
    // a handful of growth reallocations per extraction is legitimate.
    // Scratch reuse is what keeps this bound tiny: one *search* on a
    // 120-node substrate touches every node, and rebuilding its heap,
    // distance and predecessor stores per query would cost hundreds of
    // allocations each.
    const PER_QUERY_BUDGET: u64 = 12;

    let net = build_net(N);
    let mut scratch = RoutingScratch::new();

    // Warm-up: force the lazy CSR snapshot build and grow the scratch
    // (and the thread's local buffers) to the substrate size.
    let warm = min_cost_path_in(&net, NodeId(0), NodeId(N / 2), &NoFilter, &mut scratch)
        .expect("warm-up path");
    assert!(warm.nodes().len() >= 2);

    // Steady state: distinct endpoint pairs so results cannot be cached
    // anywhere; every query runs a full Dijkstra in the shared scratch.
    let before = allocs();
    let mut total_hops = 0usize;
    for q in 0..QUERIES {
        let from = NodeId((q as u32 * 5) % N);
        let to = NodeId((q as u32 * 5 + N / 2 + (q as u32 % 3)) % N);
        let p = min_cost_path_in(&net, from, to, &NoFilter, &mut scratch).expect("reachable");
        total_hops += p.links().len();
    }
    let spent = allocs() - before;
    assert!(total_hops > 0);
    assert!(
        spent <= QUERIES * PER_QUERY_BUDGET,
        "steady-state routing allocated {spent} times over {QUERIES} queries \
         (budget {} total): scratch reuse regressed",
        QUERIES * PER_QUERY_BUDGET
    );

    // Tree builds allocate the tree's own dist/prev arrays and nothing
    // else; give them the same per-call budget plus the two arrays.
    let before = allocs();
    for q in 0..50u32 {
        let t = ShortestPathTree::build_in(&net, NodeId(q % N), &NoFilter, None, &mut scratch);
        assert!(t.dist_to(NodeId((q + 1) % N)).is_some());
    }
    let spent = allocs() - before;
    assert!(
        spent <= 50 * 6,
        "steady-state tree builds allocated {spent} times over 50 builds: \
         scratch reuse regressed"
    );

    // Bucket-kernel steady state: the dyadic-grid substrate routes
    // through the radix queue (the continuous-priced net above pins the
    // heap fallback — its 0.1-step prices never quantize). The bucket
    // kernel shares the same scratch-reuse contract: after warm-up, its
    // 33 bucket arrays and the qdist store persist across queries, so
    // the same per-query budget must hold.
    let dnet = build_dyadic_net(N);
    assert!(!bucket_kernel_available(&net, ArcWeight::Price));
    assert!(bucket_kernel_available(&dnet, ArcWeight::Price));
    let warm = min_cost_path_in(&dnet, NodeId(0), NodeId(N / 2), &NoFilter, &mut scratch)
        .expect("dyadic warm-up path");
    assert!(warm.nodes().len() >= 2);
    let before = allocs();
    let mut total_hops = 0usize;
    for q in 0..QUERIES {
        let from = NodeId((q as u32 * 5) % N);
        let to = NodeId((q as u32 * 5 + N / 2 + (q as u32 % 3)) % N);
        let p = min_cost_path_in(&dnet, from, to, &NoFilter, &mut scratch).expect("reachable");
        total_hops += p.links().len();
    }
    let spent = allocs() - before;
    assert!(total_hops > 0);
    assert!(
        spent <= QUERIES * PER_QUERY_BUDGET,
        "bucket-kernel routing allocated {spent} times over {QUERIES} queries \
         (budget {} total): radix-queue scratch reuse regressed",
        QUERIES * PER_QUERY_BUDGET
    );
}
