//! Differential audit: bucket-queue kernel ≡ binary-heap kernel.
//!
//! The monotone bucket (radix) queue only engages when the active weight
//! axis quantizes losslessly onto `u32`; when it does, the resulting
//! shortest-path tree must match the heap reference *bit for bit* —
//! distances, predecessors, and every tie-break. These tests sweep both
//! kernels over ≥12 seeded substrates (random generator + structured
//! topologies), under down-link and down-node filters and λ-weighted
//! (LARAC) sessions, and assert exact equality.
//!
//! Continuous fluctuated prices (the production generators) are not
//! dyadic, so there the `Auto` kernel falls back to the heap — asserted
//! explicitly, since figure-CSV byte-identity rides on that fallback.
//! The bucket path is exercised on dyadic re-pricings of the same
//! topologies (every weight snapped to a 2⁻⁴ grid).

use dagsfc_net::generator::generate;
use dagsfc_net::routing::{
    bucket_kernel_available, ArcWeight, LinkFilter, NoFilter, RoutingKernel, RoutingScratch,
    ShortestPathTree,
};
use dagsfc_net::topologies::{build, Topology};
use dagsfc_net::{LinkId, NetGenConfig, Network, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Rebuilds `src` with identical topology/capacities but every link
/// price and delay snapped to the dyadic `grid` (a power of two), so
/// the lossless quantizer accepts both weight axes.
fn dyadic_copy(src: &Network, grid: f64) -> Network {
    let snap = |x: f64| ((x / grid).round().max(1.0)) * grid;
    let mut net = Network::new();
    net.add_nodes(src.node_count());
    for l in 0..src.link_count() {
        let link = src.link(LinkId(l as u32));
        net.add_link_with_delay(
            link.a,
            link.b,
            snap(link.price),
            link.capacity,
            snap(link.delay_us),
        )
        .unwrap();
    }
    net
}

/// The twelve seeded substrates: six random-generator draws and six
/// structured topologies, all small enough to sweep exhaustively.
fn substrates() -> Vec<(String, Network)> {
    let cfg = NetGenConfig {
        nodes: 40,
        avg_degree: 4.0,
        ..NetGenConfig::default()
    };
    let mut nets = Vec::new();
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = generate(&cfg, &mut rng).unwrap();
        nets.push((format!("generated/{seed}"), net));
    }
    let topos = [
        Topology::Ring { n: 24 },
        Topology::Grid {
            rows: 4,
            cols: 6,
            wrap: false,
        },
        Topology::Grid {
            rows: 4,
            cols: 6,
            wrap: true,
        },
        Topology::FatTree { k: 4 },
        Topology::Waxman {
            n: 30,
            alpha: 0.9,
            beta: 0.9,
        },
        Topology::BarabasiAlbert { n: 30, m: 2 },
    ];
    for (i, topo) in topos.into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(100 + i as u64);
        let net = build(topo, &cfg, &mut rng).unwrap();
        nets.push((format!("topology/{i}"), net));
    }
    nets
}

/// Builds the same weighted tree with both kernels and asserts bitwise
/// identity of distances and full predecessor paths for every node.
fn assert_kernels_agree<F: LinkFilter>(
    label: &str,
    net: &Network,
    source: NodeId,
    filter: &F,
    target: Option<NodeId>,
    weight: ArcWeight,
) {
    let mut sa = RoutingScratch::new();
    let mut sb = RoutingScratch::new();
    let auto = ShortestPathTree::build_weighted_kernel_in(
        net,
        source,
        filter,
        target,
        &mut sa,
        weight,
        RoutingKernel::Auto,
    );
    let heap = ShortestPathTree::build_weighted_kernel_in(
        net,
        source,
        filter,
        target,
        &mut sb,
        weight,
        RoutingKernel::Heap,
    );
    for v in net.node_ids() {
        let da = auto.dist_to(v).map(f64::to_bits);
        let dh = heap.dist_to(v).map(f64::to_bits);
        assert_eq!(
            da, dh,
            "{label}: dist divergence at {v:?} (src {source:?}, {weight:?})"
        );
        let pa = auto.path_to(v);
        let ph = heap.path_to(v);
        match (pa, ph) {
            (Some(a), Some(h)) => {
                assert_eq!(
                    a.nodes(),
                    h.nodes(),
                    "{label}: parent/tie-break divergence at {v:?} (src {source:?}, {weight:?})"
                );
                assert_eq!(a.links(), h.links(), "{label}: link divergence at {v:?}");
            }
            (a, h) => assert_eq!(
                a.is_none(),
                h.is_none(),
                "{label}: reachability divergence at {v:?}"
            ),
        }
    }
}

/// Sample of source nodes covering both ends of the id range.
fn sources(net: &Network) -> [NodeId; 4] {
    let n = net.node_count() as u32;
    [NodeId(0), NodeId(n / 3), NodeId(n / 2), NodeId(n - 1)]
}

const WEIGHTS: [ArcWeight; 4] = [
    ArcWeight::Price,
    ArcWeight::Delay,
    // Dyadic λ: price + λ·delay stays on the dyadic grid, so the
    // bucket kernel engages on the per-query Lagrange quantization.
    ArcWeight::Lagrange(0.5),
    // Non-dyadic λ: the per-query quantization must reject and fall
    // back to the heap — still required to agree (trivially).
    ArcWeight::Lagrange(0.3),
];

#[test]
fn continuous_prices_fall_back_to_heap_and_agree() {
    for (label, net) in substrates() {
        // Fluctuated continuous draws never land the whole arc array on
        // a dyadic grid: the figure CSVs are byte-identical because the
        // production substrates take the heap path unchanged.
        assert!(
            !bucket_kernel_available(&net, ArcWeight::Price),
            "{label}: expected heap fallback on continuous prices"
        );
        assert!(!bucket_kernel_available(&net, ArcWeight::Delay));
        for source in sources(&net) {
            assert_kernels_agree(&label, &net, source, &NoFilter, None, ArcWeight::Price);
        }
    }
}

#[test]
fn dyadic_substrates_engage_bucket_and_match_heap() {
    for (label, base) in substrates() {
        let net = dyadic_copy(&base, 0.0625);
        assert!(
            bucket_kernel_available(&net, ArcWeight::Price),
            "{label}: dyadic re-pricing must quantize losslessly"
        );
        assert!(bucket_kernel_available(&net, ArcWeight::Delay));
        assert!(bucket_kernel_available(&net, ArcWeight::Lagrange(0.5)));
        for weight in WEIGHTS {
            for source in sources(&net) {
                assert_kernels_agree(&label, &net, source, &NoFilter, None, weight);
            }
        }
    }
}

#[test]
fn filtered_sessions_match_under_down_links_and_down_nodes() {
    for (label, base) in substrates() {
        let net = dyadic_copy(&base, 0.0625);
        // Down-link session: every fifth link is failed, the oracle's
        // link-outage filter shape.
        let down_links = move |l: LinkId| l.0 % 5 != 2;
        // Down-node session: links touching the failed node are
        // unusable, mirroring the oracle's down-node arc filter.
        let dead = NodeId(net.node_count() as u32 / 2);
        let banned: Vec<bool> = (0..net.link_count())
            .map(|l| net.link(LinkId(l as u32)).touches(dead))
            .collect();
        let down_node = move |l: LinkId| !banned[l.index()];
        for weight in [ArcWeight::Price, ArcWeight::Delay, ArcWeight::Lagrange(0.5)] {
            for source in sources(&net) {
                if source == dead {
                    continue;
                }
                assert_kernels_agree(&label, &net, source, &down_links, None, weight);
                assert_kernels_agree(&label, &net, source, &down_node, None, weight);
            }
        }
    }
}

#[test]
fn early_target_exit_matches_heap() {
    for (label, base) in substrates() {
        let net = dyadic_copy(&base, 0.0625);
        let n = net.node_count() as u32;
        for (s, t) in [(0, n - 1), (n / 2, 0), (1, n / 2)] {
            assert_kernels_agree(
                &label,
                &net,
                NodeId(s),
                &NoFilter,
                Some(NodeId(t)),
                ArcWeight::Price,
            );
        }
    }
}

#[test]
fn uniform_prices_pin_tie_breaks() {
    // Every link priced 1.0: shortest-path trees are all tie-breaks.
    // A ring with chords yields many equal-cost alternatives, so any
    // deviation in pop order or relaxation strictness shows up here.
    let mut net = Network::new();
    let n = 30u32;
    net.add_nodes(n as usize);
    for i in 0..n {
        net.add_link_with_delay(NodeId(i), NodeId((i + 1) % n), 1.0, 100.0, 2.0)
            .unwrap();
    }
    for i in 0..n {
        net.add_link_with_delay(NodeId(i), NodeId((i + 6) % n), 1.0, 100.0, 2.0)
            .unwrap();
    }
    assert!(bucket_kernel_available(&net, ArcWeight::Price));
    for source in net.node_ids() {
        for weight in [ArcWeight::Price, ArcWeight::Lagrange(0.5)] {
            assert_kernels_agree("uniform", &net, source, &NoFilter, None, weight);
        }
    }
}

#[test]
fn scratch_reuse_across_kernels_is_clean() {
    // One shared scratch alternating bucket and heap searches must not
    // leak state between kernels (epoch stamping covers qdist too).
    let (_, base) = substrates().remove(0);
    let net = dyadic_copy(&base, 0.0625);
    let mut shared = RoutingScratch::new();
    for q in 0..40u32 {
        let source = NodeId(q % net.node_count() as u32);
        let kernel = if q % 2 == 0 {
            RoutingKernel::Auto
        } else {
            RoutingKernel::Heap
        };
        let tree = ShortestPathTree::build_weighted_kernel_in(
            &net,
            source,
            &NoFilter,
            None,
            &mut shared,
            ArcWeight::Price,
            kernel,
        );
        let mut fresh = RoutingScratch::new();
        let reference = ShortestPathTree::build_weighted_kernel_in(
            &net,
            source,
            &NoFilter,
            None,
            &mut fresh,
            ArcWeight::Price,
            RoutingKernel::Heap,
        );
        for v in net.node_ids() {
            assert_eq!(
                tree.dist_to(v).map(f64::to_bits),
                reference.dist_to(v).map(f64::to_bits),
                "shared-scratch divergence at {v:?} query {q}"
            );
        }
    }
}
