//! # dagsfc-shard — region-partitioned substrate serving
//!
//! Splits one substrate [`Network`](dagsfc_net::Network) into `N`
//! region shards, each backed by its own
//! [`CommitLedger`](dagsfc_net::CommitLedger) (and therefore its own
//! lock domain), and serves embedding requests across them without
//! giving up a single guarantee of the unsharded pipeline:
//!
//! - **[`ShardPlan`]** — contiguous-range node partition, per-link
//!   owner shards, gateway nodes, boundary links.
//! - **[`GatewayTable`]** — precomputed min-cost gateway-to-gateway
//!   corridors per shard pair (the stitching price oracle).
//! - **[`ShardRouter`]** — pure, deterministic request → home-shard
//!   assignment.
//! - **[`ShardedEngine`]** — stitched residual views, two-phase commit
//!   across the involved ledgers (reserve → audit → commit, rollback on
//!   any failure), and the solver-independent audit of every stitched
//!   embedding against the **unpartitioned** substrate.
//!
//! The gateway API on [`ShardedEngine`] is the only sanctioned way to
//! touch a shard's ledger; the `shard-ledger` lint rule fails CI on any
//! direct access from outside this crate.

#![warn(missing_docs)]

mod engine;
mod plan;
mod router;

pub use engine::{Accepted, ShardLoad, ShardedEngine, ShardedStats, StitchId, MAX_COMMIT_RETRIES};
pub use plan::{GatewayTable, PlanSummary, ShardError, ShardPlan, TransitRoute};
pub use router::{RoutePolicy, ShardRouter};
