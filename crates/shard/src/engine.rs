//! The sharded serving engine: per-shard [`CommitLedger`]s behind one
//! gateway API, stitched cross-shard solves, and a two-phase commit
//! that every embedding must clear before any shard keeps its load.
//!
//! ## How a request is served
//!
//! 1. The [`ShardRouter`] assigns a **home shard** (pure function of
//!    the flow — see `router.rs`).
//! 2. The engine builds the **stitched view**: a residual network in
//!    which only the home shard's resources, the destination shard's
//!    resources, the direct home↔destination boundary links, and the
//!    precomputed gateway **corridor** between the two shards carry
//!    capacity; everything else is zeroed. For an intra-shard request
//!    the view exposes the home shard alone. Residual capacities are
//!    read from each resource's *owner* ledger, so the view is exact.
//! 3. A standard solver runs over the view — the chain segments land in
//!    the exposed shards, and the tail path can only reach the
//!    destination through the corridor the inter-gateway table priced.
//! 4. **Two-phase commit**: the embedding's loads are grouped by owner
//!    shard and reserved in ascending shard order (phase 1); the
//!    finished embedding is audited against the **unpartitioned**
//!    residual substrate plus the stitching scope (phase 2); only then
//!    does the stitched lease go on the books (phase 3). Any failure
//!    rolls back every reservation already made.
//!
//! With one shard the view is the full residual, the corridor set is
//! empty, and every step above degenerates to exactly what
//! `dagsfc_serve::Engine` does — the 1-shard differential test pins
//! that equivalence bit-for-bit.

use crate::plan::{GatewayTable, ShardPlan};
use crate::router::ShardRouter;
use dagsfc_audit::{stitched_scope_violations, ConstraintAuditor};
use dagsfc_core::{CostBreakdown, DagSfc, Flow};
use dagsfc_net::{
    CommitLedger, FaultEvent, LeaseId, LinkId, NetError, NetResult, Network, NodeId, VnfTypeId,
};
use dagsfc_sim::{Algo, EmbedRejection};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bounded retry budget for transient commit failures, mirroring the
/// unsharded engine's (`dagsfc_serve::MAX_COMMIT_RETRIES`): the views
/// are force-refreshed and the request re-solved at most this many
/// extra times.
pub const MAX_COMMIT_RETRIES: u32 = 2;

/// Handle for one stitched lease (spans one ledger per involved shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StitchId(pub u64);

impl std::fmt::Display for StitchId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stitch#{}", self.0)
    }
}

/// An accepted embed, as the sharded engine reports it.
#[derive(Debug, Clone, Copy)]
pub struct Accepted {
    /// Handle the client releases on departure.
    pub lease: StitchId,
    /// Objective cost of the stitched embedding.
    pub cost: CostBreakdown,
    /// How many shard ledgers the commit spans (1 for intra-shard).
    pub shards_involved: usize,
}

/// Which resources a stitched view exposes.
struct Exposure {
    home: usize,
    dst: usize,
    /// Links of the precomputed corridor between `home` and `dst`,
    /// ascending (empty for intra-shard views).
    corridor: Vec<LinkId>,
}

impl Exposure {
    fn node_in_scope(&self, plan: &ShardPlan, node: NodeId) -> bool {
        let s = plan.shard_of(node);
        s == self.home || s == self.dst
    }

    fn link_in_scope(&self, plan: &ShardPlan, net: &Network, link: LinkId) -> bool {
        let l = net.link(link);
        let sa = plan.shard_of(l.a);
        let sb = plan.shard_of(l.b);
        let both_home = sa == self.home && sb == self.home;
        let both_dst = sa == self.dst && sb == self.dst;
        let spans = (sa == self.home && sb == self.dst) || (sa == self.dst && sb == self.home);
        both_home || both_dst || spans || self.corridor.binary_search(&link).is_ok()
    }
}

struct CachedView {
    epochs: Vec<u64>,
    net: Arc<Network>,
}

#[derive(Debug, Default, Clone, Copy)]
struct LatencyAcc {
    solves: u64,
    total: Duration,
}

/// Per-shard load figures for the stats report.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ShardLoad {
    /// Shard index.
    pub shard: u64,
    /// Sub-leases currently outstanding in this shard's ledger.
    pub active_leases: u64,
    /// Sub-leases released over the shard's lifetime.
    pub released: u64,
    /// The shard ledger's change epoch.
    pub epoch: u64,
    /// Committed-but-unreleased load in this shard.
    pub outstanding_load: f64,
    /// Fault events that changed this shard's state.
    pub faults_applied: u64,
    /// Gateway nodes of this shard.
    pub gateways: u64,
}

/// Aggregate counters of a [`ShardedEngine`] (the serve layer maps
/// these into its wire-level `StatsReport`).
#[derive(Debug, Clone, Default)]
pub struct ShardedStats {
    /// Requests embedded and committed.
    pub accepted: u64,
    /// Requests turned away.
    pub rejected: u64,
    /// Of `rejected`: proven deadline-infeasible.
    pub rejected_deadline: u64,
    /// Of `rejected`: placement rules (affinity/anti-affinity) infeasible.
    pub rejected_rule: u64,
    /// Of `rejected`: capacity/topology infeasibility.
    pub rejected_capacity: u64,
    /// Sum of accepted stitched costs.
    pub total_cost: f64,
    /// Stitched leases currently outstanding.
    pub active_leases: u64,
    /// Sub-lease releases summed over every shard ledger.
    pub released: u64,
    /// Sum of shard-ledger epochs (moves on every commit/release).
    pub epoch: u64,
    /// Outstanding load summed over every shard.
    pub outstanding_load: f64,
    /// Path-cache hits summed over accepted solves.
    pub solver_cache_hits: u64,
    /// Path-cache misses summed over accepted solves.
    pub solver_cache_misses: u64,
    /// Commits re-checked by the constraint auditor (every one).
    pub audits_run: u64,
    /// Audits that found a violation (rolled back) — must stay 0.
    pub audits_failed: u64,
    /// Fault events that changed some shard's state.
    pub faults_applied: u64,
    /// Sub-leases reclaimed from vanished owners.
    pub orphans_reclaimed: u64,
    /// Transient commit failures retried with refreshed views.
    pub commit_retries: u64,
    /// Requests whose source and destination shards differed.
    pub cross_shard_offered: u64,
    /// Cross-shard requests that committed.
    pub cross_shard_accepted: u64,
    /// Per-algorithm `(name, solves, total wall time)`.
    pub per_algo: Vec<(&'static str, u64, Duration)>,
    /// Per-shard load figures.
    pub per_shard: Vec<ShardLoad>,
}

/// Per-shard ledgers, stitched views, and the two-phase commit gateway
/// (see the module docs). This type is the **only** sanctioned path to
/// a shard's `CommitLedger` — the `shard-ledger` lint rule turns direct
/// access from outside `crates/shard` into a CI failure.
pub struct ShardedEngine<'n> {
    net: &'n Network,
    plan: ShardPlan,
    router: ShardRouter,
    table: GatewayTable,
    ledgers: Vec<CommitLedger<'n>>,
    auditor: ConstraintAuditor,
    /// View cache: `(home, dst)` → stitched view; `home == dst` is the
    /// local view; [`UNPARTITIONED`] is the all-shards residual.
    views: BTreeMap<(u32, u32), CachedView>,
    leases: BTreeMap<u64, Vec<(usize, LeaseId)>>,
    next_stitch: u64,
    accepted: u64,
    rejected: u64,
    rejected_deadline: u64,
    rejected_rule: u64,
    rejected_capacity: u64,
    total_cost: f64,
    solver_cache_hits: u64,
    solver_cache_misses: u64,
    audits_run: u64,
    audits_failed: u64,
    commit_retries: u64,
    cross_shard_offered: u64,
    cross_shard_accepted: u64,
    per_algo: BTreeMap<&'static str, LatencyAcc>,
}

/// Cache key of the unpartitioned (all-shards) residual view.
const UNPARTITIONED: (u32, u32) = (u32::MAX, u32::MAX);

impl<'n> ShardedEngine<'n> {
    /// A fresh engine over `net` partitioned into `plan`'s shards, with
    /// all capacities available. Builds the inter-gateway distance
    /// table eagerly (base-capacity pricing; see `plan.rs`).
    pub fn new(net: &'n Network, plan: ShardPlan, router: ShardRouter) -> Self {
        let table = GatewayTable::build(net, &plan);
        let ledgers = (0..plan.shards()).map(|_| CommitLedger::new(net)).collect();
        ShardedEngine {
            net,
            plan,
            router,
            table,
            ledgers,
            auditor: ConstraintAuditor::new(),
            views: BTreeMap::new(),
            leases: BTreeMap::new(),
            next_stitch: 1,
            accepted: 0,
            rejected: 0,
            rejected_deadline: 0,
            rejected_rule: 0,
            rejected_capacity: 0,
            total_cost: 0.0,
            solver_cache_hits: 0,
            solver_cache_misses: 0,
            audits_run: 0,
            audits_failed: 0,
            commit_retries: 0,
            cross_shard_offered: 0,
            cross_shard_accepted: 0,
            per_algo: BTreeMap::new(),
        }
    }

    /// The base (full-capacity) network.
    pub fn network(&self) -> &'n Network {
        self.net
    }

    /// The partition plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The inter-gateway distance table.
    pub fn table(&self) -> &GatewayTable {
        &self.table
    }

    /// The home shard the router would assign to `flow`.
    pub fn home_shard(&self, flow: &Flow) -> usize {
        self.router.assign(&self.plan, flow)
    }

    /// Read-only escape hatch to one shard's ledger, for tests and
    /// diagnostics only — production code must go through the gateway
    /// API above, and the `shard-ledger` lint rule enforces exactly
    /// that outside `crates/shard`.
    #[doc(hidden)]
    pub fn raw_ledger(&self, shard: usize) -> &CommitLedger<'n> {
        &self.ledgers[shard]
    }

    fn epochs(&self) -> Vec<u64> {
        self.ledgers.iter().map(|l| l.epoch()).collect()
    }

    /// Builds (or reuses) the residual view for `exposure`; `None`
    /// exposes every shard — the unpartitioned residual the auditor
    /// checks against.
    fn view_for(&mut self, key: (u32, u32), exposure: Option<&Exposure>) -> Arc<Network> {
        let epochs = self.epochs();
        if let Some(cached) = self.views.get(&key) {
            if cached.epochs == epochs {
                return Arc::clone(&cached.net);
            }
        }
        let plan = &self.plan;
        let ledgers = &self.ledgers;
        let net = self.net;
        let built = net.map_capacities(
            |node, vnf, _| {
                if let Some(e) = exposure {
                    if !e.node_in_scope(plan, node) {
                        return 0.0;
                    }
                }
                let state = ledgers[plan.shard_of(node)].state();
                if !state.node_available(node) {
                    return 0.0;
                }
                state
                    .vnf_remaining(node, vnf)
                    // lint:allow(expect) — invariant: instance exists in source network
                    .expect("instance exists in source network")
                    .max(0.0)
            },
            |link, _| {
                if let Some(e) = exposure {
                    if !e.link_in_scope(plan, net, link) {
                        return 0.0;
                    }
                }
                let state = ledgers[plan.owner_of(link)].state();
                if !state.link_available(link) {
                    return 0.0;
                }
                state
                    .link_remaining(link)
                    // lint:allow(expect) — invariant: link exists in source network
                    .expect("link exists in source network")
                    .max(0.0)
            },
        );
        let arc = Arc::new(built);
        self.views.insert(
            key,
            CachedView {
                epochs,
                net: Arc::clone(&arc),
            },
        );
        arc
    }

    fn exposure(&self, home: usize, dst: usize) -> Exposure {
        let corridor = if home == dst {
            Vec::new()
        } else {
            self.table
                .corridor(home, dst)
                .map(|r| {
                    let mut links = r.path.links().to_vec();
                    links.sort_unstable();
                    links
                })
                .unwrap_or_default()
        };
        Exposure {
            home,
            dst,
            corridor,
        }
    }

    /// The unpartitioned residual: every shard's state combined — what
    /// a single global ledger would report. The audit target.
    pub fn unpartitioned_residual(&mut self) -> Arc<Network> {
        self.view_for(UNPARTITIONED, None)
    }

    /// Solves and (two-phase) commits one request. Counted either way.
    pub fn embed(
        &mut self,
        sfc: &DagSfc,
        flow: &Flow,
        algo: Algo,
        seed: u64,
    ) -> Result<Accepted, EmbedRejection> {
        let home = self.router.assign(&self.plan, flow);
        let dst = self.plan.shard_of(flow.dst);
        let cross = home != dst;
        if cross {
            self.cross_shard_offered += 1;
        }
        let exposure = self.exposure(home, dst);
        let mut attempt = 0u32;
        loop {
            let view = self.view_for((home as u32, dst as u32), Some(&exposure));
            // The audit target must predate phase 1's reservations. With
            // a single shard the stitched view *is* the unpartitioned
            // residual — reuse it instead of building a second network.
            let unpart = if self.plan.shards() == 1 {
                Arc::clone(&view)
            } else {
                self.unpartitioned_residual()
            };
            let started = Instant::now();
            let result =
                two_phase_reserve(&mut self.ledgers, &self.plan, &view, sfc, flow, algo, seed);
            let elapsed = started.elapsed();
            let acc = self.per_algo.entry(algo.name()).or_default();
            acc.solves += 1;
            acc.total += elapsed;
            match result {
                Ok(pending) => {
                    // Phase 2: audit the stitched embedding against the
                    // *unpartitioned* substrate — the same constraints
                    // (2)-(10) certificate an unsharded daemon issues —
                    // plus the stitching scope: every VNF in the home or
                    // destination shard, every path link exposed by the
                    // view. A violation rolls back every reservation.
                    self.audits_run += 1;
                    let report = self
                        .auditor
                        .audit_outcome(&unpart, sfc, flow, &pending.outcome);
                    let scope = stitched_scope_violations(
                        &pending.outcome.embedding,
                        &|node| exposure.node_in_scope(&self.plan, node),
                        &|link| exposure.link_in_scope(&self.plan, self.net, link),
                    );
                    if !report.is_clean() || !scope.is_empty() {
                        self.audits_failed += 1;
                        rollback(&mut self.ledgers, &pending.parts);
                        self.rejected += 1;
                        let mut summary = report.summary();
                        if !scope.is_empty() {
                            if !summary.is_empty() {
                                summary.push_str("; ");
                            }
                            summary.push_str(&scope.join("; "));
                        }
                        return Err(EmbedRejection::Audit(summary));
                    }
                    // Phase 3: the stitched lease goes on the books.
                    let id = StitchId(self.next_stitch);
                    self.next_stitch += 1;
                    let shards_involved = pending.parts.len();
                    self.leases.insert(id.0, pending.parts);
                    self.accepted += 1;
                    if cross {
                        self.cross_shard_accepted += 1;
                    }
                    self.total_cost += pending.cost.total();
                    self.solver_cache_hits += pending.stats.cache_hits;
                    self.solver_cache_misses += pending.stats.cache_misses;
                    return Ok(Accepted {
                        lease: id,
                        cost: pending.cost,
                        shards_involved,
                    });
                }
                Err(EmbedRejection::Commit(_)) if attempt < MAX_COMMIT_RETRIES => {
                    attempt += 1;
                    self.commit_retries += 1;
                    // Force every cached view to rebuild.
                    self.views.clear();
                }
                Err(e) => {
                    self.rejected += 1;
                    if e.is_deadline_infeasible() {
                        self.rejected_deadline += 1;
                    } else if e.is_rule_infeasible() {
                        self.rejected_rule += 1;
                    } else if matches!(e, EmbedRejection::Solve(_)) {
                        self.rejected_capacity += 1;
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Releases a stitched lease: every per-shard sub-lease, in
    /// **descending** shard order — the reverse of phase-1 acquisition,
    /// the classic 2PC release discipline (per-ledger releases are
    /// independent, so the outcome is bit-identical either way; the
    /// `lock-order` lint pass pins the discipline for future paths).
    pub fn release(&mut self, lease: StitchId) -> NetResult<()> {
        // lint:ascending(parts) — stitched leases store phase-1 parts
        // in ascending shard order (built under the by_shard BTreeMap).
        let parts = self
            .leases
            .remove(&lease.0)
            .ok_or(NetError::UnknownLease(lease.0))?;
        for (shard, sub) in parts.into_iter().rev() {
            self.ledgers[shard].release(sub)?;
        }
        Ok(())
    }

    /// Whether `lease` is currently outstanding.
    pub fn is_active(&self, lease: StitchId) -> bool {
        self.leases.contains_key(&lease.0)
    }

    /// Stitched leases currently outstanding.
    pub fn active_leases(&self) -> usize {
        self.leases.len()
    }

    /// Applies one substrate fault to the **owner shard's** ledger —
    /// faults are region-local, exactly like commits. Returns whether
    /// the state changed.
    pub fn apply_fault(&mut self, event: &FaultEvent) -> NetResult<bool> {
        let shard = match *event {
            FaultEvent::LinkDown { link }
            | FaultEvent::LinkUp { link }
            | FaultEvent::LinkCapacity { link, .. } => {
                self.net.try_link(link)?;
                self.plan.owner_of(link)
            }
            FaultEvent::NodeDown { node }
            | FaultEvent::NodeUp { node }
            | FaultEvent::VnfCapacity { node, .. } => {
                self.net.try_node(node)?;
                self.plan.shard_of(node)
            }
        };
        self.ledgers[shard].apply_fault(event)
    }

    /// Sets the owner tag for subsequent commits on every shard ledger
    /// (`None` clears).
    pub fn set_request_owner(&mut self, owner: Option<u64>) {
        for ledger in &mut self.ledgers {
            ledger.set_default_owner(owner);
        }
    }

    /// Releases every sub-lease committed under `owner` across all
    /// shards and drops the stitched leases they belonged to. Returns
    /// the reclaimed stitched ids, ascending.
    pub fn reclaim_owner(&mut self, owner: u64) -> Vec<StitchId> {
        let mut dead: Vec<(usize, LeaseId)> = Vec::new();
        for (shard, ledger) in self.ledgers.iter_mut().enumerate() {
            for sub in ledger.reclaim_owner(owner) {
                dead.push((shard, sub));
            }
        }
        if dead.is_empty() {
            return Vec::new();
        }
        let mut reclaimed = Vec::new();
        self.leases.retain(|&id, parts| {
            let hit = parts.iter().any(|p| dead.contains(p));
            if hit {
                reclaimed.push(StitchId(id));
            }
            !hit
        });
        reclaimed
    }

    /// Counts a request turned away before it reached a solver.
    pub fn count_admission_rejection(&mut self) {
        self.rejected += 1;
    }

    /// The engine's aggregate counters.
    pub fn stats(&self) -> ShardedStats {
        ShardedStats {
            accepted: self.accepted,
            rejected: self.rejected,
            rejected_deadline: self.rejected_deadline,
            rejected_rule: self.rejected_rule,
            rejected_capacity: self.rejected_capacity,
            total_cost: self.total_cost,
            active_leases: self.leases.len() as u64,
            released: self.ledgers.iter().map(|l| l.released_total()).sum(),
            epoch: self.ledgers.iter().map(|l| l.epoch()).sum(),
            outstanding_load: self.ledgers.iter().map(|l| l.outstanding_load()).sum(),
            solver_cache_hits: self.solver_cache_hits,
            solver_cache_misses: self.solver_cache_misses,
            audits_run: self.audits_run,
            audits_failed: self.audits_failed,
            faults_applied: self.ledgers.iter().map(|l| l.faults_applied()).sum(),
            orphans_reclaimed: self.ledgers.iter().map(|l| l.orphans_reclaimed()).sum(),
            commit_retries: self.commit_retries,
            cross_shard_offered: self.cross_shard_offered,
            cross_shard_accepted: self.cross_shard_accepted,
            per_algo: self
                .per_algo
                .iter()
                .map(|(name, acc)| (*name, acc.solves, acc.total))
                .collect(),
            per_shard: self
                .ledgers
                .iter()
                .enumerate()
                .map(|(k, l)| ShardLoad {
                    shard: k as u64,
                    active_leases: l.active_leases() as u64,
                    released: l.released_total(),
                    epoch: l.epoch(),
                    outstanding_load: l.outstanding_load(),
                    faults_applied: l.faults_applied(),
                    gateways: self.plan.gateways(k).len() as u64,
                })
                .collect(),
        }
    }
}

/// A phase-1 reservation awaiting its audit: one sub-lease per involved
/// shard, ascending shard order.
struct PendingCommit {
    parts: Vec<(usize, LeaseId)>,
    cost: CostBreakdown,
    stats: dagsfc_core::solvers::SolverStats,
    outcome: dagsfc_core::solvers::SolveOutcome,
}

/// Phase 1: solve over the stitched view, group the embedding's loads
/// by owner shard, and reserve them ledger by ledger in ascending shard
/// order. Any ledger refusal rolls back the reservations already made
/// and surfaces as an ordinary [`EmbedRejection::Commit`].
fn two_phase_reserve(
    ledgers: &mut [CommitLedger<'_>],
    plan: &ShardPlan,
    view: &Network,
    sfc: &DagSfc,
    flow: &Flow,
    algo: Algo,
    seed: u64,
) -> Result<PendingCommit, EmbedRejection> {
    let solver = algo.build(seed);
    let out = solver
        .solve(view, sfc, flow)
        .map_err(EmbedRejection::Solve)?;
    let acct = out
        .embedding
        .try_account(view, sfc, flow)
        .map_err(EmbedRejection::Account)?;

    // Group every load by the shard whose ledger owns the resource.
    type Loads = (Vec<(NodeId, VnfTypeId, f64)>, Vec<(LinkId, f64)>);
    let mut by_shard: BTreeMap<usize, Loads> = BTreeMap::new();
    for (&(node, kind), &load) in acct.vnf_load.iter() {
        by_shard
            .entry(plan.shard_of(node))
            .or_default()
            .0
            .push((node, kind, load));
    }
    for (i, &load) in acct.link_load.iter().enumerate() {
        if load > 0.0 {
            let link = LinkId(i as u32);
            by_shard
                .entry(plan.owner_of(link))
                .or_default()
                .1
                .push((link, load));
        }
    }

    // lint:ascending(parts) — filled strictly in BTreeMap (ascending
    // shard) order below; the lock-order pass checks every push.
    let mut parts: Vec<(usize, LeaseId)> = Vec::with_capacity(by_shard.len());
    for (shard, (vnf_loads, link_loads)) in by_shard {
        // Phase 1 of the shard gateway's 2PC: this module is the
        // sanctioned multi-ledger commit site, and phase 2 audits the
        // result before the lease is honored. lint:allow(raw-commit)
        match ledgers[shard].commit(vnf_loads, link_loads) {
            Ok(sub) => parts.push((shard, sub)),
            Err(e) => {
                rollback(ledgers, &parts);
                return Err(EmbedRejection::Commit(e));
            }
        }
    }
    Ok(PendingCommit {
        parts,
        cost: out.cost,
        stats: out.stats.clone(),
        outcome: out,
    })
}

/// Releases every phase-1 reservation of a failed two-phase commit, in
/// reverse acquisition order (descending shard), mirroring
/// [`ShardedEngine::release`].
fn rollback(ledgers: &mut [CommitLedger<'_>], parts: &[(usize, LeaseId)]) {
    // lint:ascending(parts) — phase 1 reserves under the by_shard
    // BTreeMap, so `parts` is ascending by construction.
    for &(shard, sub) in parts.iter().rev() {
        // lint:allow(expect) — invariant: a fresh phase-1 sub-lease is active
        ledgers[shard].release(sub).expect("sub-lease is active");
    }
}
