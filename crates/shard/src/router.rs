//! Deterministic request-to-shard assignment.
//!
//! The router is a *pure function* of the plan and the request: no
//! load feedback, no randomness, no clock. That is a deliberate
//! serving-layer invariant — the home shard of a request must be the
//! same on every replica, in every replay, at any worker count, or the
//! two-phase commit order (and with it the bit-for-bit replay
//! guarantee) falls apart.

use crate::plan::ShardPlan;
use dagsfc_core::Flow;

/// How the home shard of a request is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutePolicy {
    /// The shard owning the flow's source node — VNF processing starts
    /// next to the traffic source, and only the tail of the chain
    /// crosses the corridor.
    #[default]
    SourceAffinity,
    /// The shard owning the flow's destination node (egress-heavy
    /// deployments where the chain should terminate near the sink).
    DestinationAffinity,
}

/// Deterministic shard router (see the module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardRouter {
    policy: RoutePolicy,
}

impl ShardRouter {
    /// A router with the given policy.
    pub fn new(policy: RoutePolicy) -> ShardRouter {
        ShardRouter { policy }
    }

    /// The policy in force.
    pub fn policy(&self) -> RoutePolicy {
        self.policy
    }

    /// The home shard of `flow` under `plan` — pure and total: every
    /// valid flow maps to exactly one shard.
    pub fn assign(&self, plan: &ShardPlan, flow: &Flow) -> usize {
        match self.policy {
            RoutePolicy::SourceAffinity => plan.shard_of(flow.src),
            RoutePolicy::DestinationAffinity => plan.shard_of(flow.dst),
        }
    }
}
