//! Region partitioning of a substrate network.
//!
//! A [`ShardPlan`] assigns every node to exactly one of `N` region
//! shards (contiguous node-index ranges, so the assignment is a pure
//! function of the node id and the shard count), derives a unique
//! *owner* shard for every link, and designates the **gateway** nodes:
//! the endpoints of links that cross a shard boundary. Gateways are
//! where cross-shard embeddings are stitched together.
//!
//! On top of the plan, a [`GatewayTable`] precomputes the min-cost
//! transit route between every ordered pair of gateways over the base
//! (full-capacity) substrate, and distils it into one *corridor* per
//! ordered shard pair — the cheapest gateway-to-gateway route that a
//! stitched embedding between those shards is allowed to use. The table
//! is the pricing oracle of the stitching step: gateway selection is a
//! table lookup, never a per-request graph search.

use dagsfc_net::{LinkId, Network, NodeId, Path, PathOracle};
use serde::Serialize;
use std::collections::BTreeMap;

/// Shard-layer failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardError {
    /// The requested shard count cannot partition the network: zero, or
    /// more shards than nodes (an empty shard has no resources and no
    /// gateways).
    InvalidShardCount {
        /// Requested shard count.
        shards: usize,
        /// Nodes available to partition.
        nodes: usize,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::InvalidShardCount { shards, nodes } => write!(
                f,
                "shard count {shards} must be in 1..={nodes} for a {nodes}-node network"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

/// A static partition of a substrate into `N` region shards.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    shards: usize,
    /// Node index → shard index.
    node_shard: Vec<u32>,
    /// Link index → owning shard (the smaller of the endpoint shards,
    /// so every resource has exactly one ledger of record).
    link_owner: Vec<u32>,
    /// Per shard: gateway nodes, ascending.
    gateways: Vec<Vec<NodeId>>,
    /// Links whose endpoints live in different shards, ascending.
    cross_links: Vec<LinkId>,
}

impl ShardPlan {
    /// Partitions `net` into `shards` contiguous node-index ranges.
    ///
    /// Shard `k` owns nodes `[k·n/N, (k+1)·n/N)` — deterministic, and
    /// independent of everything except the node count and `N`. Errors
    /// when `shards` is zero or exceeds the node count (an empty shard
    /// would have no resources and no gateways).
    pub fn partition(net: &Network, shards: usize) -> Result<ShardPlan, ShardError> {
        let n = net.node_count();
        if shards == 0 || shards > n {
            return Err(ShardError::InvalidShardCount { shards, nodes: n });
        }
        let node_shard: Vec<u32> = (0..n).map(|v| ((v * shards) / n) as u32).collect();
        let mut link_owner = Vec::with_capacity(net.link_count());
        let mut cross_links = Vec::new();
        let mut is_gateway = vec![false; n];
        for li in 0..net.link_count() {
            let link = net.link(LinkId(li as u32));
            let sa = node_shard[link.a.index()];
            let sb = node_shard[link.b.index()];
            link_owner.push(sa.min(sb));
            if sa != sb {
                cross_links.push(LinkId(li as u32));
                is_gateway[link.a.index()] = true;
                is_gateway[link.b.index()] = true;
            }
        }
        let mut gateways = vec![Vec::new(); shards];
        for (v, &gw) in is_gateway.iter().enumerate() {
            if gw {
                gateways[node_shard[v] as usize].push(NodeId(v as u32));
            }
        }
        Ok(ShardPlan {
            shards,
            node_shard,
            link_owner,
            gateways,
            cross_links,
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.node_shard[node.index()] as usize
    }

    /// The shard whose ledger records `link`'s bandwidth (the smaller
    /// endpoint shard for cross-shard links).
    pub fn owner_of(&self, link: LinkId) -> usize {
        self.link_owner[link.index()] as usize
    }

    /// Whether `link` spans two shards.
    pub fn is_cross(&self, link: LinkId) -> bool {
        self.cross_links.binary_search(&link).is_ok()
    }

    /// Gateway nodes of `shard`, ascending.
    pub fn gateways(&self, shard: usize) -> &[NodeId] {
        &self.gateways[shard]
    }

    /// All boundary-crossing links, ascending.
    pub fn cross_links(&self) -> &[LinkId] {
        &self.cross_links
    }

    /// Node count of `shard`.
    pub fn shard_size(&self, shard: usize) -> usize {
        self.node_shard
            .iter()
            .filter(|&&s| s as usize == shard)
            .count()
    }
}

/// One precomputed gateway-to-gateway transit route.
#[derive(Debug, Clone)]
pub struct TransitRoute {
    /// Entry gateway (in the home shard).
    pub from: NodeId,
    /// Exit gateway (in the destination shard).
    pub to: NodeId,
    /// Summed link price of the route per unit rate.
    pub price: f64,
    /// Summed propagation delay of the route (µs).
    pub delay_us: f64,
    /// The concrete route over the base substrate.
    pub path: Path,
}

/// The inter-gateway distance table: min-cost transit between every
/// gateway pair over the base substrate, distilled into the cheapest
/// corridor per ordered shard pair.
#[derive(Debug, Clone, Default)]
pub struct GatewayTable {
    /// `(home, dst)` shard pair → cheapest gateway-to-gateway route.
    corridors: BTreeMap<(u32, u32), TransitRoute>,
    /// Number of gateway pairs priced while building the table.
    pairs_priced: usize,
}

impl GatewayTable {
    /// Prices every cross-shard gateway pair of `plan` over the base
    /// capacities of `net` and keeps the cheapest route per ordered
    /// shard pair (ties broken by ascending gateway ids, so the table
    /// is deterministic).
    ///
    /// Routing goes through a [`PathOracle`] at rate 0 — base topology,
    /// no residual-capacity dependence — so the table never changes
    /// during serving and gateway selection stays a lookup.
    pub fn build(net: &Network, plan: &ShardPlan) -> GatewayTable {
        let oracle = PathOracle::new(net);
        let mut corridors: BTreeMap<(u32, u32), TransitRoute> = BTreeMap::new();
        let mut pairs_priced = 0usize;
        for home in 0..plan.shards() {
            for dst in 0..plan.shards() {
                if home == dst {
                    continue;
                }
                for &ga in plan.gateways(home) {
                    for &gb in plan.gateways(dst) {
                        let Some(path) = oracle.min_cost_path(ga, gb, 0.0) else {
                            continue;
                        };
                        pairs_priced += 1;
                        let price = path.price(net);
                        let delay_us = path.delay_us(net);
                        let better = match corridors.get(&(home as u32, dst as u32)) {
                            None => true,
                            // Strict `<`: the ascending (ga, gb) iteration
                            // order makes the lowest-id pair win ties.
                            Some(cur) => price < cur.price,
                        };
                        if better {
                            corridors.insert(
                                (home as u32, dst as u32),
                                TransitRoute {
                                    from: ga,
                                    to: gb,
                                    price,
                                    delay_us,
                                    path,
                                },
                            );
                        }
                    }
                }
            }
        }
        GatewayTable {
            corridors,
            pairs_priced,
        }
    }

    /// The cheapest precomputed corridor from `home` to `dst`, if the
    /// pair is connected through any gateway pair.
    pub fn corridor(&self, home: usize, dst: usize) -> Option<&TransitRoute> {
        self.corridors.get(&(home as u32, dst as u32))
    }

    /// Number of distinct shard pairs with a priced corridor.
    pub fn corridor_count(&self) -> usize {
        self.corridors.len()
    }

    /// Number of gateway pairs priced while building the table.
    pub fn pairs_priced(&self) -> usize {
        self.pairs_priced
    }
}

/// JSON-friendly summary of a plan (the `dagsfc shard plan` command).
#[derive(Debug, Serialize)]
pub struct PlanSummary {
    /// Number of shards.
    pub shards: usize,
    /// Nodes per shard.
    pub shard_sizes: Vec<usize>,
    /// Gateway count per shard.
    pub gateway_counts: Vec<usize>,
    /// Total boundary-crossing links.
    pub cross_links: usize,
    /// Shard pairs with a priced corridor.
    pub corridors: usize,
    /// Gateway pairs priced while building the table.
    pub pairs_priced: usize,
}

impl PlanSummary {
    /// Summarizes `plan` + `table`.
    pub fn new(plan: &ShardPlan, table: &GatewayTable) -> PlanSummary {
        PlanSummary {
            shards: plan.shards(),
            shard_sizes: (0..plan.shards()).map(|k| plan.shard_size(k)).collect(),
            gateway_counts: (0..plan.shards()).map(|k| plan.gateways(k).len()).collect(),
            cross_links: plan.cross_links().len(),
            corridors: table.corridor_count(),
            pairs_priced: table.pairs_priced(),
        }
    }
}
