//! Invariant and property tests for the region-sharded substrate:
//! partition soundness, router determinism, gateway-table pricing, and
//! the two-phase commit's no-leak guarantees.

use dagsfc_net::{LinkId, NodeId};
use dagsfc_shard::{
    GatewayTable, RoutePolicy, ShardPlan, ShardRouter, ShardedEngine, ShardedStats,
};
use dagsfc_sim::runner::{instance_network, instance_request};
use dagsfc_sim::{arrival_seed, Algo, SimConfig};
use proptest::prelude::*;

fn cfg(nodes: usize, seed: u64) -> SimConfig {
    SimConfig {
        network_size: nodes,
        sfc_size: 4,
        vnf_capacity: 6.0,
        link_capacity: 6.0,
        seed,
        ..SimConfig::default()
    }
}

#[test]
fn partition_covers_every_node_with_contiguous_balanced_regions() {
    let net = instance_network(&cfg(41, 0xA1));
    for shards in [1usize, 2, 3, 4, 7] {
        let plan = ShardPlan::partition(&net, shards).expect("partition");
        assert_eq!(plan.shards(), shards);
        let mut sizes = vec![0usize; shards];
        let mut prev = 0usize;
        for v in 0..net.node_count() {
            let s = plan.shard_of(NodeId(v as u32));
            assert!(s < shards, "node {v} assigned out-of-range shard {s}");
            assert!(s >= prev, "regions must be contiguous in node-id order");
            prev = s;
            sizes[s] += 1;
        }
        assert_eq!(sizes.iter().sum::<usize>(), net.node_count());
        for (s, &size) in sizes.iter().enumerate() {
            assert!(size > 0, "shard {s} is empty");
            assert_eq!(size, plan.shard_size(s));
        }
    }
}

#[test]
fn partition_rejects_degenerate_shard_counts() {
    let net = instance_network(&cfg(10, 0xA2));
    assert!(ShardPlan::partition(&net, 0).is_err());
    assert!(ShardPlan::partition(&net, 11).is_err());
    assert!(ShardPlan::partition(&net, 10).is_ok());
}

#[test]
fn cross_links_are_owned_by_min_shard_and_mark_gateways() {
    let net = instance_network(&cfg(50, 0xA3));
    let plan = ShardPlan::partition(&net, 4).expect("partition");
    let mut saw_cross = false;
    for l in 0..net.link_count() {
        let link = LinkId(l as u32);
        let e = net.link(link);
        let (sa, sb) = (plan.shard_of(e.a), plan.shard_of(e.b));
        assert_eq!(plan.owner_of(link), sa.min(sb), "owner must be min shard");
        assert_eq!(plan.is_cross(link), sa != sb);
        if sa != sb {
            saw_cross = true;
            assert!(plan.cross_links().contains(&link));
            assert!(
                plan.gateways(sa).contains(&e.a) && plan.gateways(sb).contains(&e.b),
                "both endpoints of cross link {link:?} must be gateways"
            );
        }
    }
    assert!(saw_cross, "a 4-way split of a connected net must cut links");
    for s in 0..4 {
        let gs = plan.gateways(s);
        assert!(!gs.is_empty(), "shard {s} has no gateway");
        assert!(gs.windows(2).all(|w| w[0] < w[1]), "gateways sorted+dedup");
    }
}

#[test]
fn gateway_table_prices_every_reachable_region_pair() {
    let net = instance_network(&cfg(50, 0xA4));
    let plan = ShardPlan::partition(&net, 3).expect("partition");
    let table = GatewayTable::build(&net, &plan);
    assert!(table.corridor_count() > 0);
    for home in 0..3 {
        for dst in 0..3 {
            if home == dst {
                assert!(table.corridor(home, dst).is_none());
                continue;
            }
            let route = table
                .corridor(home, dst)
                .expect("connected net: every region pair must have a corridor");
            assert_eq!(plan.shard_of(route.from), home);
            assert_eq!(plan.shard_of(route.to), dst);
            assert!(route.price >= 0.0 && route.price.is_finite());
            assert!(
                !route.path.links().is_empty(),
                "a corridor between distinct regions crosses at least one link"
            );
        }
    }
}

/// 2PC embeds across two regions, and release drains every shard's
/// ledger back to zero — no half-committed reservations survive.
#[test]
fn two_phase_commit_and_release_leave_no_residue() {
    let sim = cfg(40, 0xA5);
    let net = instance_network(&sim);
    let plan = ShardPlan::partition(&net, 2).expect("partition");
    let router = ShardRouter::new(RoutePolicy::SourceAffinity);
    let mut engine = ShardedEngine::new(&net, plan, router);

    let mut leases = Vec::new();
    for i in 0..20u64 {
        let (sfc, flow) = instance_request(&sim, &net, i as usize);
        if let Ok(acc) = engine.embed(&sfc, &flow, Algo::Mbbe, arrival_seed(sim.seed, i as usize)) {
            assert!(acc.shards_involved >= 1 && acc.shards_involved <= 2);
            leases.push(acc.lease);
        }
    }
    let stats = engine.stats();
    assert!(stats.accepted > 0, "some arrivals must commit");
    assert_eq!(stats.audits_failed, 0, "audits must pass on the way in");
    assert!(
        stats.cross_shard_accepted > 0,
        "a 2-way split must accept at least one stitched embedding"
    );

    for lease in leases {
        engine.release(lease).expect("release");
        assert!(!engine.is_active(lease));
    }
    let drained: ShardedStats = engine.stats();
    assert_eq!(drained.active_leases, 0);
    assert!(
        drained.outstanding_load.abs() < 1e-9,
        "leak after full drain: {}",
        drained.outstanding_load
    );
    for lane in &drained.per_shard {
        assert!(
            lane.outstanding_load.abs() < 1e-9,
            "shard {} leaked {}",
            lane.shard,
            lane.outstanding_load
        );
    }
}

/// A rejection — solver or audit — must not move any ledger: epochs and
/// outstanding loads are byte-identical before and after.
#[test]
fn rejections_leave_every_ledger_untouched() {
    let sim = SimConfig {
        vnf_capacity: 0.4, // too small for any unit-rate chain
        link_capacity: 0.4,
        ..cfg(30, 0xA6)
    };
    let net = instance_network(&sim);
    let plan = ShardPlan::partition(&net, 3).expect("partition");
    let mut engine = ShardedEngine::new(&net, plan, ShardRouter::default());
    let before: Vec<(u64, f64)> = engine
        .stats()
        .per_shard
        .iter()
        .map(|l| (l.epoch, l.outstanding_load))
        .collect();
    let mut rejections = 0;
    for i in 0..10usize {
        let (sfc, flow) = instance_request(&sim, &net, i);
        if engine
            .embed(&sfc, &flow, Algo::Mbbe, arrival_seed(sim.seed, i))
            .is_err()
        {
            rejections += 1;
        }
    }
    assert!(rejections > 0, "starved substrate must reject something");
    let after: Vec<(u64, f64)> = engine
        .stats()
        .per_shard
        .iter()
        .map(|l| (l.epoch, l.outstanding_load))
        .collect();
    assert_eq!(before, after, "rejections must not advance any ledger");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The router is a pure function of (plan, flow): same inputs, same
    /// shard, under both policies, regardless of construction order.
    #[test]
    fn router_assignment_is_pure_and_policy_faithful(
        seed in 0u64..1024,
        shards in 1usize..6,
        pairs in prop::collection::vec((0usize..40, 0usize..40), 1..20),
    ) {
        let net = instance_network(&cfg(40, seed));
        let plan = ShardPlan::partition(&net, shards).expect("partition");
        let src_router = ShardRouter::new(RoutePolicy::SourceAffinity);
        let dst_router = ShardRouter::new(RoutePolicy::DestinationAffinity);
        for (a, b) in pairs {
            let flow = dagsfc_core::Flow::unit(NodeId(a as u32), NodeId(b as u32));
            let s1 = src_router.assign(&plan, &flow);
            prop_assert_eq!(s1, src_router.assign(&plan, &flow));
            prop_assert_eq!(s1, plan.shard_of(flow.src));
            prop_assert_eq!(dst_router.assign(&plan, &flow), plan.shard_of(flow.dst));
        }
    }

    /// 2PC outcomes are a function of the admission order alone: two
    /// engines fed the same sequence agree bit-for-bit on every fate
    /// and cost, and interleaving releases does not disturb lease ids.
    #[test]
    fn two_phase_outcomes_are_deterministic(
        seed in 0u64..512,
        shards in 1usize..5,
        arrivals in 4usize..24,
    ) {
        let sim = cfg(36, seed);
        let net = instance_network(&sim);
        let mk = || {
            let plan = ShardPlan::partition(&net, shards).expect("partition");
            ShardedEngine::new(&net, plan, ShardRouter::default())
        };
        let mut one = mk();
        let mut two = mk();
        for i in 0..arrivals {
            let (sfc, flow) = instance_request(&sim, &net, i);
            let s = arrival_seed(sim.seed, i);
            let a = one.embed(&sfc, &flow, Algo::Mbbe, s);
            let b = two.embed(&sfc, &flow, Algo::Mbbe, s);
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    prop_assert_eq!(x.lease, y.lease);
                    prop_assert_eq!(x.cost.total(), y.cost.total());
                    prop_assert_eq!(x.shards_involved, y.shards_involved);
                }
                (Err(x), Err(y)) => prop_assert_eq!(format!("{x:?}"), format!("{y:?}")),
                (x, y) => prop_assert!(false, "fates diverged: {:?} vs {:?}", x.is_ok(), y.is_ok()),
            }
        }
        let (sa, sb) = (one.stats(), two.stats());
        prop_assert_eq!(sa.accepted, sb.accepted);
        prop_assert_eq!(sa.total_cost, sb.total_cost);
        prop_assert_eq!(sa.cross_shard_accepted, sb.cross_shard_accepted);
        prop_assert_eq!(sa.audits_failed, 0);
    }
}
