//! Quickstart: embed one hybrid SFC into a random priced cloud and
//! compare every algorithm of the paper on the same request.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dagsfc::core::solvers::{BbeSolver, MbbeSolver, MinvSolver, RanvSolver, Solver};
use dagsfc::core::{validate, DagSfc, Flow, Layer, VnfCatalog};
use dagsfc::net::{generator, NetGenConfig, NodeId, VnfTypeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A 100-node priced cloud: 8 regular VNF kinds + the merger kind,
    //    Table 2 price ratios.
    let net_cfg = NetGenConfig {
        nodes: 100,
        avg_degree: 6.0,
        vnf_kinds: 9,
        deploy_ratio: 0.5,
        ..NetGenConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(2018);
    let network = generator::generate(&net_cfg, &mut rng).expect("valid config");
    let stats = network.stats();
    println!(
        "network: {} nodes, {} links, avg degree {:.1}, {} VNF instances",
        stats.nodes, stats.links, stats.avg_degree, stats.vnf_instances
    );

    // 2. A hybrid chain in standardized DAG-SFC form (paper Fig. 2):
    //    f0 → {f1 ∥ f2 ∥ f3} + merger → f4.
    let catalog = VnfCatalog::new(8);
    let sfc = DagSfc::new(
        vec![
            Layer::new(vec![VnfTypeId(0)]),
            Layer::new(vec![VnfTypeId(1), VnfTypeId(2), VnfTypeId(3)]),
            Layer::new(vec![VnfTypeId(4)]),
        ],
        catalog,
    )
    .expect("valid chain");
    println!("chain:   {sfc}");

    // 3. One unit flow across the cloud.
    let flow = Flow::unit(NodeId(0), NodeId(99));

    // 4. Solve with every algorithm and verify each result against the
    //    independent constraint checker.
    let solvers: Vec<Box<dyn Solver>> = vec![
        Box::new(MbbeSolver::new()),
        Box::new(BbeSolver::new()),
        Box::new(MinvSolver::new()),
        Box::new(RanvSolver::new(7)),
    ];
    println!(
        "\n{:>6} {:>12} {:>12} {:>12} {:>10}",
        "algo", "total", "vnf", "link", "time"
    );
    for solver in solvers {
        match solver.solve(&network, &sfc, &flow) {
            Ok(out) => {
                validate(&network, &sfc, &flow, &out.embedding)
                    .expect("solver output must satisfy every constraint");
                println!(
                    "{:>6} {:>12.3} {:>12.3} {:>12.3} {:>9.1}µs",
                    solver.name(),
                    out.cost.total(),
                    out.cost.vnf,
                    out.cost.link,
                    out.stats.elapsed.as_secs_f64() * 1e6,
                );
            }
            Err(e) => println!("{:>6} failed: {e}", solver.name()),
        }
    }

    // 5. Show the winning embedding in detail.
    let out = MbbeSolver::new()
        .solve(&network, &sfc, &flow)
        .expect("MBBE always finds a solution on this instance");
    println!("\nMBBE assignment:");
    for (l, slots) in out.embedding.assignments().iter().enumerate() {
        let layer = sfc.layer(l);
        for (s, node) in slots.iter().enumerate() {
            let kind = layer.slot_kind(s, sfc.catalog());
            let role = if s == layer.width() { "merger" } else { "vnf" };
            println!("  L{l}[{s}] {kind} ({role}) -> {node}");
        }
    }
    println!("real-paths:");
    for (mp, path) in out.embedding.meta_path_pairs(&sfc) {
        println!("  {} -> {}: {}", mp.from, mp.to, path);
    }
}
