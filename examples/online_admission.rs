//! Online admission: embedding a stream of chain requests over *shared*
//! finite capacities — the system-level consequence of cost efficiency.
//!
//! The paper embeds one chain at a time; its capacity constraints only
//! bite when many embeddings share the substrate. This example offers
//! the same deterministic arrival sequence to each algorithm and tracks
//! the acceptance ratio as load grows: bandwidth-frugal embedders keep
//! accepting long after wasteful ones start rejecting.
//!
//! ```text
//! cargo run --release --example online_admission
//! ```

use dagsfc::sim::online::{acceptance_sweep, acceptance_table, run_online, OnlineConfig};
use dagsfc::sim::{Algo, SimConfig};

fn main() {
    let base = SimConfig {
        network_size: 50,
        sfc_size: 4,
        vnf_capacity: 8.0,
        link_capacity: 8.0,
        ..SimConfig::default()
    };
    println!(
        "substrate: {} nodes, every VNF instance and link capped at {} rate units\n",
        base.network_size, base.vnf_capacity
    );

    let algos = [Algo::Mbbe, Algo::MbbeSt, Algo::Minv, Algo::Ranv];
    let rows = acceptance_sweep(&base, &algos, &[25, 50, 100, 150]);
    println!("{}", acceptance_table(&rows));

    // Detail at the heaviest load level.
    let heavy = rows.last().expect("levels configured");
    println!("at {} offered requests:", heavy.0);
    for m in &heavy.1 {
        println!(
            "  {:>8}: {:>3} accepted, {:>3} rejected; mean cost {:6.3}; \
             link util {:4.1}%, vnf util {:4.1}%",
            m.algo,
            m.accepted,
            m.rejected,
            m.mean_cost,
            m.link_utilization * 100.0,
            m.vnf_utilization * 100.0
        );
    }

    // The single-number takeaway.
    let mbbe = run_online(&OnlineConfig {
        base: base.clone(),
        requests: 150,
        algo: Algo::Mbbe,
    });
    let ranv = run_online(&OnlineConfig {
        base,
        requests: 150,
        algo: Algo::Ranv,
    });
    println!(
        "\nMBBE carried {:.0}% more traffic than RANV on the same substrate \
         ({} vs {} accepted)",
        (mbbe.accepted as f64 / ranv.accepted as f64 - 1.0) * 100.0,
        mbbe.accepted,
        ranv.accepted
    );
}
