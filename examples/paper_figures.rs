//! Regenerates the paper's evaluation artifacts (Fig. 6(a)–(f) and the
//! §4.5 runtime comparison) as ASCII tables and CSV files.
//!
//! ```text
//! # all figures at the "quick" scale (60-node nets, 10 runs/point):
//! cargo run --release --example paper_figures
//!
//! # one figure:
//! cargo run --release --example paper_figures -- fig6c
//!
//! # full paper scale (500-node basic config, 100 runs/point — slow):
//! cargo run --release --example paper_figures -- all full
//! ```
//!
//! CSV series are written to `target/figures/<id>.csv`.

use dagsfc::sim::{report, sweep, SimConfig, SweepResult};
use std::fs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let full = args.iter().any(|a| a == "full");

    let base = if full {
        SimConfig::default() // Table 2 exactly
    } else {
        SimConfig {
            network_size: 60,
            runs: 10,
            ..SimConfig::default()
        }
    };
    println!(
        "profile: {} ({} nodes, {} runs/point)\n",
        if full { "full paper scale" } else { "quick" },
        base.network_size,
        base.runs
    );

    type FigureFn = fn(&SimConfig) -> SweepResult;
    let figures: Vec<(&str, FigureFn)> = vec![
        ("fig6a", sweep::fig6a),
        ("fig6b", sweep::fig6b),
        ("fig6c", sweep::fig6c),
        ("fig6d", sweep::fig6d),
        ("fig6e", sweep::fig6e),
        ("fig6f", sweep::fig6f),
        ("runtime", sweep::runtime_sweep),
    ];

    let out_dir = std::path::Path::new("target/figures");
    fs::create_dir_all(out_dir).expect("create output dir");

    let mut ran = 0;
    for (id, run) in figures {
        if which != "all" && which != id {
            continue;
        }
        ran += 1;
        let result = run(&base);
        if id == "runtime" {
            println!("{}", report::runtime_table(&result));
        }
        println!("{}", report::ascii_table(&result));
        let csv_path = out_dir.join(format!("{id}.csv"));
        fs::write(&csv_path, report::csv(&result)).expect("write csv");
        println!("series written to {}\n", csv_path.display());
    }
    if ran == 0 {
        eprintln!(
            "unknown figure '{which}'; expected one of \
             fig6a..fig6f, runtime, or all"
        );
        std::process::exit(2);
    }
}
