//! Enterprise scenario: from a *sequential* middlebox chain to a cheap,
//! low-latency hybrid embedding.
//!
//! Walks the full pipeline the paper assumes: (1) analyze NF order
//! dependencies with packet-action profiles (NFP-style), (2) transform
//! the sequential chain into its hybrid layered form (paper Fig. 2),
//! (3) embed both forms with MBBE, and (4) compare cost and end-to-end
//! delay — reproducing the motivation that hybrid SFCs cut delay.
//!
//! ```text
//! cargo run --release --example enterprise_chain
//! ```

use dagsfc::core::solvers::{MbbeSolver, Solver};
use dagsfc::core::{validate, DagSfc, DelayModel, Flow, VnfCatalog};
use dagsfc::net::{generator, NetGenConfig, NodeId};
use dagsfc::nfp::{
    catalog::{enterprise_catalog, find},
    to_hybrid, DependencyMatrix, TransformOptions,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. The NF catalog and its pairwise parallelizability.
    let nfs = enterprise_catalog();
    let deps = DependencyMatrix::analyze(&nfs);
    let stats = deps.stats();
    println!(
        "catalog: {} NFs; {:.1}% of ordered pairs parallelizable, {:.1}% overhead-free",
        nfs.len(),
        stats.parallel_fraction() * 100.0,
        stats.overhead_free_fraction() * 100.0
    );
    println!("(NFP measured 53.8% / 41.5% on production enterprise chains)\n");

    // 2. A typical ingress chain, initially sequential.
    let chain_names = ["firewall", "ids", "dpi", "policer", "nat", "qos_marker"];
    let chain: Vec<usize> = chain_names
        .iter()
        .map(|n| find(&nfs, n).expect("catalog NF").0)
        .collect();
    println!("sequential chain: {}", chain_names.join(" -> "));
    let hybrid = to_hybrid(&chain, &deps, TransformOptions { max_width: Some(4) });
    print!("hybrid form:      ");
    for (i, layer) in hybrid.layers().iter().enumerate() {
        if i > 0 {
            print!(" -> ");
        }
        let names: Vec<&str> = layer.iter().map(|&nf| nfs[nf].name).collect();
        if names.len() > 1 {
            print!("[{}]", names.join(" ∥ "));
        } else {
            print!("{}", names[0]);
        }
    }
    println!(
        "\n{} layers instead of {} sequential stages\n",
        hybrid.depth(),
        chain.len()
    );

    // 3. Embed both forms into the same priced cloud.
    let vnf_catalog = VnfCatalog::new(nfs.len() as u16);
    let net_cfg = NetGenConfig {
        nodes: 200,
        vnf_kinds: vnf_catalog.deployable_count(),
        ..NetGenConfig::default()
    };
    let network =
        generator::generate(&net_cfg, &mut StdRng::seed_from_u64(42)).expect("valid config");
    let flow = Flow::unit(NodeId(3), NodeId(197));

    let sequential_sfc =
        DagSfc::from_hybrid(&dagsfc::nfp::sequentialize(&chain), vnf_catalog).expect("valid chain");
    let hybrid_sfc = DagSfc::from_hybrid(&hybrid, vnf_catalog).expect("valid chain");

    let solver = MbbeSolver::new();
    let seq_out = solver
        .solve(&network, &sequential_sfc, &flow)
        .expect("sequential embedding");
    let hyb_out = solver
        .solve(&network, &hybrid_sfc, &flow)
        .expect("hybrid embedding");
    validate(&network, &sequential_sfc, &flow, &seq_out.embedding).expect("valid");
    validate(&network, &hybrid_sfc, &flow, &hyb_out.embedding).expect("valid");

    // 4. Delay model from the catalog's processing delays.
    let mut proc_us: Vec<f64> = nfs.iter().map(|s| s.proc_delay_us).collect();
    proc_us.push(5.0); // merger
    let delay = DelayModel {
        per_hop_us: 50.0,
        merge_us: 5.0,
        proc_us,
        link_delay_us: None,
    };
    let seq_delay = delay.embedding_delay(&sequential_sfc, &seq_out.embedding, &flow);
    let hyb_delay = delay.embedding_delay(&hybrid_sfc, &hyb_out.embedding, &flow);

    println!("{:>12} {:>12} {:>12}", "", "sequential", "hybrid");
    println!(
        "{:>12} {:>12.3} {:>12.3}",
        "cost",
        seq_out.cost.total(),
        hyb_out.cost.total()
    );
    println!("{:>12} {:>11.1}µ {:>11.1}µ", "delay", seq_delay, hyb_delay);
    println!(
        "\nhybrid embedding cuts end-to-end delay by {:.1}% \
         (the paper's Fig. 1 motivation)",
        (1.0 - hyb_delay / seq_delay) * 100.0
    );
    assert!(
        hyb_delay <= seq_delay,
        "hybrid must never be slower than sequential"
    );
}
