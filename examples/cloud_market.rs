//! Cloud-market scenario: how the link/VNF price ratio moves the
//! economics of chain embedding.
//!
//! A consumer rents VNF instances from third-party providers across a
//! cloud network and pays per-rate prices for both instances and links
//! (paper §1). This example sweeps the *average price ratio* on a
//! mid-size cloud and prints the cost split per algorithm, showing how
//! BBE/MBBE trade VNF-cost against link-cost while MINV fixates on cheap
//! instances and RANV ignores prices entirely.
//!
//! ```text
//! cargo run --release --example cloud_market
//! ```

use dagsfc::sim::{report, sweep, SimConfig};

fn main() {
    let base = SimConfig {
        network_size: 150,
        runs: 30,
        sfc_size: 5,
        ..SimConfig::default()
    };
    println!(
        "cloud market: {} nodes, degree {}, {} runs per point, SFC size {}\n",
        base.network_size, base.connectivity, base.runs, base.sfc_size
    );

    let result = sweep::price_ratio::fig6e_on(&base, &[0.01, 0.05, 0.1, 0.2, 0.35, 0.5]);
    println!("{}", report::ascii_table(&result));

    // Cost split at the extremes: who pays for what.
    println!("cost split (vnf + link) per algorithm:");
    for p in [&result.points[0], result.points.last().expect("points")] {
        println!("  price ratio {:.2}:", p.x);
        for a in &p.algos {
            if a.successes == 0 {
                continue;
            }
            println!(
                "    {:>5}: {:7.3} = {:6.3} vnf + {:6.3} link   ({} ok / {} failed)",
                a.name, a.cost.mean, a.mean_vnf_cost, a.mean_link_cost, a.successes, a.failures
            );
        }
    }

    // The paper's observation: the gap to the baselines expands with the
    // link price.
    let mbbe = result.series("MBBE");
    let minv = result.series("MINV");
    let first_gap = minv.first().expect("points").1 - mbbe.first().expect("points").1;
    let last_gap = minv.last().expect("points").1 - mbbe.last().expect("points").1;
    println!(
        "\nMINV-vs-MBBE gap grows from {first_gap:.3} at ratio {:.2} to {last_gap:.3} at ratio {:.2}",
        mbbe.first().expect("points").0,
        mbbe.last().expect("points").0
    );
    println!("-> pricier links reward joint VNF+link optimization (paper §5.2.5)");
}
