//! Topology zoo: does the paper's algorithm ordering survive outside
//! uniform random graphs?
//!
//! Replays the MBBE/BBE/MINV/RANV comparison on structured substrates —
//! ring, torus, fat-tree, Waxman, scale-free — then demonstrates the
//! 1+1 protection extension on the fat-tree (every real-path gets a
//! Bhandari link-disjoint backup, surviving any single link failure).
//!
//! ```text
//! cargo run --release --example topology_zoo
//! ```

use dagsfc::core::solvers::{MbbeSolver, Solver};
use dagsfc::core::{protect, validate, DagSfc, Flow, Layer, VnfCatalog};
use dagsfc::net::topologies::{build, Topology};
use dagsfc::net::{analyze, NodeId, VnfTypeId};
use dagsfc::sim::sweep::topology::{default_battery, topology_sweep, topology_table};
use dagsfc::sim::{Algo, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let base = SimConfig {
        network_size: 36,
        runs: 15,
        sfc_size: 4,
        ..SimConfig::default()
    };

    // 1. The comparison across the zoo.
    let points = topology_sweep(
        &base,
        &[Algo::Mbbe, Algo::Bbe, Algo::Minv, Algo::Ranv],
        &default_battery(36),
    );
    println!("{}", topology_table(&points));
    for p in &points {
        let mbbe = p.algos.iter().find(|a| a.name == "MBBE").unwrap();
        let minv = p.algos.iter().find(|a| a.name == "MINV").unwrap();
        println!(
            "  {:>10}: MBBE saves {:4.1}% vs MINV  (diameter {}, clustering {:.2})",
            p.label,
            (1.0 - mbbe.cost.mean / minv.cost.mean) * 100.0,
            p.metrics
                .diameter
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into()),
            p.metrics.clustering
        );
    }

    // 2. Survivability on the fat-tree: protect an embedding with
    //    link-disjoint backups.
    println!("\n-- 1+1 protection on a 6-ary fat-tree --");
    let cfg = base.net_gen();
    let net = build(
        Topology::FatTree { k: 6 },
        &cfg,
        &mut StdRng::seed_from_u64(11),
    )
    .expect("valid fat-tree");
    let m = analyze(&net);
    println!(
        "fabric: {} nodes, {} links, diameter {:?}",
        net.node_count(),
        net.link_count(),
        m.diameter
    );
    let sfc = DagSfc::new(
        vec![
            Layer::new(vec![VnfTypeId(0)]),
            Layer::new(vec![VnfTypeId(1), VnfTypeId(2)]),
        ],
        VnfCatalog::new(12),
    )
    .expect("valid chain");
    let flow = Flow::unit(NodeId(10), NodeId(net.node_count() as u32 - 1));
    let out = MbbeSolver::new()
        .solve(&net, &sfc, &flow)
        .expect("embeddable");
    let protected = protect(&net, &sfc, &flow, &out.embedding).expect("fat-trees have no bridges");
    validate(&net, &sfc, &flow, &protected.embedding).expect("valid working paths");

    let survivable = net
        .link_ids()
        .filter(|&l| protected.survives_link_failure(l))
        .count();
    println!(
        "working cost {:.3}, backup link cost {:.3} (+{:.0}%), {} of {} meta-paths protected",
        out.cost.total(),
        protected.backup_cost.link,
        protected.backup_cost.link / out.cost.total() * 100.0,
        protected.protected_count(),
        protected.embedding.paths().len()
    );
    println!(
        "single-link failures survived: {survivable}/{} links",
        net.link_count()
    );
    assert_eq!(survivable, net.link_count(), "1+1 must cover every link");
}
