//! Differential battery: the partial-order chain path must be
//! *bit-identical* to the legacy layered path.
//!
//! Two routes produce a solvable [`DagSfc`] from the same NF chain:
//!
//! * **legacy** — `to_hybrid_legacy` (the original greedy grouping,
//!   preserved verbatim as the reference) → `DagSfc::from_hybrid`,
//!   with no precedence order attached; and
//! * **partial-order** — `PartialOrderChain::derive` →
//!   `DagSfc::from_partial_order`, which re-derives the layering as
//!   one admissible linear-extension grouping and carries the DAG's
//!   precedence edges alongside.
//!
//! Every solver must embed both forms identically: same embedding,
//! same cost bits, same search statistics (wall-clock fields zeroed —
//! they are the only sanctioned divergence). The battery also pins the
//! solver-level placement-rule contracts: affinity pairs co-locate,
//! anti-affinity pairs separate, and unsatisfiable rule sets reject
//! with the typed rule-infeasible classification, never a panic and
//! never a silent capacity blame.

use dagsfc::core::solvers::{
    BbeSolver, ExactSolver, GraspSolver, MbbeSolver, MbbeStSolver, MinvSolver, RanvSolver,
    SolveOutcome, Solver,
};
use dagsfc::core::{DagSfc, Flow, PlacementRules, VnfCatalog};
use dagsfc::net::{generator, NetGenConfig, Network, NodeId};
use dagsfc::nfp::{
    catalog::enterprise_catalog, to_hybrid_legacy, DependencyMatrix, PartialOrderChain,
    TransformOptions,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

const SEEDS: u64 = 12;

fn solvers(seed: u64) -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(BbeSolver::new()),
        Box::new(MbbeSolver::new()),
        Box::new(MbbeStSolver::new()),
        Box::new(MinvSolver::new()),
        Box::new(RanvSolver::new(seed)),
        Box::new(GraspSolver::new(seed)),
    ]
}

/// A random chain of `len` distinct enterprise NFs, both DagSfc forms,
/// and the shared catalog.
fn both_forms(seed: u64, len: usize, opts: TransformOptions) -> (DagSfc, DagSfc) {
    let nfs = enterprise_catalog();
    let deps = DependencyMatrix::analyze(&nfs);
    let mut ids: Vec<usize> = (0..nfs.len()).collect();
    ids.shuffle(&mut StdRng::seed_from_u64(seed));
    ids.truncate(len);

    let catalog = VnfCatalog::new(nfs.len() as u16);
    let legacy = DagSfc::from_hybrid(&to_hybrid_legacy(&ids, &deps, opts), catalog.clone())
        .expect("legacy form is valid");
    let po = PartialOrderChain::derive(&ids, &deps);
    let ordered = DagSfc::from_partial_order(&po, opts, catalog).expect("po form is valid");
    (legacy, ordered)
}

fn network(seed: u64, nodes: usize) -> Network {
    let cfg = NetGenConfig {
        nodes,
        vnf_kinds: VnfCatalog::new(enterprise_catalog().len() as u16).deployable_count(),
        ..NetGenConfig::default()
    };
    generator::generate(&cfg, &mut StdRng::seed_from_u64(seed)).expect("network generates")
}

/// Wall-clock fields are the only sanctioned divergence between the two
/// paths; everything else must match bit for bit.
fn strip_wall(mut out: SolveOutcome) -> SolveOutcome {
    out.stats.elapsed = std::time::Duration::ZERO;
    out.stats.layer_wall.clear();
    out
}

/// The tentpole claim: across 12 seeds and every solver, the
/// partial-order route and the legacy layered route produce the same
/// layers, the same embedding, the same cost bits, and the same search
/// statistics.
#[test]
fn partial_order_path_is_bit_identical_to_legacy_layering() {
    let opts = TransformOptions { max_width: Some(3) };
    for seed in 0..SEEDS {
        let (legacy, ordered) = both_forms(seed, 5, opts);

        // The layered structure itself must agree slot for slot.
        assert_eq!(legacy.depth(), ordered.depth(), "seed {seed}: depth");
        for l in 0..legacy.depth() {
            assert_eq!(
                legacy.layer(l).vnfs(),
                ordered.layer(l).vnfs(),
                "seed {seed}: layer {l}"
            );
        }
        assert!(legacy.order().is_none(), "legacy path carries no order");
        assert!(
            ordered.order().is_some() || ordered.size() < 2,
            "seed {seed}: partial-order path carries its edges"
        );

        let net = network(seed, 60);
        let flow = Flow::unit(NodeId(0), NodeId(59));
        // RANV/GRASP carry their RNG across solves: each form gets a
        // freshly seeded instance so both runs see the same stream.
        for (solver, twin) in solvers(seed).into_iter().zip(solvers(seed)) {
            let a = solver.solve(&net, &legacy, &flow);
            let b = twin.solve(&net, &ordered, &flow);
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    let (a, b) = (strip_wall(a), strip_wall(b));
                    assert_eq!(
                        a.embedding,
                        b.embedding,
                        "seed {seed}: {} embedding diverged",
                        solver.name()
                    );
                    assert_eq!(
                        a.cost.total().to_bits(),
                        b.cost.total().to_bits(),
                        "seed {seed}: {} cost diverged",
                        solver.name()
                    );
                    assert_eq!(
                        a.stats,
                        b.stats,
                        "seed {seed}: {} stats diverged",
                        solver.name()
                    );
                }
                (Err(a), Err(b)) => assert_eq!(
                    a.to_string(),
                    b.to_string(),
                    "seed {seed}: {} errors diverged",
                    solver.name()
                ),
                (a, b) => panic!(
                    "seed {seed}: {} outcome kind diverged: {a:?} vs {b:?}",
                    solver.name()
                ),
            }
        }
    }
}

/// The exact solver runs the same differential on instances small
/// enough for its assignment-count guard rail.
#[test]
fn exact_solver_matches_across_both_forms() {
    let opts = TransformOptions { max_width: Some(3) };
    for seed in 0..SEEDS {
        let (legacy, ordered) = both_forms(seed, 4, opts);
        let net = network(seed, 12);
        let flow = Flow::unit(NodeId(0), NodeId(11));
        let solver = ExactSolver::new();
        let a = solver.solve(&net, &legacy, &flow);
        let b = solver.solve(&net, &ordered, &flow);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                let (a, b) = (strip_wall(a), strip_wall(b));
                assert_eq!(a.embedding, b.embedding, "seed {seed}: EXACT embedding");
                assert_eq!(
                    a.cost.total().to_bits(),
                    b.cost.total().to_bits(),
                    "seed {seed}: EXACT cost"
                );
                assert_eq!(a.stats, b.stats, "seed {seed}: EXACT stats");
            }
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "seed {seed}: EXACT errors")
            }
            (a, b) => panic!("seed {seed}: EXACT outcome kind diverged: {a:?} vs {b:?}"),
        }
    }
}

/// Chains without placement rules must report zero rule rejections —
/// the rule machinery is invisible until a request opts in.
#[test]
fn rule_counters_stay_zero_without_rules() {
    let opts = TransformOptions { max_width: Some(3) };
    let (_, ordered) = both_forms(3, 5, opts);
    let net = network(3, 60);
    let flow = Flow::unit(NodeId(0), NodeId(59));
    for solver in solvers(3) {
        if let Ok(out) = solver.solve(&net, &ordered, &flow) {
            assert_eq!(
                out.stats.candidates_rule_rejected,
                0,
                "{}: phantom rule rejections",
                solver.name()
            );
        }
    }
}

/// Every solver honors an affinity pair: when both kinds embed, they
/// embed on one node.
#[test]
fn affinity_pair_colocates_across_solvers() {
    let opts = TransformOptions { max_width: Some(3) };
    for seed in 0..SEEDS {
        let (_, ordered) = both_forms(seed, 5, opts);
        let kinds: Vec<_> = ordered
            .layers()
            .iter()
            .flat_map(|l| l.vnfs().iter().copied())
            .collect();
        let ruled = ordered.clone().with_rules(PlacementRules {
            affinity: vec![(kinds[0], kinds[1])],
            anti_affinity: vec![],
        });
        let net = network(seed, 60);
        let flow = Flow::unit(NodeId(0), NodeId(59));
        for solver in solvers(seed) {
            let Ok(out) = solver.solve(&net, &ruled, &flow) else {
                continue; // typed rejection is a legal answer under rules
            };
            let mut hosts = Vec::new();
            for (l, layer) in ruled.layers().iter().enumerate() {
                for (s, &kind) in layer.vnfs().iter().enumerate() {
                    if kind == kinds[0] || kind == kinds[1] {
                        hosts.push(out.embedding.assignments()[l][s]);
                    }
                }
            }
            hosts.dedup();
            assert!(
                hosts.len() <= 1,
                "seed {seed}: {} split affinity pair across {hosts:?}",
                solver.name()
            );
        }
    }
}

/// Every solver honors an anti-affinity pair: the two kinds never share
/// a node.
#[test]
fn anti_affinity_pair_separates_across_solvers() {
    let opts = TransformOptions { max_width: Some(3) };
    for seed in 0..SEEDS {
        let (_, ordered) = both_forms(seed, 5, opts);
        let kinds: Vec<_> = ordered
            .layers()
            .iter()
            .flat_map(|l| l.vnfs().iter().copied())
            .collect();
        let ruled = ordered.clone().with_rules(PlacementRules {
            affinity: vec![],
            anti_affinity: vec![(kinds[0], kinds[1])],
        });
        let net = network(seed, 60);
        let flow = Flow::unit(NodeId(0), NodeId(59));
        for solver in solvers(seed) {
            let Ok(out) = solver.solve(&net, &ruled, &flow) else {
                continue;
            };
            let (mut a_hosts, mut b_hosts) = (Vec::new(), Vec::new());
            for (l, layer) in ruled.layers().iter().enumerate() {
                for (s, &kind) in layer.vnfs().iter().enumerate() {
                    if kind == kinds[0] {
                        a_hosts.push(out.embedding.assignments()[l][s]);
                    } else if kind == kinds[1] {
                        b_hosts.push(out.embedding.assignments()[l][s]);
                    }
                }
            }
            assert!(
                a_hosts.iter().all(|n| !b_hosts.contains(n)),
                "seed {seed}: {} co-located anti-affinity pair",
                solver.name()
            );
        }
    }
}

/// An unsatisfiable rule set — a pair required both to co-locate and to
/// separate — rejects with the typed rule-infeasible classification on
/// every solver, never a panic and never a capacity blame.
#[test]
fn conflicting_rules_classify_as_rule_infeasible() {
    let opts = TransformOptions { max_width: Some(3) };
    let (_, ordered) = both_forms(7, 5, opts);
    let kinds: Vec<_> = ordered
        .layers()
        .iter()
        .flat_map(|l| l.vnfs().iter().copied())
        .collect();
    let ruled = ordered.clone().with_rules(PlacementRules {
        affinity: vec![(kinds[0], kinds[1])],
        anti_affinity: vec![(kinds[0], kinds[1])],
    });
    let net = network(7, 60);
    let flow = Flow::unit(NodeId(0), NodeId(59));
    for solver in solvers(7) {
        let err = solver
            .solve(&net, &ruled, &flow)
            .expect_err("conflicting rules cannot embed");
        assert!(
            err.is_rule_infeasible(),
            "{}: misclassified conflicting rules: {err}",
            solver.name()
        );
    }
    let exact_err = ExactSolver::new()
        .solve(&network(7, 12), &ruled, &flow_to(11))
        .expect_err("conflicting rules cannot embed");
    assert!(
        exact_err.is_rule_infeasible(),
        "EXACT: misclassified conflicting rules: {exact_err}"
    );
}

fn flow_to(dst: u32) -> Flow {
    Flow::unit(NodeId(0), NodeId(dst))
}
