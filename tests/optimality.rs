//! Optimality cross-checks against the exact branch-and-bound solver on
//! small instances: the heuristics must never beat the certified
//! optimum, and should land close to it.

use dagsfc::core::solvers::{BbeSolver, ExactSolver, MbbeSolver, MinvSolver, Solver};
use dagsfc::core::{validate, DagSfc, Flow, Layer, VnfCatalog};
use dagsfc::net::{generator, NetGenConfig, Network, NodeId, VnfTypeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A dense 9-node random cloud: small enough for the exact solver with
/// a path universe that covers effectively all sensible routes.
fn small_net(seed: u64) -> Network {
    let cfg = NetGenConfig {
        nodes: 9,
        avg_degree: 4.0,
        vnf_kinds: 5, // 4 regular + merger
        deploy_ratio: 0.6,
        vnf_price_fluctuation: 0.3,
        link_price_fluctuation: 0.3,
        ..NetGenConfig::default()
    };
    generator::generate(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap()
}

fn catalog() -> VnfCatalog {
    VnfCatalog::new(4)
}

fn chains() -> Vec<DagSfc> {
    let c = catalog();
    vec![
        DagSfc::sequential(&[VnfTypeId(0), VnfTypeId(1)], c).unwrap(),
        DagSfc::new(vec![Layer::new(vec![VnfTypeId(0), VnfTypeId(2)])], c).unwrap(),
        DagSfc::new(
            vec![
                Layer::new(vec![VnfTypeId(1)]),
                Layer::new(vec![VnfTypeId(0), VnfTypeId(3)]),
            ],
            c,
        )
        .unwrap(),
    ]
}

/// No heuristic may return a cost below the exact optimum.
#[test]
fn exact_is_a_lower_bound() {
    for seed in [1u64, 2, 3, 4] {
        let net = small_net(seed);
        let flow = Flow::unit(NodeId(0), NodeId(8));
        for sfc in chains() {
            let Ok(exact) = ExactSolver::with_k(10).solve(&net, &sfc, &flow) else {
                continue; // kind not deployed under this seed
            };
            validate(&net, &sfc, &flow, &exact.embedding).unwrap();
            for heuristic in [
                Box::new(BbeSolver::new()) as Box<dyn Solver>,
                Box::new(MbbeSolver::new()),
                Box::new(MinvSolver::new()),
            ] {
                if let Ok(out) = heuristic.solve(&net, &sfc, &flow) {
                    assert!(
                        out.cost.total() >= exact.cost.total() - 1e-9,
                        "seed {seed}: {} found {} below optimum {}",
                        heuristic.name(),
                        out.cost.total(),
                        exact.cost.total()
                    );
                }
            }
        }
    }
}

/// BBE tracks the optimum closely on small instances (it is a strong
/// heuristic, not an approximation scheme — we assert a loose factor).
#[test]
fn bbe_close_to_optimum() {
    let mut total_bbe = 0.0;
    let mut total_opt = 0.0;
    let mut cases = 0;
    for seed in [5u64, 6, 7, 8, 9] {
        let net = small_net(seed);
        let flow = Flow::unit(NodeId(0), NodeId(8));
        for sfc in chains() {
            let (Ok(exact), Ok(bbe)) = (
                ExactSolver::with_k(10).solve(&net, &sfc, &flow),
                BbeSolver::new().solve(&net, &sfc, &flow),
            ) else {
                continue;
            };
            total_bbe += bbe.cost.total();
            total_opt += exact.cost.total();
            cases += 1;
        }
    }
    assert!(cases >= 8, "too few solvable cases ({cases})");
    let ratio = total_bbe / total_opt;
    assert!(
        ratio < 1.25,
        "BBE averages {ratio:.3}× the optimum over {cases} cases"
    );
}

/// On a hand-built instance whose optimum is known in closed form, the
/// exact solver returns exactly it (regression anchor for the whole
/// cost model).
#[test]
fn exact_matches_hand_computed_optimum() {
    // Triangle v0-v1-v2, all links price 1; f0 on v1 (price 2) and v2
    // (price 1); merger unused. Chain = [f0]; flow v0 → v0.
    let mut g = Network::new();
    g.add_nodes(3);
    g.add_link(NodeId(0), NodeId(1), 1.0, 10.0).unwrap();
    g.add_link(NodeId(1), NodeId(2), 1.0, 10.0).unwrap();
    g.add_link(NodeId(0), NodeId(2), 1.0, 10.0).unwrap();
    g.deploy_vnf(NodeId(1), VnfTypeId(0), 2.0, 10.0).unwrap();
    g.deploy_vnf(NodeId(2), VnfTypeId(0), 1.0, 10.0).unwrap();
    let sfc = DagSfc::sequential(&[VnfTypeId(0)], VnfCatalog::new(1)).unwrap();
    let flow = Flow::unit(NodeId(0), NodeId(0));
    let out = ExactSolver::with_k(6).solve(&g, &sfc, &flow).unwrap();
    // Optimum: f0@v2 (1.0) + v0→v2 (1.0) + v2→v0 (1.0) = 3.0; the f0@v1
    // alternative costs 2.0 + 1.0 + 1.0 = 4.0.
    assert!((out.cost.total() - 3.0).abs() < 1e-9, "{}", out.cost);
    assert_eq!(out.embedding.node_of(0, 0), NodeId(2));
}

/// Round trips through the source: a flow whose src == dst is legal and
/// all solvers handle it.
#[test]
fn same_endpoint_flows_supported() {
    let net = small_net(10);
    let flow = Flow::unit(NodeId(4), NodeId(4));
    let sfc = DagSfc::sequential(&[VnfTypeId(0)], catalog()).unwrap();
    for solver in [
        Box::new(BbeSolver::new()) as Box<dyn Solver>,
        Box::new(MbbeSolver::new()),
        Box::new(MinvSolver::new()),
        Box::new(ExactSolver::with_k(6)),
    ] {
        if let Ok(out) = solver.solve(&net, &sfc, &flow) {
            validate(&net, &sfc, &flow, &out.embedding).unwrap();
        }
    }
}
