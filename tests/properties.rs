//! Property-based tests (proptest) over the core invariants:
//! routing optimality, residual-state algebra, transformation
//! correctness, cost-accounting monotonicity, and validator soundness.

use dagsfc::core::solvers::{MbbeSolver, MinvSolver, Solver};
use dagsfc::core::{validate, DagSfc, Flow, Layer, VnfCatalog};
use dagsfc::net::routing::{k_shortest_paths, min_cost_path, NoFilter};
use dagsfc::net::{generator, NetGenConfig, Network, NetworkState, NodeId, VnfTypeId};
use dagsfc::nfp::{catalog::enterprise_catalog, to_hybrid, DependencyMatrix, TransformOptions};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a connected random network of 4..=14 nodes.
fn arb_net() -> impl Strategy<Value = Network> {
    (4usize..=14, 2.0f64..5.0, 0u64..5000).prop_map(|(n, deg, seed)| {
        let cfg = NetGenConfig {
            nodes: n,
            avg_degree: deg,
            vnf_kinds: 4,
            deploy_ratio: 0.6,
            vnf_price_fluctuation: 0.4,
            link_price_fluctuation: 0.4,
            ..NetGenConfig::default()
        };
        generator::generate(&cfg, &mut StdRng::seed_from_u64(seed)).expect("valid config")
    })
}

/// Exhaustively enumerates the cheapest simple-path price via DFS —
/// the brute-force oracle for Dijkstra.
fn brute_force_cheapest(net: &Network, from: NodeId, to: NodeId) -> Option<f64> {
    fn dfs(
        net: &Network,
        cur: NodeId,
        to: NodeId,
        visited: &mut Vec<bool>,
        cost: f64,
        best: &mut Option<f64>,
    ) {
        if cur == to {
            *best = Some(best.map_or(cost, |b: f64| b.min(cost)));
            return;
        }
        for &(next, link) in net.neighbors(cur) {
            if !visited[next.index()] {
                visited[next.index()] = true;
                dfs(net, next, to, visited, cost + net.link(link).price, best);
                visited[next.index()] = false;
            }
        }
    }
    let mut visited = vec![false; net.node_count()];
    visited[from.index()] = true;
    let mut best = None;
    dfs(net, from, to, &mut visited, 0.0, &mut best);
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dijkstra's result equals the brute-force cheapest simple path.
    #[test]
    fn dijkstra_matches_brute_force(net in arb_net(), a in 0u32..14, b in 0u32..14) {
        let n = net.node_count() as u32;
        let (a, b) = (NodeId(a % n), NodeId(b % n));
        let dij = min_cost_path(&net, a, b, &NoFilter).map(|p| p.price(&net));
        let brute = brute_force_cheapest(&net, a, b);
        match (dij, brute) {
            (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9, "dijkstra {x} vs brute {y}"),
            (None, None) => {}
            (x, y) => prop_assert!(false, "reachability disagreement: {x:?} vs {y:?}"),
        }
    }

    /// Yen's paths are loopless, distinct, sorted by price, and start
    /// with the Dijkstra optimum.
    #[test]
    fn yen_invariants(net in arb_net(), a in 0u32..14, b in 0u32..14, k in 1usize..6) {
        let n = net.node_count() as u32;
        let (a, b) = (NodeId(a % n), NodeId(b % n));
        let paths = k_shortest_paths(&net, a, b, k, &NoFilter);
        prop_assert!(paths.len() <= k);
        for (i, p) in paths.iter().enumerate() {
            prop_assert!(!p.has_node_cycle());
            prop_assert_eq!(p.source(), a);
            prop_assert_eq!(p.target(), b);
            for q in &paths[i + 1..] {
                prop_assert_ne!(p, q);
            }
        }
        for w in paths.windows(2) {
            prop_assert!(w[0].price(&net) <= w[1].price(&net) + 1e-9);
        }
        if let Some(first) = paths.first() {
            let opt = min_cost_path(&net, a, b, &NoFilter).expect("reachable");
            prop_assert!((first.price(&net) - opt.price(&net)).abs() < 1e-9);
        }
    }

    /// Reserving arbitrary resources and rolling back restores the state
    /// exactly (checkpoint/rollback is an inverse).
    #[test]
    fn state_rollback_is_identity(
        net in arb_net(),
        ops in prop::collection::vec((0u32..14, 0u16..5, 0.01f64..0.4), 1..20),
    ) {
        let mut state = NetworkState::new(&net);
        let before_links: Vec<f64> = net
            .link_ids()
            .map(|l| state.link_remaining(l).unwrap())
            .collect();
        let cp = state.checkpoint();
        for (raw_node, raw_kind, rate) in ops {
            let node = NodeId(raw_node % net.node_count() as u32);
            let kind = VnfTypeId(raw_kind);
            let _ = state.reserve_vnf(node, kind, rate);
            if net.link_count() > 0 {
                let link = dagsfc::net::LinkId(raw_node % net.link_count() as u32);
                let _ = state.reserve_link(link, rate);
            }
        }
        state.rollback(cp);
        for (l, &before) in net.link_ids().zip(&before_links) {
            prop_assert!((state.link_remaining(l).unwrap() - before).abs() < 1e-12);
        }
        prop_assert_eq!(state.reservation_count(), 0);
        prop_assert!(state.total_link_load().abs() < 1e-12);
        prop_assert!(state.total_vnf_load().abs() < 1e-12);
    }

    /// The NFP transformation preserves the NF multiset, keeps every
    /// layer mutually parallelizable, and respects the width cap.
    #[test]
    fn transform_invariants(
        chain in prop::collection::vec(0usize..12, 1..10),
        cap in 1usize..5,
    ) {
        let cat = enterprise_catalog();
        let deps = DependencyMatrix::analyze(&cat);
        let h = to_hybrid(&chain, &deps, TransformOptions { max_width: Some(cap) });
        // Multiset preserved.
        let mut flat = h.flatten();
        let mut orig = chain.clone();
        flat.sort_unstable();
        orig.sort_unstable();
        prop_assert_eq!(flat, orig);
        // Width cap and pairwise parallelizability.
        for layer in h.layers() {
            prop_assert!(layer.len() <= cap);
            for (i, &a) in layer.iter().enumerate() {
                for &b in &layer[i + 1..] {
                    prop_assert!(deps.parallelizable(a, b) && deps.parallelizable(b, a));
                }
            }
        }
    }

    /// Solver outputs on random instances always validate, and the
    /// reported cost matches the validator's independent recomputation.
    #[test]
    fn random_instances_validate(seed in 0u64..40) {
        let cfg = NetGenConfig {
            nodes: 25,
            avg_degree: 4.0,
            vnf_kinds: 6, // 5 regular + merger
            deploy_ratio: 0.5,
            ..NetGenConfig::default()
        };
        let net = generator::generate(&cfg, &mut StdRng::seed_from_u64(seed)).expect("valid");
        let catalog = VnfCatalog::new(5);
        let sfc = DagSfc::new(
            vec![
                Layer::new(vec![VnfTypeId(0), VnfTypeId(1)]),
                Layer::new(vec![VnfTypeId(2)]),
            ],
            catalog,
        ).expect("valid chain");
        let flow = Flow::unit(NodeId(seed as u32 % 25), NodeId((seed as u32 + 7) % 25));
        for solver in [Box::new(MbbeSolver::new()) as Box<dyn Solver>, Box::new(MinvSolver::new())] {
            if let Ok(out) = solver.solve(&net, &sfc, &flow) {
                let cost = validate(&net, &sfc, &flow, &out.embedding);
                prop_assert!(cost.is_ok(), "{} invalid: {:?}", solver.name(), cost.err());
                prop_assert!((cost.unwrap().total() - out.cost.total()).abs() < 1e-9);
            }
        }
    }

    /// Multicast-aware accounting never charges more than naive
    /// per-path accounting would.
    #[test]
    fn multicast_accounting_no_more_than_unicast(seed in 0u64..30) {
        let cfg = NetGenConfig {
            nodes: 20,
            avg_degree: 4.0,
            vnf_kinds: 6,
            deploy_ratio: 0.6,
            ..NetGenConfig::default()
        };
        let net = generator::generate(&cfg, &mut StdRng::seed_from_u64(seed)).expect("valid");
        let catalog = VnfCatalog::new(5);
        let sfc = DagSfc::new(
            vec![Layer::new(vec![VnfTypeId(0), VnfTypeId(1), VnfTypeId(2)])],
            catalog,
        ).expect("valid chain");
        let flow = Flow::unit(NodeId(0), NodeId(19));
        if let Ok(out) = MbbeSolver::new().solve(&net, &sfc, &flow) {
            let acct = out.embedding.try_account(&net, &sfc, &flow).unwrap();
            // Naive accounting: every path charged independently.
            let naive: f64 = out
                .embedding
                .paths()
                .iter()
                .map(|p| p.price(&net) * flow.size)
                .sum();
            prop_assert!(acct.cost.link <= naive + 1e-9);
        }
    }
}

/// Non-proptest determinism anchor: fixed seed produces a byte-stable
/// network fingerprint (regression canary for generator changes).
#[test]
fn generator_fingerprint_stable() {
    let cfg = NetGenConfig {
        nodes: 30,
        avg_degree: 4.0,
        vnf_kinds: 5,
        ..NetGenConfig::default()
    };
    let a = generator::generate(&cfg, &mut StdRng::seed_from_u64(77)).unwrap();
    let b = generator::generate(&cfg, &mut StdRng::seed_from_u64(77)).unwrap();
    let fingerprint = |net: &Network| {
        let s = net.stats();
        (
            s.links,
            format!("{:.9}", s.avg_vnf_price),
            format!("{:.9}", s.avg_link_price),
        )
    };
    assert_eq!(fingerprint(&a), fingerprint(&b));
}
