//! Property-based tests of the structured-topology generators: closed-
//! form node/link counts, connectivity, and determinism across the
//! whole parameter space.

use dagsfc::net::topologies::{build, Topology};
use dagsfc::net::{analyze, NetGenConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg() -> NetGenConfig {
    NetGenConfig {
        vnf_kinds: 4,
        deploy_ratio: 0.5,
        ..NetGenConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Rings: n nodes, n links, all degree 2, diameter ⌊n/2⌋.
    #[test]
    fn ring_closed_forms(n in 3usize..40, seed in 0u64..1000) {
        let net = build(Topology::Ring { n }, &cfg(), &mut StdRng::seed_from_u64(seed))
            .expect("valid ring");
        prop_assert_eq!(net.node_count(), n);
        prop_assert_eq!(net.link_count(), n);
        prop_assert!(net.is_connected());
        let m = analyze(&net);
        prop_assert_eq!(m.min_degree, 2);
        prop_assert_eq!(m.max_degree, 2);
        prop_assert_eq!(m.diameter, Some((n / 2) as u32));
    }

    /// Meshes: rows·cols nodes, rows·(cols-1)+cols·(rows-1) links; tori
    /// add the wrap links (for rows, cols > 2) and are 4-regular.
    #[test]
    fn grid_closed_forms(rows in 2usize..8, cols in 2usize..8, seed in 0u64..1000) {
        let mesh = build(
            Topology::Grid { rows, cols, wrap: false },
            &cfg(),
            &mut StdRng::seed_from_u64(seed),
        ).expect("valid mesh");
        prop_assert_eq!(mesh.node_count(), rows * cols);
        prop_assert_eq!(mesh.link_count(), rows * (cols - 1) + cols * (rows - 1));
        prop_assert!(mesh.is_connected());

        if rows > 2 && cols > 2 {
            let torus = build(
                Topology::Grid { rows, cols, wrap: true },
                &cfg(),
                &mut StdRng::seed_from_u64(seed),
            ).expect("valid torus");
            prop_assert_eq!(torus.link_count(), 2 * rows * cols);
            let m = analyze(&torus);
            prop_assert_eq!(m.min_degree, 4);
            prop_assert_eq!(m.max_degree, 4);
        }
    }

    /// Fat-trees: (k/2)² + k² nodes, k³/2 links, connected, and every
    /// core switch touches exactly k pods.
    #[test]
    fn fat_tree_closed_forms(half in 1usize..5, seed in 0u64..1000) {
        let k = half * 2;
        let net = build(Topology::FatTree { k }, &cfg(), &mut StdRng::seed_from_u64(seed))
            .expect("valid fat-tree");
        prop_assert_eq!(net.node_count(), half * half + k * k);
        prop_assert_eq!(net.link_count(), k * half * half * 2);
        prop_assert!(net.is_connected());
    }

    /// Barabási–Albert: exact link count and connectivity for any valid
    /// (n, m).
    #[test]
    fn ba_closed_forms(m in 1usize..4, extra in 1usize..30, seed in 0u64..1000) {
        let n = m + 1 + extra;
        let net = build(
            Topology::BarabasiAlbert { n, m },
            &cfg(),
            &mut StdRng::seed_from_u64(seed),
        ).expect("valid BA");
        prop_assert_eq!(net.node_count(), n);
        // Seed clique C(m+1, 2) + m links per later node.
        let expected = (m + 1) * m / 2 + (n - m - 1) * m;
        prop_assert_eq!(net.link_count(), expected);
        prop_assert!(net.is_connected());
    }

    /// Waxman graphs are always connected (the stitching tree guarantees
    /// it) and deterministic in the seed.
    #[test]
    fn waxman_connected_and_deterministic(
        n in 4usize..30,
        alpha in 0.1f64..1.0,
        beta in 0.1f64..1.0,
        seed in 0u64..1000,
    ) {
        let t = Topology::Waxman { n, alpha, beta };
        let a = build(t, &cfg(), &mut StdRng::seed_from_u64(seed)).expect("valid waxman");
        prop_assert!(a.is_connected());
        prop_assert!(a.link_count() >= n - 1);
        let b = build(t, &cfg(), &mut StdRng::seed_from_u64(seed)).expect("valid waxman");
        prop_assert_eq!(a.link_count(), b.link_count());
        prop_assert_eq!(a.stats(), b.stats());
    }
}
