//! Mutation testing of the constraint validator: take a *valid* solver
//! embedding, corrupt it in a targeted way, and require the validator to
//! reject it. This pins down that `validate` actually enforces each
//! constraint family rather than rubber-stamping solver output.

use dagsfc::core::solvers::{MbbeSolver, Solver};
use dagsfc::core::{validate, DagSfc, Embedding, Flow, Layer, Violation, VnfCatalog};
use dagsfc::net::{generator, NetGenConfig, Network, NodeId, Path, VnfTypeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(seed: u64) -> (Network, DagSfc, Flow, Embedding) {
    let cfg = NetGenConfig {
        nodes: 30,
        avg_degree: 4.0,
        vnf_kinds: 6,
        deploy_ratio: 0.6,
        ..NetGenConfig::default()
    };
    let net = generator::generate(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
    let sfc = DagSfc::new(
        vec![
            Layer::new(vec![VnfTypeId(0)]),
            Layer::new(vec![VnfTypeId(1), VnfTypeId(2)]),
        ],
        VnfCatalog::new(5),
    )
    .unwrap();
    let flow = Flow::unit(NodeId(0), NodeId(29));
    let out = MbbeSolver::new().solve(&net, &sfc, &flow).unwrap();
    validate(&net, &sfc, &flow, &out.embedding).expect("baseline must be valid");
    (net, sfc, flow, out.embedding)
}

/// Reassigning a slot to a node that does not host its kind must trip
/// `SlotNotHosted` (and usually endpoint mismatches too).
#[test]
fn detects_reassigned_slot() {
    for seed in [1u64, 2, 3] {
        let (net, sfc, flow, emb) = setup(seed);
        // Find a node that does NOT host kind 0.
        let bad_node = net
            .node_ids()
            .find(|&v| !net.hosts(v, VnfTypeId(0)))
            .expect("deploy ratio < 1 leaves gaps");
        let mut assignments = emb.assignments().to_vec();
        assignments[0][0] = bad_node;
        let mutated = Embedding::new(&sfc, assignments, emb.paths().to_vec()).unwrap();
        let errs = validate(&net, &sfc, &flow, &mutated).unwrap_err();
        assert!(
            errs.iter()
                .any(|v| matches!(v, Violation::SlotNotHosted { .. })),
            "seed {seed}: missing SlotNotHosted in {errs:?}"
        );
    }
}

/// Replacing a real-path with one between the wrong endpoints must trip
/// `PathEndpointMismatch`.
#[test]
fn detects_swapped_path() {
    for seed in [4u64, 5, 6] {
        let (net, sfc, flow, emb) = setup(seed);
        let mut paths = emb.paths().to_vec();
        // Replace the first non-trivial path with a trivial one on the
        // wrong node.
        let idx = paths
            .iter()
            .position(|p| !p.is_empty())
            .expect("some path has links");
        let wrong_node = NodeId((paths[idx].source().0 + 1) % net.node_count() as u32);
        if wrong_node == paths[idx].source() && paths[idx].target() == wrong_node {
            continue;
        }
        paths[idx] = Path::trivial(wrong_node);
        let mutated = Embedding::new(&sfc, emb.assignments().to_vec(), paths).unwrap();
        let errs = validate(&net, &sfc, &flow, &mutated).unwrap_err();
        assert!(
            errs.iter()
                .any(|v| matches!(v, Violation::PathEndpointMismatch { .. })),
            "seed {seed}: missing PathEndpointMismatch in {errs:?}"
        );
    }
}

/// Reversing a path breaks its endpoints (unless symmetric); the
/// validator must notice whenever source ≠ target.
#[test]
fn detects_reversed_path() {
    let (net, sfc, flow, emb) = setup(7);
    let mut paths = emb.paths().to_vec();
    if let Some(idx) = paths
        .iter()
        .position(|p| p.source() != p.target() && !p.is_empty())
    {
        paths[idx] = paths[idx].clone().reversed();
        let mutated = Embedding::new(&sfc, emb.assignments().to_vec(), paths).unwrap();
        assert!(validate(&net, &sfc, &flow, &mutated).is_err());
    }
}

/// Overloading: a flow rate beyond the instance capability must trip
/// `VnfOverload` even on an otherwise untouched embedding.
#[test]
fn detects_rate_overload() {
    let cfg = NetGenConfig {
        nodes: 20,
        avg_degree: 4.0,
        vnf_kinds: 4,
        deploy_ratio: 0.7,
        vnf_capacity: 2.0,
        link_capacity: 50.0,
        ..NetGenConfig::default()
    };
    let net = generator::generate(&cfg, &mut StdRng::seed_from_u64(9)).unwrap();
    let sfc = DagSfc::sequential(&[VnfTypeId(0)], VnfCatalog::new(3)).unwrap();
    let flow = Flow::unit(NodeId(0), NodeId(19));
    let out = MbbeSolver::new().solve(&net, &sfc, &flow).unwrap();
    // Re-validate the same embedding under a heavier flow.
    let heavy = Flow {
        rate: 5.0, // above the 2.0 capability
        ..flow
    };
    let errs = validate(&net, &sfc, &heavy, &out.embedding).unwrap_err();
    assert!(errs
        .iter()
        .any(|v| matches!(v, Violation::VnfOverload { .. })));
}

/// The validator's cost equals `Embedding::cost` on valid embeddings
/// across many seeds (they share accounting code, but this guards the
/// wiring).
#[test]
fn validator_cost_matches_account() {
    for seed in 10u64..16 {
        let (net, sfc, flow, emb) = setup(seed);
        let v = validate(&net, &sfc, &flow, &emb).unwrap();
        let a = emb.try_cost(&net, &sfc, &flow).unwrap();
        assert!((v.total() - a.total()).abs() < 1e-12);
        assert!((v.vnf - a.vnf).abs() < 1e-12);
        assert!((v.link - a.link).abs() < 1e-12);
    }
}
