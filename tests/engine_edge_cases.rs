//! Edge cases of the BBE/MBBE engine and the model layer: shapes,
//! degeneracies, and adversarial configurations that the paper never
//! spells out but an implementation must decide.

use dagsfc::core::solvers::{BbeConfig, BbeSolver, MbbeSolver, MinvSolver, Solver};
use dagsfc::core::{validate, ChainBuilder, DagSfc, Flow, Layer, VnfCatalog};
use dagsfc::net::{generator, NetGenConfig, Network, NodeId, VnfTypeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn net(seed: u64, nodes: usize, kinds: usize) -> Network {
    let cfg = NetGenConfig {
        nodes,
        avg_degree: 5.0,
        vnf_kinds: kinds + 1, // + merger
        deploy_ratio: 0.6,
        ..NetGenConfig::default()
    };
    generator::generate(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap()
}

/// A deep chain (8 sequential layers) stays tractable for MBBE and BBE's
/// level caps keep it finite.
#[test]
fn deep_sequential_chain() {
    let g = net(1, 60, 8);
    let kinds: Vec<VnfTypeId> = (0..8u16).map(VnfTypeId).collect();
    let sfc = DagSfc::sequential(&kinds, VnfCatalog::new(8)).unwrap();
    let flow = Flow::unit(NodeId(0), NodeId(59));
    for solver in [
        Box::new(MbbeSolver::new()) as Box<dyn Solver>,
        Box::new(BbeSolver::new()),
    ] {
        let out = solver.solve(&g, &sfc, &flow).unwrap();
        validate(&g, &sfc, &flow, &out.embedding).unwrap();
        assert_eq!(out.embedding.assignments().len(), 8);
    }
}

/// A wide parallel layer (5 VNFs) — beyond the paper's width-3
/// generator — embeds with bounded candidate enumeration.
#[test]
fn wide_parallel_layer() {
    let g = net(2, 60, 6);
    let sfc = DagSfc::new(
        vec![Layer::new((0..5u16).map(VnfTypeId).collect::<Vec<_>>())],
        VnfCatalog::new(6),
    )
    .unwrap();
    let flow = Flow::unit(NodeId(0), NodeId(59));
    let out = MbbeSolver::new().solve(&g, &sfc, &flow).unwrap();
    validate(&g, &sfc, &flow, &out.embedding).unwrap();
    assert_eq!(out.embedding.assignments()[0].len(), 6); // 5 + merger
}

/// The same kind twice within one parallel layer is legal (two slots of
/// one category) and both slots may legitimately share one instance —
/// cost must then count the instance twice (eq. 7).
#[test]
fn duplicate_kind_within_layer() {
    let g = net(3, 50, 4);
    let sfc = DagSfc::new(
        vec![Layer::new(vec![VnfTypeId(0), VnfTypeId(0)])],
        VnfCatalog::new(4),
    )
    .unwrap();
    let flow = Flow::unit(NodeId(0), NodeId(49));
    let out = MbbeSolver::new().solve(&g, &sfc, &flow).unwrap();
    validate(&g, &sfc, &flow, &out.embedding).unwrap();
    let a0 = out.embedding.node_of(0, 0);
    let a1 = out.embedding.node_of(0, 1);
    if a0 == a1 {
        // Shared instance → VNF cost includes its price twice.
        let price = g.vnf_price(a0, VnfTypeId(0)).unwrap();
        assert!(out.cost.vnf >= 2.0 * price - 1e-9);
    }
}

/// Consecutive layers of the same kind: reuse across layers is legal
/// and the engine exploits colocation (trivial inter-layer path).
#[test]
fn repeated_kind_across_layers() {
    let g = net(4, 50, 4);
    let sfc = DagSfc::sequential(
        &[VnfTypeId(1), VnfTypeId(1), VnfTypeId(1)],
        VnfCatalog::new(4),
    )
    .unwrap();
    let flow = Flow::unit(NodeId(0), NodeId(49));
    let out = MbbeSolver::new().solve(&g, &sfc, &flow).unwrap();
    validate(&g, &sfc, &flow, &out.embedding).unwrap();
    // All three layers land on the same node (the cheapest nearby one):
    // anything else would pay extra links for zero benefit here.
    let nodes: Vec<NodeId> = (0..3).map(|l| out.embedding.node_of(l, 0)).collect();
    assert_eq!(nodes[0], nodes[1]);
    assert_eq!(nodes[1], nodes[2]);
}

/// src == dst round-trip flows work through the whole engine.
#[test]
fn same_endpoint_round_trip() {
    let g = net(5, 40, 4);
    let sfc = ChainBuilder::new(VnfCatalog::new(4))
        .then(VnfTypeId(0))
        .parallel([VnfTypeId(1), VnfTypeId(2)])
        .build()
        .unwrap();
    let flow = Flow::unit(NodeId(7), NodeId(7));
    let out = MbbeSolver::new().solve(&g, &sfc, &flow).unwrap();
    validate(&g, &sfc, &flow, &out.embedding).unwrap();
    assert_eq!(out.embedding.paths()[0].source(), NodeId(7));
    assert_eq!(out.embedding.paths().last().unwrap().target(), NodeId(7));
}

/// Extreme engine bounds: a 1-wide beam (`max_level_width = 1`) still
/// returns valid embeddings.
#[test]
fn unit_beam_width() {
    let g = net(6, 50, 5);
    let sfc = DagSfc::new(
        vec![
            Layer::new(vec![VnfTypeId(0), VnfTypeId(1)]),
            Layer::new(vec![VnfTypeId(2)]),
        ],
        VnfCatalog::new(5),
    )
    .unwrap();
    let flow = Flow::unit(NodeId(0), NodeId(49));
    let solver = MbbeSolver {
        config: BbeConfig {
            max_level_width: 1,
            ..BbeConfig::mbbe()
        },
    };
    let out = solver.solve(&g, &sfc, &flow).unwrap();
    validate(&g, &sfc, &flow, &out.embedding).unwrap();
    // The unrestricted engine can only be equal or better.
    let free = MbbeSolver::new().solve(&g, &sfc, &flow).unwrap();
    assert!(free.cost.total() <= out.cost.total() + 1e-9);
}

/// Zero-size flows cost nothing but still occupy structure (z = 0 makes
/// the objective vanish while capacity checks use the rate).
#[test]
fn zero_size_flow() {
    let g = net(7, 40, 4);
    let sfc = DagSfc::sequential(&[VnfTypeId(0)], VnfCatalog::new(4)).unwrap();
    let flow = Flow {
        src: NodeId(0),
        dst: NodeId(39),
        rate: 1.0,
        size: 0.0,
        delay_budget_us: None,
    };
    let out = MbbeSolver::new().solve(&g, &sfc, &flow).unwrap();
    validate(&g, &sfc, &flow, &out.embedding).unwrap();
    assert_eq!(out.cost.total(), 0.0);
}

/// MINV ties are broken deterministically (lowest node id) so repeated
/// runs cannot flap between equally-cheap hosts.
#[test]
fn minv_tie_breaking() {
    let mut g = Network::new();
    g.add_nodes(4);
    g.add_link(NodeId(0), NodeId(1), 1.0, 10.0).unwrap();
    g.add_link(NodeId(0), NodeId(2), 1.0, 10.0).unwrap();
    g.add_link(NodeId(1), NodeId(3), 1.0, 10.0).unwrap();
    g.add_link(NodeId(2), NodeId(3), 1.0, 10.0).unwrap();
    // Identical prices on v1 and v2.
    g.deploy_vnf(NodeId(1), VnfTypeId(0), 1.0, 10.0).unwrap();
    g.deploy_vnf(NodeId(2), VnfTypeId(0), 1.0, 10.0).unwrap();
    let sfc = DagSfc::sequential(&[VnfTypeId(0)], VnfCatalog::new(1)).unwrap();
    let flow = Flow::unit(NodeId(0), NodeId(3));
    for _ in 0..5 {
        let out = MinvSolver::new().solve(&g, &sfc, &flow).unwrap();
        assert_eq!(out.embedding.node_of(0, 0), NodeId(1), "ties break low");
    }
}
