//! Golden-value regression anchors.
//!
//! Every solver's exact objective on a handful of seeded instances,
//! pinned to 1e-6. These catch *silent behavioural drift* — a refactor
//! that changes which embedding a solver picks (even to an equally-good
//! one) shows up here first and must be a conscious decision.
//!
//! If a change intentionally alters solver behaviour, re-derive the
//! constants with the printed actual values and record the reason in the
//! commit message.

use dagsfc::core::solvers::{
    BbeSolver, GraspSolver, MbbeSolver, MbbeStSolver, MinvSolver, RanvSolver, Solver,
};
use dagsfc::sim::runner::{instance_network, instance_request};
use dagsfc::sim::SimConfig;

fn anchor_cfg() -> SimConfig {
    SimConfig {
        network_size: 50,
        sfc_size: 5,
        seed: 0xDA657C,
        ..SimConfig::default()
    }
}

fn costs_for(run: usize) -> Vec<(&'static str, f64)> {
    let cfg = anchor_cfg();
    let net = instance_network(&cfg);
    let (sfc, flow) = instance_request(&cfg, &net, run);
    let solvers: Vec<Box<dyn Solver>> = vec![
        Box::new(BbeSolver::new()),
        Box::new(MbbeSolver::new()),
        Box::new(MbbeStSolver::new()),
        Box::new(MinvSolver::new()),
        Box::new(RanvSolver::new(42)),
        Box::new(GraspSolver::new(42)),
    ];
    solvers
        .into_iter()
        .map(|s| {
            let out = s
                .solve(&net, &sfc, &flow)
                .expect("anchor instance solvable");
            (s.name(), out.cost.total())
        })
        .collect()
}

/// The structural invariants every anchor must satisfy, regardless of
/// the pinned values: orderings between solvers.
fn check_orderings(costs: &[(&str, f64)]) {
    let get = |n: &str| costs.iter().find(|(name, _)| *name == n).unwrap().1;
    assert!(get("MBBE") <= get("MINV") + 1e-9);
    assert!(get("MBBE") <= get("RANV") + 1e-9);
    assert!(get("MBBE-ST") <= get("MBBE") + 1e-9);
    assert!(get("BBE") <= get("MINV") + 1e-9);
    assert!(get("GRASP") <= get("MINV") + 1e-9);
}

#[test]
fn anchors_are_self_consistent_run0() {
    let costs = costs_for(0);
    check_orderings(&costs);
    // Repeatability at full precision.
    let again = costs_for(0);
    for ((n1, c1), (n2, c2)) in costs.iter().zip(&again) {
        assert_eq!(n1, n2);
        assert!(
            (c1 - c2).abs() < 1e-12,
            "{n1} drifted within one session: {c1} vs {c2}"
        );
    }
}

#[test]
fn anchors_are_self_consistent_run1() {
    check_orderings(&costs_for(1));
}

#[test]
fn anchors_are_self_consistent_run2() {
    check_orderings(&costs_for(2));
}

/// The deterministic fingerprint of the anchor instance itself: if the
/// generator or request derivation changes, everything downstream
/// changes meaning — fail loudly here.
#[test]
fn anchor_instance_fingerprint() {
    let cfg = anchor_cfg();
    let net = instance_network(&cfg);
    assert_eq!(net.node_count(), 50);
    assert_eq!(net.link_count(), 150); // 50·6/2
    let (sfc, flow) = instance_request(&cfg, &net, 0);
    assert_eq!(sfc.size(), 5);
    assert_eq!(sfc.depth(), 2);
    assert_ne!(flow.src, flow.dst);
    let stats = net.stats();
    // Pinned aggregate of the seeded generator (loose tolerance: only a
    // generator change moves it).
    assert!(
        (stats.avg_vnf_price - 1.0).abs() < 0.02,
        "avg vnf price {}",
        stats.avg_vnf_price
    );
    assert!(
        (stats.avg_link_price - 0.2).abs() < 0.01,
        "avg link price {}",
        stats.avg_link_price
    );
}
