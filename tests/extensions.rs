//! Integration tests for the beyond-the-paper extensions, exercised
//! through the public facade the way a downstream user would.

use dagsfc::core::solvers::{
    improve, ImprovedSolver, LocalSearchConfig, MbbeSolver, MbbeStSolver, RanvSolver, Solver,
};
use dagsfc::core::{cost_lower_bound, protect, validate, ChainBuilder, Flow, VnfCatalog};
use dagsfc::net::routing::{disjoint_path_pair, multicast_tree, NoFilter};
use dagsfc::net::topologies::{build, Topology};
use dagsfc::net::{analyze, to_dot, DotOptions, NodeId, VnfTypeId};
use dagsfc::nfp::{hybrid_preset, TransformOptions, PRESETS};
use dagsfc::sim::lifecycle::{run_lifecycle, LifecycleConfig};
use dagsfc::sim::online::{run_online, OnlineConfig};
use dagsfc::sim::runner::{instance_network, instance_request};
use dagsfc::sim::{Algo, SimConfig};

fn base_cfg() -> SimConfig {
    SimConfig {
        network_size: 50,
        sfc_size: 4,
        ..SimConfig::default()
    }
}

/// The whole extension stack on one instance: build a chain fluently,
/// embed with MBBE-ST, polish with local search, protect with disjoint
/// backups, check against the certified lower bound, and export DOT.
#[test]
fn full_extension_pipeline() {
    let cfg = base_cfg();
    let net = instance_network(&cfg);
    let catalog = VnfCatalog::new(cfg.vnf_kinds as u16);
    let sfc = ChainBuilder::new(catalog)
        .then(VnfTypeId(0))
        .parallel([VnfTypeId(1), VnfTypeId(2)])
        .then(VnfTypeId(3))
        .build()
        .unwrap();
    let flow = Flow::unit(NodeId(0), NodeId(49));

    let out = MbbeStSolver::new().solve(&net, &sfc, &flow).unwrap();
    validate(&net, &sfc, &flow, &out.embedding).unwrap();

    let lb = cost_lower_bound(&net, &sfc, &flow).unwrap();
    assert!(out.cost.total() >= lb.total() - 1e-9);

    let polished = improve(
        &net,
        &sfc,
        &flow,
        &out.embedding,
        LocalSearchConfig::default(),
    );
    assert!(polished.after <= polished.before + 1e-9);
    assert!(polished.after >= lb.total() - 1e-9);

    let protected = protect(&net, &sfc, &flow, &polished.embedding).unwrap();
    validate(&net, &sfc, &flow, &protected.embedding).unwrap();
    for l in net.link_ids() {
        assert!(protected.survives_link_failure(l));
    }

    let dot = to_dot(
        &net,
        &DotOptions {
            highlight_links: protected
                .embedding
                .paths()
                .iter()
                .flat_map(|p| p.links().iter().copied())
                .collect(),
            ..DotOptions::default()
        },
    );
    assert!(dot.contains("color=red"));
}

/// Every chain preset embeds on a Table 2-style cloud after NFP
/// transformation — presets, transform, solver, and validator agree.
#[test]
fn all_presets_embed() {
    let cfg = SimConfig {
        network_size: 60,
        vnf_kinds: 13, // 12 NFs + headroom; merger becomes kind 13
        ..SimConfig::default()
    };
    let catalog = VnfCatalog::new(12);
    let net_cfg = dagsfc::net::NetGenConfig {
        nodes: 60,
        vnf_kinds: catalog.deployable_count(),
        deploy_ratio: 0.6,
        ..dagsfc::net::NetGenConfig::default()
    };
    let net = dagsfc::net::generator::generate(
        &net_cfg,
        &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(cfg.seed),
    )
    .unwrap();
    let flow = Flow::unit(NodeId(0), NodeId(59));
    for preset in PRESETS {
        let hybrid = hybrid_preset(preset.name, TransformOptions { max_width: Some(3) })
            .expect("preset resolves");
        let sfc = dagsfc::core::DagSfc::from_hybrid(&hybrid, catalog).unwrap();
        let out = MbbeSolver::new()
            .solve(&net, &sfc, &flow)
            .unwrap_or_else(|e| panic!("{}: {e}", preset.name));
        validate(&net, &sfc, &flow, &out.embedding)
            .unwrap_or_else(|v| panic!("{}: {v:?}", preset.name));
    }
}

/// Steiner multicast and disjoint pairs hold their invariants on every
/// structured topology.
#[test]
fn routing_extensions_on_structured_topologies() {
    let gen_cfg = dagsfc::net::NetGenConfig {
        vnf_kinds: 4,
        deploy_ratio: 0.5,
        ..dagsfc::net::NetGenConfig::default()
    };
    let batteries = [
        Topology::Grid {
            rows: 5,
            cols: 5,
            wrap: true,
        },
        Topology::FatTree { k: 4 },
        Topology::BarabasiAlbert { n: 30, m: 3 },
    ];
    for topology in batteries {
        let net = build(
            topology,
            &gen_cfg,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5),
        )
        .unwrap();
        let n = net.node_count() as u32;
        let root = NodeId(0);
        let targets = [NodeId(n / 3), NodeId(n / 2), NodeId(n - 1)];
        let mt = multicast_tree(&net, root, &targets, &NoFilter).unwrap();
        let independent: f64 = targets
            .iter()
            .map(|&t| {
                dagsfc::net::routing::min_cost_path(&net, root, t, &NoFilter)
                    .unwrap()
                    .price(&net)
            })
            .sum();
        assert!(
            mt.tree_price <= independent + 1e-9,
            "{topology:?}: tree {} above independent sum {independent}",
            mt.tree_price
        );
        // These multi-connected fabrics have no bridges on the sampled
        // pairs: disjoint pairs must exist and be disjoint.
        if let Some(pair) = disjoint_path_pair(&net, root, targets[2], &NoFilter) {
            for l in pair.primary.links() {
                assert!(!pair.backup.links().contains(l));
            }
        }
        let metrics = analyze(&net);
        assert!(metrics.diameter.is_some(), "{topology:?} disconnected");
    }
}

/// Online and lifecycle agree with each other and with the wrapped
/// local-search solver under capacity pressure.
#[test]
fn admission_stack_consistency() {
    let base = SimConfig {
        network_size: 30,
        sfc_size: 3,
        vnf_capacity: 5.0,
        link_capacity: 5.0,
        ..SimConfig::default()
    };
    let online = run_online(&OnlineConfig {
        base: base.clone(),
        requests: 50,
        algo: Algo::Mbbe,
    });
    let lifecycle = run_lifecycle(&LifecycleConfig {
        base: base.clone(),
        arrivals: 50,
        mean_holding: 1e9, // nothing departs → must equal online
        algo: Algo::Mbbe,
    });
    assert_eq!(online.accepted, lifecycle.accepted);
    assert_eq!(online.rejected, lifecycle.rejected);
    assert!(lifecycle.final_leak.abs() < 1e-6);
}

/// The LS-wrapped RANV beats plain RANV on the same instance sequence —
/// the improver composes with the runner's request generator.
#[test]
fn wrapped_solver_beats_inner_on_instances() {
    let cfg = base_cfg();
    let net = instance_network(&cfg);
    let mut plain_total = 0.0;
    let mut wrapped_total = 0.0;
    for run in 0..5 {
        let (sfc, flow) = instance_request(&cfg, &net, run);
        plain_total += RanvSolver::new(run as u64)
            .solve(&net, &sfc, &flow)
            .unwrap()
            .cost
            .total();
        wrapped_total += ImprovedSolver::new(RanvSolver::new(run as u64))
            .solve(&net, &sfc, &flow)
            .unwrap()
            .cost
            .total();
    }
    assert!(
        wrapped_total < plain_total - 1e-9,
        "LS wrapper should improve RANV: {plain_total} → {wrapped_total}"
    );
}
