//! Property-based tests for the extension algorithms: Steiner multicast
//! trees, Bhandari disjoint pairs, the local-search improver, and the
//! cost lower bound — all over random networks.

use dagsfc::core::solvers::{improve, LocalSearchConfig, MbbeSolver, RanvSolver, Solver};
use dagsfc::core::{cost_lower_bound, DagSfc, Flow, Layer, VnfCatalog};
use dagsfc::net::routing::{
    disjoint_path_pair, k_shortest_paths, min_cost_path, multicast_tree, NoFilter,
};
use dagsfc::net::{generator, NetGenConfig, Network, NodeId, VnfTypeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_net() -> impl Strategy<Value = Network> {
    (6usize..=16, 3.0f64..5.5, 0u64..4000).prop_map(|(n, deg, seed)| {
        let cfg = NetGenConfig {
            nodes: n,
            avg_degree: deg,
            vnf_kinds: 5,
            deploy_ratio: 0.6,
            vnf_price_fluctuation: 0.4,
            link_price_fluctuation: 0.4,
            ..NetGenConfig::default()
        };
        generator::generate(&cfg, &mut StdRng::seed_from_u64(seed)).expect("valid config")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Steiner trees: per-target paths live inside the tree, are
    /// correctly oriented, and the tree never costs more than the sum of
    /// independent shortest paths.
    #[test]
    fn steiner_invariants(net in arb_net(), raw in prop::collection::vec(0u32..16, 1..4)) {
        let n = net.node_count() as u32;
        let root = NodeId(0);
        let targets: Vec<NodeId> = raw.iter().map(|&t| NodeId(t % n)).collect();
        let Some(mt) = multicast_tree(&net, root, &targets, &NoFilter) else {
            // Generator output is connected, so this must not happen.
            return Err(TestCaseError::fail("connected net must multicast"));
        };
        prop_assert_eq!(mt.paths.len(), targets.len());
        let tree: std::collections::HashSet<_> = mt.tree_links.iter().copied().collect();
        prop_assert_eq!(tree.len(), mt.tree_links.len(), "tree links unique");
        let mut independent = 0.0;
        for (p, &t) in mt.paths.iter().zip(&targets) {
            prop_assert_eq!(p.source(), root);
            prop_assert_eq!(p.target(), t);
            prop_assert!(!p.has_node_cycle());
            for l in p.links() {
                prop_assert!(tree.contains(l), "path escapes the tree");
            }
            independent += min_cost_path(&net, root, t, &NoFilter)
                .expect("connected")
                .price(&net);
        }
        prop_assert!(mt.tree_price <= independent + 1e-9);
        // Tree price equals the sum of its distinct link prices.
        let direct: f64 = mt.tree_links.iter().map(|&l| net.link(l).price).sum();
        prop_assert!((mt.tree_price - direct).abs() < 1e-9);
    }

    /// Bhandari pairs: disjoint, correctly oriented, and the total never
    /// beats the two cheapest loopless paths' sum from Yen (a valid
    /// lower bound certificate: Yen's top-2 need not be disjoint).
    #[test]
    fn disjoint_pair_invariants(net in arb_net(), a in 0u32..16, b in 0u32..16) {
        let n = net.node_count() as u32;
        let (a, b) = (NodeId(a % n), NodeId(b % n));
        if a == b {
            return Ok(());
        }
        if let Some(pair) = disjoint_path_pair(&net, a, b, &NoFilter) {
            prop_assert_eq!(pair.primary.source(), a);
            prop_assert_eq!(pair.primary.target(), b);
            prop_assert_eq!(pair.backup.source(), a);
            prop_assert_eq!(pair.backup.target(), b);
            for l in pair.primary.links() {
                prop_assert!(!pair.backup.links().contains(l));
            }
            prop_assert!(pair.primary.price(&net) <= pair.backup.price(&net) + 1e-9);
            let yen = k_shortest_paths(&net, a, b, 2, &NoFilter);
            if yen.len() == 2 {
                let yen_sum = yen[0].price(&net) + yen[1].price(&net);
                prop_assert!(
                    pair.total_price(&net) >= yen_sum - 1e-9,
                    "pair {} beat the unconstrained top-2 {}",
                    pair.total_price(&net),
                    yen_sum
                );
            }
        }
    }

    /// Local search never worsens any solver's embedding and always
    /// stays above the certified lower bound.
    #[test]
    fn local_search_sandwich(net in arb_net(), seed in 0u64..500) {
        let n = net.node_count() as u32;
        let catalog = VnfCatalog::new(4);
        let sfc = DagSfc::new(
            vec![Layer::new(vec![VnfTypeId(0), VnfTypeId(1)])],
            catalog,
        ).expect("valid chain");
        let flow = Flow::unit(NodeId(seed as u32 % n), NodeId((seed as u32 + 3) % n));
        let Ok(base) = RanvSolver::new(seed).solve(&net, &sfc, &flow) else {
            return Ok(());
        };
        let imp = improve(&net, &sfc, &flow, &base.embedding, LocalSearchConfig::default());
        prop_assert!(imp.after <= imp.before + 1e-9);
        if let Some(lb) = cost_lower_bound(&net, &sfc, &flow) {
            prop_assert!(imp.after >= lb.total() - 1e-9,
                "LS result {} fell below the bound {}", imp.after, lb.total());
        }
        prop_assert!(
            dagsfc::core::validate(&net, &sfc, &flow, &imp.embedding).is_ok()
        );
    }

    /// The lower bound is monotone in the flow size and never exceeds
    /// MBBE's achieved cost.
    #[test]
    fn bound_scaling(net in arb_net(), seed in 0u64..300) {
        let n = net.node_count() as u32;
        let catalog = VnfCatalog::new(4);
        let sfc = DagSfc::sequential(&[VnfTypeId(0), VnfTypeId(2)], catalog)
            .expect("valid chain");
        let src = NodeId(seed as u32 % n);
        let dst = NodeId((seed as u32 + 1) % n);
        let unit = Flow::unit(src, dst);
        let double = Flow { size: 2.0, ..unit };
        let (Some(lb1), Some(lb2)) = (
            cost_lower_bound(&net, &sfc, &unit),
            cost_lower_bound(&net, &sfc, &double),
        ) else {
            return Ok(());
        };
        prop_assert!((lb2.total() - 2.0 * lb1.total()).abs() < 1e-9);
        if let Ok(out) = MbbeSolver::new().solve(&net, &sfc, &unit) {
            prop_assert!(out.cost.total() >= lb1.total() - 1e-9);
        }
    }
}
