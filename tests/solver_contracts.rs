//! Cross-solver contracts: every algorithm, on a battery of random
//! instances, must (a) return embeddings the independent validator
//! accepts, (b) report failures as typed errors, and (c) respect the
//! qualitative orderings the paper claims.

use dagsfc::core::solvers::{BbeConfig, BbeSolver, MbbeSolver, MinvSolver, RanvSolver, Solver};
use dagsfc::core::{validate, Flow, SolveError};
use dagsfc::net::NodeId;
use dagsfc::sim::{runner::instance_network, runner::instance_request, SimConfig};

fn solvers() -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(BbeSolver::new()),
        Box::new(MbbeSolver::new()),
        Box::new(RanvSolver::new(99)),
        Box::new(MinvSolver::new()),
    ]
}

fn cfg(seed: u64) -> SimConfig {
    SimConfig {
        network_size: 60,
        sfc_size: 5,
        seed,
        ..SimConfig::default()
    }
}

/// Every solver's output on every instance passes full validation, and
/// the reported cost equals the independently recomputed cost.
#[test]
fn all_outputs_validate_with_matching_cost() {
    for seed in 0..4u64 {
        let c = cfg(seed);
        let net = instance_network(&c);
        for run in 0..3usize {
            let (sfc, flow) = instance_request(&c, &net, run);
            for solver in solvers() {
                let out = solver
                    .solve(&net, &sfc, &flow)
                    .unwrap_or_else(|e| panic!("{} failed: {e}", solver.name()));
                let cost = validate(&net, &sfc, &flow, &out.embedding)
                    .unwrap_or_else(|v| panic!("{} invalid: {v:?}", solver.name()));
                assert!(
                    (cost.total() - out.cost.total()).abs() < 1e-9,
                    "{} reported {} but validator computed {}",
                    solver.name(),
                    out.cost,
                    cost
                );
            }
        }
    }
}

/// BBE and MBBE never lose to the naive baselines on the same request
/// *on average* (the paper's central claim); per-request they may tie.
#[test]
fn bbe_family_beats_baselines_on_average() {
    let c = cfg(11);
    let net = instance_network(&c);
    let (mut bbe_sum, mut mbbe_sum, mut minv_sum, mut ranv_sum) = (0.0, 0.0, 0.0, 0.0);
    let runs = 8;
    for run in 0..runs {
        let (sfc, flow) = instance_request(&c, &net, run);
        bbe_sum += BbeSolver::new()
            .solve(&net, &sfc, &flow)
            .unwrap()
            .cost
            .total();
        mbbe_sum += MbbeSolver::new()
            .solve(&net, &sfc, &flow)
            .unwrap()
            .cost
            .total();
        minv_sum += MinvSolver::new()
            .solve(&net, &sfc, &flow)
            .unwrap()
            .cost
            .total();
        ranv_sum += RanvSolver::new(run as u64)
            .solve(&net, &sfc, &flow)
            .unwrap()
            .cost
            .total();
    }
    assert!(
        bbe_sum <= minv_sum + 1e-9,
        "BBE {bbe_sum} vs MINV {minv_sum}"
    );
    assert!(
        mbbe_sum <= minv_sum + 1e-9,
        "MBBE {mbbe_sum} vs MINV {minv_sum}"
    );
    assert!(
        mbbe_sum <= ranv_sum + 1e-9,
        "MBBE {mbbe_sum} vs RANV {ranv_sum}"
    );
    // §4.5: MBBE within a whisker of BBE.
    assert!(
        mbbe_sum <= bbe_sum * 1.10 + 1e-9,
        "MBBE {mbbe_sum} strays from BBE {bbe_sum}"
    );
}

/// Unsatisfiable requests produce typed errors from every solver.
#[test]
fn infeasible_requests_fail_cleanly() {
    let c = cfg(3);
    let net = instance_network(&c);
    // A chain over more kinds than the network deploys.
    let wide = SimConfig {
        vnf_kinds: 40,
        sfc_size: 20,
        ..c.clone()
    };
    let (sfc, flow) = instance_request(&wide, &net, 0);
    for solver in solvers() {
        match solver.solve(&net, &sfc, &flow) {
            Err(SolveError::Infeasible(_)) | Err(SolveError::NoFeasibleEmbedding { .. }) => {}
            Ok(_) => panic!("{} accepted an unsatisfiable request", solver.name()),
            Err(e) => panic!("{} returned unexpected error {e}", solver.name()),
        }
    }
}

/// Endpoints outside the network are rejected before any search runs.
#[test]
fn bad_endpoints_rejected() {
    let c = cfg(4);
    let net = instance_network(&c);
    let (sfc, _) = instance_request(&c, &net, 0);
    let flow = Flow::unit(NodeId(0), NodeId(10_000));
    for solver in solvers() {
        assert!(
            matches!(
                solver.solve(&net, &sfc, &flow),
                Err(SolveError::Infeasible(_))
            ),
            "{} must reject out-of-range endpoints",
            solver.name()
        );
    }
}

/// MBBE's three strategies are individually toggleable and all still
/// produce valid embeddings (the ablation surface of DESIGN.md §8).
#[test]
fn mbbe_strategy_ablation_stays_valid() {
    let c = cfg(8);
    let net = instance_network(&c);
    let (sfc, flow) = instance_request(&c, &net, 1);
    let variants = [
        (
            "xmax-only",
            BbeConfig {
                x_max: Some(40),
                x_d: None,
                use_min_cost_paths: false,
                adaptive_x_max: true,
                ..BbeConfig::default()
            },
        ),
        (
            "mincost-only",
            BbeConfig {
                x_max: None,
                x_d: None,
                use_min_cost_paths: true,
                ..BbeConfig::default()
            },
        ),
        (
            "xd-only",
            BbeConfig {
                x_max: None,
                x_d: Some(4),
                use_min_cost_paths: false,
                ..BbeConfig::default()
            },
        ),
        ("all-three", BbeConfig::mbbe()),
    ];
    let reference = BbeSolver::new()
        .solve(&net, &sfc, &flow)
        .unwrap()
        .cost
        .total();
    for (name, config) in variants {
        let out = MbbeSolver { config }
            .solve(&net, &sfc, &flow)
            .unwrap_or_else(|e| panic!("variant {name} failed: {e}"));
        validate(&net, &sfc, &flow, &out.embedding)
            .unwrap_or_else(|v| panic!("variant {name} invalid: {v:?}"));
        assert!(
            out.cost.total() <= reference * 1.25 + 1e-9,
            "variant {name} cost {} far above BBE {reference}",
            out.cost.total()
        );
    }
}

/// Tight `X_d = 1` (pure beam of width 1 per node) still embeds, at a
/// possibly higher cost — pruning must affect quality, not correctness.
#[test]
fn extreme_pruning_still_correct() {
    let c = cfg(9);
    let net = instance_network(&c);
    let (sfc, flow) = instance_request(&c, &net, 2);
    let out = MbbeSolver::with_limits(10, 1)
        .solve(&net, &sfc, &flow)
        .unwrap();
    validate(&net, &sfc, &flow, &out.embedding).unwrap();
}

/// Deterministic: the same solver, instance, and seed produce the same
/// embedding byte for byte.
#[test]
fn solver_determinism() {
    let c = cfg(12);
    let net = instance_network(&c);
    let (sfc, flow) = instance_request(&c, &net, 0);
    for (a, b) in [
        (
            BbeSolver::new().solve(&net, &sfc, &flow).unwrap(),
            BbeSolver::new().solve(&net, &sfc, &flow).unwrap(),
        ),
        (
            MbbeSolver::new().solve(&net, &sfc, &flow).unwrap(),
            MbbeSolver::new().solve(&net, &sfc, &flow).unwrap(),
        ),
        (
            RanvSolver::new(5).solve(&net, &sfc, &flow).unwrap(),
            RanvSolver::new(5).solve(&net, &sfc, &flow).unwrap(),
        ),
    ] {
        assert_eq!(a.embedding, b.embedding);
    }
}
