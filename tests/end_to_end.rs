//! End-to-end integration: the full pipeline from NF-parallelism
//! analysis through DAG-SFC transformation, embedding, validation, and
//! the simulation harness.

use dagsfc::core::solvers::{MbbeSolver, Solver};
use dagsfc::core::{validate, DagSfc, DelayModel, Flow, VnfCatalog};
use dagsfc::net::{generator, NetGenConfig, NodeId};
use dagsfc::nfp::{
    catalog::enterprise_catalog, sequentialize, to_hybrid, DependencyMatrix, TransformOptions,
};
use dagsfc::sim::{run_instance, runner::instance_network, Algo, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// NFP analysis → hybrid chain → MBBE embedding → validator: the whole
/// pipeline on a realistic enterprise chain.
#[test]
fn nfp_to_embedding_pipeline() {
    let nfs = enterprise_catalog();
    let deps = DependencyMatrix::analyze(&nfs);
    let chain = [0usize, 1, 9, 11, 3]; // firewall, ids, dpi, policer, nat
    let hybrid = to_hybrid(&chain, &deps, TransformOptions { max_width: Some(3) });
    assert!(
        hybrid.depth() < chain.len(),
        "some parallelism must be found"
    );

    let catalog = VnfCatalog::new(nfs.len() as u16);
    let sfc = DagSfc::from_hybrid(&hybrid, catalog).unwrap();
    assert_eq!(sfc.size(), chain.len());

    let net_cfg = NetGenConfig {
        nodes: 120,
        vnf_kinds: catalog.deployable_count(),
        ..NetGenConfig::default()
    };
    let net = generator::generate(&net_cfg, &mut StdRng::seed_from_u64(5)).unwrap();
    let flow = Flow::unit(NodeId(0), NodeId(119));
    let out = MbbeSolver::new().solve(&net, &sfc, &flow).unwrap();
    let cost = validate(&net, &sfc, &flow, &out.embedding).unwrap();
    assert!((cost.total() - out.cost.total()).abs() < 1e-9);
}

/// Hybrid embeddings must never be slower end-to-end than embedding the
/// sequentialized chain (the Fig. 1 motivation), across several seeds.
#[test]
fn hybrid_embedding_cuts_delay() {
    let nfs = enterprise_catalog();
    let deps = DependencyMatrix::analyze(&nfs);
    let chain = [0usize, 1, 9, 11]; // four mutually parallel readers
    let hybrid = to_hybrid(&chain, &deps, TransformOptions::default());
    assert_eq!(hybrid.depth(), 1, "these four NFs are mutually parallel");

    let catalog = VnfCatalog::new(nfs.len() as u16);
    let hybrid_sfc = DagSfc::from_hybrid(&hybrid, catalog).unwrap();
    let seq_sfc = DagSfc::from_hybrid(&sequentialize(&chain), catalog).unwrap();

    let mut proc_us: Vec<f64> = nfs.iter().map(|s| s.proc_delay_us).collect();
    proc_us.push(5.0);
    let model = DelayModel {
        per_hop_us: 20.0,
        merge_us: 5.0,
        proc_us,
        link_delay_us: None,
    };

    for seed in [1u64, 2, 3] {
        let net_cfg = NetGenConfig {
            nodes: 80,
            vnf_kinds: catalog.deployable_count(),
            ..NetGenConfig::default()
        };
        let net = generator::generate(&net_cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(79));
        let solver = MbbeSolver::new();
        let hyb = solver.solve(&net, &hybrid_sfc, &flow).unwrap();
        let seq = solver.solve(&net, &seq_sfc, &flow).unwrap();
        let hyb_delay = model.embedding_delay(&hybrid_sfc, &hyb.embedding, &flow);
        let seq_delay = model.embedding_delay(&seq_sfc, &seq.embedding, &flow);
        assert!(
            hyb_delay <= seq_delay + 1e-9,
            "seed {seed}: hybrid {hyb_delay} slower than sequential {seq_delay}"
        );
    }
}

/// The simulation harness reproduces the paper's headline comparison on
/// a small instance: MBBE/BBE beat both baselines on mean cost.
#[test]
fn paper_headline_ordering_holds() {
    let cfg = SimConfig {
        network_size: 80,
        runs: 12,
        sfc_size: 5,
        ..SimConfig::default()
    };
    let res = run_instance(&cfg, &[Algo::Mbbe, Algo::Bbe, Algo::Minv, Algo::Ranv]);
    let mean = |n: &str| res.algo(n).unwrap().cost.mean;
    assert!(mean("MBBE") <= mean("MINV") + 1e-9);
    assert!(mean("MBBE") <= mean("RANV") + 1e-9);
    assert!(mean("BBE") <= mean("MINV") + 1e-9);
    // MBBE tracks BBE closely (paper: "without an apparent performance
    // degradation").
    assert!(mean("MBBE") <= mean("BBE") * 1.10 + 1e-9);
    // And everything succeeded on this comfortable instance.
    for a in &res.algos {
        assert_eq!(a.failures, 0, "{} failed unexpectedly", a.name);
    }
}

/// Two full instance runs with the same seed agree exactly, despite the
/// multithreaded runner.
#[test]
fn instance_runs_reproducible_across_thread_schedules() {
    let cfg = SimConfig {
        network_size: 50,
        runs: 8,
        sfc_size: 4,
        ..SimConfig::default()
    };
    let a = run_instance(&cfg, &[Algo::Mbbe, Algo::Ranv]);
    let b = run_instance(&cfg, &[Algo::Mbbe, Algo::Ranv]);
    for (x, y) in a.algos.iter().zip(&b.algos) {
        assert_eq!(x.successes, y.successes);
        assert!((x.cost.mean - y.cost.mean).abs() < 1e-12);
        assert!((x.cost.std_dev - y.cost.std_dev).abs() < 1e-12);
    }
}

/// The generated instance network matches the configured shape.
#[test]
fn instance_network_matches_config() {
    let cfg = SimConfig {
        network_size: 70,
        connectivity: 4.0,
        ..SimConfig::default()
    };
    let net = instance_network(&cfg);
    assert_eq!(net.node_count(), 70);
    assert!((net.avg_degree() - 4.0).abs() < 0.1);
    assert!(net.is_connected());
}

/// Raising the flow rate against finite capacities turns comfortable
/// instances into partially-infeasible ones; solvers must degrade to
/// clean errors, never to invalid embeddings.
#[test]
fn capacity_pressure_degrades_cleanly() {
    let cfg = SimConfig {
        network_size: 40,
        runs: 10,
        sfc_size: 5,
        vnf_capacity: 1.0,
        link_capacity: 1.0,
        rate: 1.0, // exactly saturating: every instance single-use
        ..SimConfig::default()
    };
    let res = run_instance(&cfg, &[Algo::Mbbe, Algo::Minv]);
    for a in &res.algos {
        assert_eq!(a.successes + a.failures, cfg.runs);
        // debug_assert inside the runner already validated embeddings.
    }
}
