//! End-to-end tests of the `dagsfc` CLI binary: each subcommand is run
//! as a real subprocess (via `CARGO_BIN_EXE_dagsfc`) against temp files.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dagsfc"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dagsfc-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

#[test]
fn no_args_prints_usage() {
    let out = bin().output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = bin().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn generate_writes_network_and_dot() {
    let json = tmp("net.json");
    let dot = tmp("net.dot");
    let out = bin()
        .args([
            "generate",
            "--nodes",
            "20",
            "--seed",
            "5",
            "--out",
            json.to_str().unwrap(),
            "--dot",
            dot.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let net_text = std::fs::read_to_string(&json).expect("network written");
    assert!(net_text.contains("\"links\""));
    let dot_text = std::fs::read_to_string(&dot).expect("dot written");
    assert!(dot_text.starts_with("graph "));
}

#[test]
fn instance_then_embed_roundtrip() {
    let inst = tmp("inst.json");
    let out = bin()
        .args([
            "instance",
            "--nodes",
            "30",
            "--sfc-size",
            "3",
            "--seed",
            "9",
            "--out",
            inst.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    for algo in ["mbbe", "mbbe-st", "minv", "ranv", "bbe"] {
        let out = bin()
            .args([
                "embed",
                "--instance",
                inst.to_str().unwrap(),
                "--algo",
                algo,
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "algo {algo}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("total"), "algo {algo} printed no cost");
        assert!(text.contains("L0[0]"), "algo {algo} printed no assignment");
    }
}

#[test]
fn embed_rejects_unknown_algorithm() {
    let out = bin()
        .args(["embed", "--nodes", "20", "--algo", "quantum"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));
}

#[test]
fn figures_single_id_writes_series() {
    let dir = tmp("figs");
    let out = bin()
        .args(["figures", "fig6c", "--out-dir", dir.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("fig6c"));
    assert!(dir.join("fig6c.csv").exists());
    assert!(dir.join("fig6c.json").exists());
}

#[test]
fn figures_unknown_id_fails() {
    let out = bin()
        .args(["figures", "fig9z"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn ilp_emits_model() {
    let out = bin()
        .args(["ilp", "--nodes", "6", "--sfc-size", "1", "--seed", "3"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("min:"));
    assert!(text.contains("subject to:"));
    assert!(text.contains("binary:"));
}

#[test]
fn online_prints_acceptance_table() {
    let out = bin()
        .args([
            "online",
            "--nodes",
            "25",
            "--requests",
            "20",
            "--capacity",
            "5",
            "--algo",
            "mbbe,minv",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("acceptance ratio"));
    assert!(text.contains("MBBE"));
    assert!(text.contains("MINV"));
}

#[test]
fn embed_with_protect_and_save() {
    let sol = tmp("solution.json");
    let out = bin()
        .args([
            "embed",
            "--nodes",
            "30",
            "--sfc-size",
            "3",
            "--seed",
            "4",
            "--algo",
            "grasp",
            "--protect",
            "--save",
            sol.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("protection:"));
    assert!(text.contains("solution written"));
    let saved = std::fs::read_to_string(&sol).expect("solution written");
    assert!(saved.contains("\"GRASP\""));
    assert!(saved.contains("\"embedding\""));
}

#[test]
fn audit_exit_codes_distinguish_failure_modes() {
    // 0 — a freshly exported trace audits clean.
    let trace = tmp("audit-clean.json");
    let out = bin()
        .args([
            "trace",
            "--out",
            trace.to_str().unwrap(),
            "--arrivals",
            "12",
            "--nodes",
            "20",
            "--seed",
            "3",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = bin()
        .args(["audit", "--trace", trace.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "clean audit exits 0");

    // 2 — missing --trace is a usage error, and prints usage.
    let out = bin().arg("audit").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "usage error exits 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    // 3 — a nonexistent trace file is an input error, not a violation.
    let out = bin()
        .args(["audit", "--trace", "/nonexistent/trace.json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3), "missing file exits 3");

    // 3 — garbage JSON is an input error too.
    let garbage = tmp("audit-garbage.json");
    std::fs::write(&garbage, "{not json").expect("write garbage");
    let out = bin()
        .args(["audit", "--trace", garbage.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3), "parse failure exits 3");
}

#[test]
fn chaos_gen_and_run_verify_end_to_end() {
    let scenario = tmp("chaos.json");
    let out = bin()
        .args([
            "chaos",
            "gen",
            "--out",
            scenario.to_str().unwrap(),
            "--arrivals",
            "20",
            "--nodes",
            "24",
            "--seed",
            "11",
            "--chaos-seed",
            "5",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("fault events"));

    let out = bin()
        .args([
            "chaos",
            "run",
            "--scenario",
            scenario.to_str().unwrap(),
            "--workers",
            "2",
            "--verify",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verified: bit-for-bit"));
    assert!(
        text.lines().last().unwrap().contains("\"audits_failed\":0")
            || text
                .lines()
                .last()
                .unwrap()
                .contains("\"audits_failed\": 0"),
        "summary line must report zero audit failures: {text}"
    );
}

#[test]
fn quality_and_topology_subcommands() {
    let out = bin()
        .args(["quality", "--nodes", "30", "--runs", "3"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("vs bound"));

    let out = bin()
        .args([
            "topology",
            "--nodes",
            "16",
            "--runs",
            "2",
            "--sfc-size",
            "3",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ring"));
    assert!(text.contains("fat-tree"));
}
