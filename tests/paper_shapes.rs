//! Cross-figure shape assertions: the qualitative claims of §5.2, each
//! checked end-to-end on micro grids through the public sweep API. These
//! are the release gate for "the reproduction still reproduces".

use dagsfc::sim::{sweep, SimConfig};

fn base() -> SimConfig {
    SimConfig {
        network_size: 50,
        runs: 8,
        sfc_size: 4,
        ..SimConfig::default()
    }
}

/// §5.2.1 — the cost gap to the baselines expands with the SFC size.
#[test]
fn fig6a_gap_expands_with_sfc_size() {
    let r = sweep::sfc_size::fig6a_on(&base(), &[2.0, 5.0]);
    let mbbe = r.series("MBBE");
    let minv = r.series("MINV");
    let gap_small = minv[0].1 - mbbe[0].1;
    let gap_large = minv[1].1 - mbbe[1].1;
    assert!(gap_large > gap_small, "gap {gap_small:.3} → {gap_large:.3}");
    // And BBE tracks MBBE inside its range.
    let bbe = r.series("BBE");
    for ((_, m), (_, b)) in mbbe.iter().zip(&bbe) {
        assert!((m - b).abs() / b < 0.05, "MBBE {m:.3} vs BBE {b:.3}");
    }
}

/// §5.2.2 — our solutions are stable in network size; the baselines are
/// not; the relative advantage expands.
#[test]
fn fig6b_stability_and_expanding_advantage() {
    let r = sweep::network_size::fig6b_on(&base(), &[15.0, 150.0]);
    let mbbe = r.series("MBBE");
    let ranv = r.series("RANV");
    let mbbe_growth = mbbe[1].1 / mbbe[0].1;
    let ranv_growth = ranv[1].1 / ranv[0].1;
    assert!(
        mbbe_growth < 1.25,
        "MBBE should be stable, grew {mbbe_growth:.2}×"
    );
    assert!(ranv_growth > mbbe_growth);
    let adv_small = 1.0 - mbbe[0].1 / ranv[0].1;
    let adv_large = 1.0 - mbbe[1].1 / ranv[1].1;
    assert!(adv_large > adv_small);
}

/// §5.2.3 + §5.2.4 — cost falls with connectivity and with the
/// deploying ratio (for our methods).
#[test]
fn fig6c_fig6d_monotone_declines() {
    let rc = sweep::connectivity::fig6c_on(&base(), &[2.0, 12.0]);
    let mbbe_c = rc.series("MBBE");
    assert!(mbbe_c[1].1 < mbbe_c[0].1, "denser network must cost less");

    let rd = sweep::deploy_ratio::fig6d_on(&base(), &[0.15, 0.65]);
    let mbbe_d = rd.series("MBBE");
    assert!(
        mbbe_d[1].1 < mbbe_d[0].1,
        "denser deployment must cost less"
    );
}

/// §5.2.5 — everything rises with the price ratio; the baseline gap
/// expands; at vanishing link prices MINV is near-optimal (gap ≈ 0).
#[test]
fn fig6e_price_ratio_dynamics() {
    let r = sweep::price_ratio::fig6e_on(&base(), &[0.01, 0.45]);
    let mbbe = r.series("MBBE");
    let minv = r.series("MINV");
    assert!(mbbe[1].1 > mbbe[0].1);
    assert!(minv[1].1 > minv[0].1);
    let gap_lo = (minv[0].1 - mbbe[0].1) / mbbe[0].1;
    let gap_hi = (minv[1].1 - mbbe[1].1) / mbbe[1].1;
    assert!(
        gap_lo < 0.10,
        "at 1% ratio MINV must be near MBBE ({gap_lo:.3})"
    );
    assert!(
        gap_hi > gap_lo + 0.10,
        "gap must expand: {gap_lo:.3} → {gap_hi:.3}"
    );
}

/// §5.2.6 — fluctuation narrows the MINV gap without crossing; RANV is
/// insensitive to prices.
#[test]
fn fig6f_fluctuation_dynamics() {
    let r = sweep::fluctuation::fig6f_on(&base(), &[0.05, 0.5]);
    let mbbe = r.series("MBBE");
    let minv = r.series("MINV");
    let ranv = r.series("RANV");
    let gap_lo = minv[0].1 - mbbe[0].1;
    let gap_hi = minv[1].1 - mbbe[1].1;
    assert!(
        gap_hi < gap_lo,
        "MINV gap must narrow: {gap_lo:.3} → {gap_hi:.3}"
    );
    assert!(gap_hi > -1e-9, "MINV must not cross below MBBE");
    // RANV ignores prices entirely: flat within noise.
    let ranv_change = (ranv[1].1 - ranv[0].1).abs() / ranv[0].1;
    assert!(
        ranv_change < 0.15,
        "RANV moved {ranv_change:.2} with fluctuation"
    );
}

/// §4.5 — MBBE explores a fraction of BBE's candidates at matching cost.
#[test]
fn runtime_complexity_claim() {
    let r = sweep::runtime::runtime_sweep_on(&base(), &[4.0]);
    let p = &r.points[0];
    let bbe = p.algos.iter().find(|a| a.name == "BBE").unwrap();
    let mbbe = p.algos.iter().find(|a| a.name == "MBBE").unwrap();
    assert!(mbbe.mean_explored < bbe.mean_explored);
    assert!(mbbe.cost.mean <= bbe.cost.mean * 1.05 + 1e-9);
}
